#include "satori/common/math.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "satori/common/logging.hpp"

namespace satori {

double
normalPdf(double z)
{
    static const double inv_sqrt_2pi = 0.3989422804014327;
    return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z * M_SQRT1_2);
}

double
clamp(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
stddev(const std::vector<double>& v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double ss = 0.0;
    for (double x : v)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(v.size()));
}

double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v) {
        SATORI_ASSERT(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(v.size()));
}

double
harmonicMean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double x : v) {
        SATORI_ASSERT(x > 0.0);
        inv_sum += 1.0 / x;
    }
    return static_cast<double>(v.size()) / inv_sum;
}

double
coefficientOfVariation(const std::vector<double>& v)
{
    const double m = mean(v);
    if (std::abs(m) == 0.0)
        return 0.0;
    return stddev(v) / m;
}

double
squaredDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    SATORI_ASSERT(a.size() == b.size());
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return d2;
}

double
euclideanDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    return std::sqrt(squaredDistance(a, b));
}

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    std::uint64_t result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        // Multiply before dividing; (result * (n - k + i)) is divisible
        // by i because result holds C(n-k+i-1, i-1).
        result = result * (n - k + i) / i;
    }
    return result;
}

} // namespace satori
