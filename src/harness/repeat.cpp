#include "satori/harness/repeat.hpp"

#include <cmath>
#include <cstdio>

#include "satori/common/logging.hpp"
#include "satori/common/stats.hpp"
#include "satori/harness/scenarios.hpp"

namespace satori {
namespace harness {
namespace {

Estimate
estimateOf(const OnlineStats& stats)
{
    Estimate e;
    e.mean = stats.mean();
    if (stats.count() >= 2) {
        e.ci95 = 1.96 * stats.stddev() /
                 std::sqrt(static_cast<double>(stats.count()));
    }
    return e;
}

} // namespace

std::string
Estimate::toString(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, mean,
                  precision, ci95);
    return buf;
}

bool
RepeatedResult::clearlyBeats(const RepeatedResult& other) const
{
    return objective.mean - other.objective.mean >
           objective.ci95 + other.objective.ci95;
}

RepeatedResult
repeatPolicy(const PlatformSpec& platform, const workloads::JobMix& mix,
             const std::string& policy_name,
             const ExperimentOptions& options, std::size_t runs,
             std::uint64_t seed0, core::SatoriOptions satori_options)
{
    SATORI_ASSERT(runs >= 1);
    const ExperimentRunner runner(options);
    OnlineStats t_stats, f_stats, o_stats;
    RepeatedResult out;
    out.policy = policy_name;
    out.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
        sim::SimulatedServer server =
            makeServer(platform, mix, seed0 + r);
        auto policy = makePolicy(policy_name, server, satori_options);
        const auto result = runner.run(server, *policy, mix.label);
        t_stats.add(result.mean_throughput);
        f_stats.add(result.mean_fairness);
        o_stats.add(result.mean_objective);
    }
    out.throughput = estimateOf(t_stats);
    out.fairness = estimateOf(f_stats);
    out.objective = estimateOf(o_stats);
    return out;
}

} // namespace harness
} // namespace satori
