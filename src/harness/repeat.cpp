#include "satori/harness/repeat.hpp"

#include <cmath>
#include <cstdio>

#include "satori/common/logging.hpp"
#include "satori/common/stats.hpp"
#include "satori/harness/parallel.hpp"
#include "satori/harness/scenarios.hpp"

namespace satori {
namespace harness {
namespace {

Estimate
estimateOf(const OnlineStats& stats)
{
    Estimate e;
    e.mean = stats.mean();
    if (stats.count() >= 2) {
        e.ci95 = 1.96 * stats.stddev() /
                 std::sqrt(static_cast<double>(stats.count()));
    }
    return e;
}

} // namespace

std::string
Estimate::toString(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, mean,
                  precision, ci95);
    return buf;
}

bool
RepeatedResult::clearlyBeats(const RepeatedResult& other) const
{
    return objective.mean - other.objective.mean >
           objective.ci95 + other.objective.ci95;
}

RepeatedResult
repeatPolicy(const PlatformSpec& platform, const workloads::JobMix& mix,
             const std::string& policy_name,
             const ExperimentOptions& options, std::size_t runs,
             std::uint64_t seed0, core::SatoriOptions satori_options,
             std::size_t threads)
{
    SATORI_ASSERT(runs >= 1);
    const ExperimentRunner runner(options);
    // Trace sinks, fault injectors, and interval hooks are written for
    // one run at a time; never share them across workers.
    const bool shared_sinks = options.trace != nullptr ||
                              options.faults != nullptr ||
                              static_cast<bool>(options.on_interval);
    if (shared_sinks)
        threads = 1;

    // Each run builds its own server + policy (and thus its own
    // engine/GP) from its index alone and writes one pre-sized slot.
    struct RunOutcome
    {
        double throughput = 0.0;
        double fairness = 0.0;
        double objective = 0.0;
    };
    std::vector<RunOutcome> outcomes(runs);
    parallelFor(runs, threads, [&](std::size_t r) {
        sim::SimulatedServer server =
            makeServer(platform, mix, seed0 + r);
        auto policy = makePolicy(policy_name, server, satori_options);
        const auto result = runner.run(server, *policy, mix.label);
        outcomes[r].throughput = result.mean_throughput;
        outcomes[r].fairness = result.mean_fairness;
        outcomes[r].objective = result.mean_objective;
    });

    // Fold in index order so the statistics are bit-identical to a
    // serial loop regardless of worker scheduling.
    OnlineStats t_stats, f_stats, o_stats;
    for (const RunOutcome& o : outcomes) {
        t_stats.add(o.throughput);
        f_stats.add(o.fairness);
        o_stats.add(o.objective);
    }
    RepeatedResult out;
    out.policy = policy_name;
    out.runs = runs;
    out.throughput = estimateOf(t_stats);
    out.fairness = estimateOf(f_stats);
    out.objective = estimateOf(o_stats);
    return out;
}

} // namespace harness
} // namespace satori
