#include "satori/harness/experiment.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/checkpoint.hpp"

namespace satori {
namespace harness {

namespace {

/** Bitwise double equality (recovery verification wants exactness). */
bool
bitEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

bool
bitEqual(const std::vector<double>& a, const std::vector<double>& b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n != m)
        return false;
    for (std::size_t i = 0; i < n; ++i)
        if (!bitEqual(a[i], b[i]))
            return false;
    return true;
}

/**
 * Compare a re-executed interval against its pre-crash WAL record.
 * Any difference means the resumed state did not reproduce the
 * original run - a hard error, never a silent fork.
 */
void
verifyReplay(const persist::IntervalRecord& logged,
             const persist::IntervalRecord& redone, std::size_t step)
{
    const char* field = nullptr;
    if (logged.interval != redone.interval)
        field = "interval index";
    else if (!bitEqual(logged.time, redone.time))
        field = "interval time";
    else if (!(logged.config == redone.config))
        field = "running configuration";
    else if (!bitEqual(logged.ips, redone.ips))
        field = "measured IPS";
    else if (!bitEqual(logged.speedups, redone.speedups))
        field = "speedups";
    else if (!bitEqual(logged.throughput, redone.throughput))
        field = "normalized throughput";
    else if (!bitEqual(logged.fairness, redone.fairness))
        field = "normalized fairness";
    else if (logged.faults != redone.faults)
        field = "fault flags";
    else if (!(logged.decision == redone.decision))
        field = "policy decision";
    if (field != nullptr)
        SATORI_FATAL("resume diverged from the WAL at interval " +
                     std::to_string(step) + ": " + field +
                     " does not match the pre-crash run (restored "
                     "state is not byte-identical)");
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentOptions options)
    : options_(std::move(options))
{
    SATORI_ASSERT(options_.dt > 0.0);
    SATORI_ASSERT(options_.duration >= options_.dt);
}

ExperimentResult
ExperimentRunner::run(sim::SimulatedServer& server,
                      policies::PartitioningPolicy& policy,
                      const std::string& mix_label) const
{
    ExperimentResult result;
    result.policy_name = policy.name();
    result.mix_label = mix_label;

    sim::PerfMonitor monitor(server);
    const auto steps = static_cast<std::size_t>(
        std::llround(options_.duration / options_.dt));
    Seconds last_reset = server.now();

    std::vector<OnlineStats> per_job_speedup(server.numJobs());

    // Durability: prepare the checkpoint directory and, on resume,
    // restore every piece of cross-interval state from the snapshot,
    // then regenerate the pre-snapshot trace rows from the WAL.
    persist::Checkpointer* ckpt = options_.checkpoint;
    std::size_t start_step = 0;
    std::size_t replayed = 0; ///< WAL records from the killed run.
    if (ckpt != nullptr) {
        if (!policy.supportsPersistence())
            SATORI_FATAL("policy '" + policy.name() +
                         "' does not support checkpointing (no "
                         "saveState/restoreState)");
        ckpt->prepare();
        replayed = ckpt->walRecords().size();
        if (ckpt->resuming() && ckpt->hasSnapshot()) {
            const persist::SnapshotReader& snap = ckpt->snapshot();
            {
                persist::StateReader r = snap.section("server");
                server.restoreState(r);
                r.expectEnd();
            }
            {
                persist::StateReader r = snap.section("monitor");
                monitor.restoreState(r);
                r.expectEnd();
            }
            {
                persist::StateReader r = snap.section("policy");
                policy.restoreState(r);
                r.expectEnd();
            }
            if (options_.faults != nullptr) {
                persist::StateReader r = snap.section("faults");
                options_.faults->restoreState(r);
                r.expectEnd();
            }
            {
                persist::StateReader r = snap.section("loop");
                last_reset = r.getDouble();
                result.throughput_stats.restoreState(r);
                result.fairness_stats.restoreState(r);
                const std::size_t nj = r.getSize();
                if (nj != per_job_speedup.size())
                    SATORI_FATAL("loop state has " + std::to_string(nj) +
                                 " per-job accumulators, this run has " +
                                 std::to_string(per_job_speedup.size()));
                for (auto& s : per_job_speedup)
                    s.restoreState(r);
                result.throughput_series.restoreState(r);
                result.fairness_series.restoreState(r);
                r.expectEnd();
            }
            start_step = ckpt->resumeStep();
        }
        if (options_.trace != nullptr) {
            // Intervals before the snapshot are not re-executed; their
            // trace rows come byte-for-byte from the WAL so the final
            // file is indistinguishable from an uninterrupted run's.
            for (std::size_t i = 0; i < start_step; ++i) {
                const persist::IntervalRecord& logged =
                    ckpt->walRecords()[i];
                TraceRecord row;
                row.time = logged.time;
                row.policy = policy.name();
                row.config = logged.config;
                row.ips = logged.ips;
                row.speedups = logged.speedups;
                row.throughput = logged.throughput;
                row.fairness = logged.fairness;
                row.faults = logged.faults;
                options_.trace->write(row);
            }
        }
    }

    for (std::size_t step = start_step; step < steps; ++step) {
        SATORI_OBS_SPAN("harness.interval");
        SATORI_OBS_METRIC(harness_intervals.inc());
        // Platform faults (crash/restart churn, core offlining) land
        // before the interval runs; announced churn refreshes the
        // isolation baseline exactly as a cluster manager would.
        if (options_.faults != nullptr &&
            options_.faults->beginInterval(server))
            monitor.resetBaseline();

        const sim::IntervalObservation obs = monitor.observe(options_.dt);

        // Score against the *instantaneous* isolation performance so
        // reported aggregates are not biased by baseline staleness;
        // policies themselves only ever see the periodically recorded
        // baseline in obs (the realistic signal).
        const std::vector<Ips> iso_now = server.isolationIpsNow();
        const double t_norm =
            normalizedThroughput(options_.tmetric, obs.ips, iso_now);
        const std::vector<double> spd = speedups(obs.ips, iso_now);
        const double f_norm = normalizedFairness(options_.fmetric, spd);

        if (obs.time > options_.warmup) {
            result.throughput_stats.add(t_norm);
            result.fairness_stats.add(f_norm);
            for (std::size_t j = 0; j < spd.size(); ++j)
                per_job_speedup[j].add(std::min(spd[j], 1.0));
            if (options_.record_series) {
                result.throughput_series.add(obs.time, t_norm);
                result.fairness_series.add(obs.time, f_norm);
            }
        }

        // The policy sees what the (possibly faulty) telemetry path
        // delivers; its decision goes through the (possibly faulty)
        // actuation path. Scoring above used the truth.
        Configuration next;
        if (options_.faults != nullptr) {
            const sim::IntervalObservation seen =
                options_.faults->perturbObservation(obs);
            next = policy.decide(seen);
            SATORI_OBS_SPAN("harness.actuate");
            options_.faults->actuate(server, next);
        } else {
            next = policy.decide(obs);
            SATORI_OBS_SPAN("harness.actuate");
            server.setConfiguration(next);
        }

        if (options_.on_interval)
            options_.on_interval(obs, t_norm, f_norm);

        if (options_.trace) {
            SATORI_OBS_SPAN("harness.trace");
            TraceRecord rec;
            rec.time = obs.time;
            rec.policy = policy.name();
            rec.config = obs.config;
            rec.ips = obs.ips;
            rec.speedups = spd;
            rec.throughput = t_norm;
            rec.fairness = f_norm;
            if (options_.faults != nullptr)
                rec.faults = options_.faults->lastFlags();
            options_.trace->write(rec);
        }

        // Live telemetry plane: one history row + one watchdog pass
        // per interval, after the decision and trace write so nothing
        // here can feed back into them. (`obs` is the interval
        // observation; the namespace needs full qualification.)
        SATORI_OBS_HOOK(::satori::obs::observability().onHarnessInterval(
            static_cast<std::uint64_t>(step), obs.time, obs.ips, t_norm,
            f_norm));

        if (obs.time - last_reset >= options_.baseline_reset_period) {
            monitor.resetBaseline();
            last_reset = obs.time;
        }

        // Durability last, after every state change of the interval,
        // so a snapshot taken here resumes cleanly at step + 1.
        if (ckpt != nullptr) {
            persist::IntervalRecord rec;
            rec.interval = static_cast<std::uint64_t>(step);
            rec.time = obs.time;
            rec.config = obs.config;
            rec.ips = obs.ips;
            rec.speedups = spd;
            rec.throughput = t_norm;
            rec.fairness = f_norm;
            if (options_.faults != nullptr)
                rec.faults = options_.faults->lastFlags();
            rec.decision = next;
            // Intervals the killed run already logged must replay
            // exactly; a divergence means restored state is wrong.
            if (step < replayed)
                verifyReplay(ckpt->walRecords()[step], rec, step);
            ckpt->onIntervalEnd(
                step, rec, [&](persist::SnapshotWriter& snap) {
                    server.saveState(snap.section("server"));
                    monitor.saveState(snap.section("monitor"));
                    policy.saveState(snap.section("policy"));
                    if (options_.faults != nullptr)
                        options_.faults->saveState(
                            snap.section("faults"));
                    persist::StateWriter& w = snap.section("loop");
                    w.putDouble(last_reset);
                    result.throughput_stats.saveState(w);
                    result.fairness_stats.saveState(w);
                    w.putSize(per_job_speedup.size());
                    for (const auto& s : per_job_speedup)
                        s.saveState(w);
                    result.throughput_series.saveState(w);
                    result.fairness_series.saveState(w);
                });
        }
    }

    result.mean_throughput = result.throughput_stats.mean();
    result.mean_fairness = result.fairness_stats.mean();
    result.mean_objective =
        0.5 * result.mean_throughput + 0.5 * result.mean_fairness;
    result.job_mean_speedups.reserve(server.numJobs());
    double worst = 1.0;
    for (const auto& s : per_job_speedup) {
        result.job_mean_speedups.push_back(s.mean());
        worst = std::min(worst, s.mean());
    }
    result.worst_job_speedup = worst;
    return result;
}

} // namespace harness
} // namespace satori
