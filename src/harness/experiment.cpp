#include "satori/harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace harness {

ExperimentRunner::ExperimentRunner(ExperimentOptions options)
    : options_(std::move(options))
{
    SATORI_ASSERT(options_.dt > 0.0);
    SATORI_ASSERT(options_.duration >= options_.dt);
}

ExperimentResult
ExperimentRunner::run(sim::SimulatedServer& server,
                      policies::PartitioningPolicy& policy,
                      const std::string& mix_label) const
{
    ExperimentResult result;
    result.policy_name = policy.name();
    result.mix_label = mix_label;

    sim::PerfMonitor monitor(server);
    const auto steps = static_cast<std::size_t>(
        std::llround(options_.duration / options_.dt));
    Seconds last_reset = server.now();

    std::vector<OnlineStats> per_job_speedup(server.numJobs());

    for (std::size_t step = 0; step < steps; ++step) {
        SATORI_OBS_SPAN("harness.interval");
        SATORI_OBS_METRIC(harness_intervals.inc());
        // Platform faults (crash/restart churn, core offlining) land
        // before the interval runs; announced churn refreshes the
        // isolation baseline exactly as a cluster manager would.
        if (options_.faults != nullptr &&
            options_.faults->beginInterval(server))
            monitor.resetBaseline();

        const sim::IntervalObservation obs = monitor.observe(options_.dt);

        // Score against the *instantaneous* isolation performance so
        // reported aggregates are not biased by baseline staleness;
        // policies themselves only ever see the periodically recorded
        // baseline in obs (the realistic signal).
        const std::vector<Ips> iso_now = server.isolationIpsNow();
        const double t_norm =
            normalizedThroughput(options_.tmetric, obs.ips, iso_now);
        const std::vector<double> spd = speedups(obs.ips, iso_now);
        const double f_norm = normalizedFairness(options_.fmetric, spd);

        if (obs.time > options_.warmup) {
            result.throughput_stats.add(t_norm);
            result.fairness_stats.add(f_norm);
            for (std::size_t j = 0; j < spd.size(); ++j)
                per_job_speedup[j].add(std::min(spd[j], 1.0));
            if (options_.record_series) {
                result.throughput_series.add(obs.time, t_norm);
                result.fairness_series.add(obs.time, f_norm);
            }
        }

        // The policy sees what the (possibly faulty) telemetry path
        // delivers; its decision goes through the (possibly faulty)
        // actuation path. Scoring above used the truth.
        if (options_.faults != nullptr) {
            const sim::IntervalObservation seen =
                options_.faults->perturbObservation(obs);
            const Configuration next = policy.decide(seen);
            SATORI_OBS_SPAN("harness.actuate");
            options_.faults->actuate(server, next);
        } else {
            const Configuration next = policy.decide(obs);
            SATORI_OBS_SPAN("harness.actuate");
            server.setConfiguration(next);
        }

        if (options_.on_interval)
            options_.on_interval(obs, t_norm, f_norm);

        if (options_.trace) {
            SATORI_OBS_SPAN("harness.trace");
            TraceRecord rec;
            rec.time = obs.time;
            rec.policy = policy.name();
            rec.config = obs.config;
            rec.ips = obs.ips;
            rec.speedups = spd;
            rec.throughput = t_norm;
            rec.fairness = f_norm;
            if (options_.faults != nullptr)
                rec.faults = options_.faults->lastFlags();
            options_.trace->write(rec);
        }

        if (obs.time - last_reset >= options_.baseline_reset_period) {
            monitor.resetBaseline();
            last_reset = obs.time;
        }
    }

    result.mean_throughput = result.throughput_stats.mean();
    result.mean_fairness = result.fairness_stats.mean();
    result.mean_objective =
        0.5 * result.mean_throughput + 0.5 * result.mean_fairness;
    result.job_mean_speedups.reserve(server.numJobs());
    double worst = 1.0;
    for (const auto& s : per_job_speedup) {
        result.job_mean_speedups.push_back(s.mean());
        worst = std::min(worst, s.mean());
    }
    result.worst_job_speedup = worst;
    return result;
}

} // namespace harness
} // namespace satori
