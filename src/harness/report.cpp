#include "satori/harness/report.hpp"

#include "satori/common/logging.hpp"
#include "satori/harness/scenarios.hpp"

namespace satori {
namespace harness {

const PolicyScore&
MixComparison::score(const std::string& policy) const
{
    for (const auto& s : scores)
        if (s.policy == policy)
            return s;
    SATORI_FATAL("no score recorded for policy: " + policy);
}

MixComparison
comparePolicies(const PlatformSpec& platform, const workloads::JobMix& mix,
                const std::vector<std::string>& policy_names,
                const ExperimentOptions& options, std::uint64_t seed,
                core::SatoriOptions satori_options)
{
    const ExperimentRunner runner(options);
    MixComparison comp;
    comp.mix_label = mix.label;

    // The oracle reference run.
    {
        sim::SimulatedServer server = makeServer(platform, mix, seed);
        auto oracle = makePolicy("Balanced-Oracle", server, satori_options);
        comp.oracle = runner.run(server, *oracle, mix.label);
    }

    for (const auto& name : policy_names) {
        sim::SimulatedServer server = makeServer(platform, mix, seed);
        auto policy = makePolicy(name, server, satori_options);
        PolicyScore score;
        score.policy = name;
        score.result = runner.run(server, *policy, mix.label);
        score.throughput_pct =
            comp.oracle.mean_throughput > 0.0
                ? score.result.mean_throughput /
                      comp.oracle.mean_throughput
                : 0.0;
        score.fairness_pct =
            comp.oracle.mean_fairness > 0.0
                ? score.result.mean_fairness / comp.oracle.mean_fairness
                : 0.0;
        score.worst_job_pct =
            comp.oracle.worst_job_speedup > 0.0
                ? score.result.worst_job_speedup /
                      comp.oracle.worst_job_speedup
                : 0.0;
        comp.scores.push_back(std::move(score));
    }
    return comp;
}

namespace {

double
meanOf(const std::vector<MixComparison>& comps, const std::string& policy,
       double PolicyScore::*member)
{
    SATORI_ASSERT(!comps.empty());
    double sum = 0.0;
    for (const auto& c : comps)
        sum += c.score(policy).*member;
    return sum / static_cast<double>(comps.size());
}

} // namespace

double
meanThroughputPct(const std::vector<MixComparison>& comps,
                  const std::string& policy)
{
    return meanOf(comps, policy, &PolicyScore::throughput_pct);
}

double
meanFairnessPct(const std::vector<MixComparison>& comps,
                const std::string& policy)
{
    return meanOf(comps, policy, &PolicyScore::fairness_pct);
}

double
meanWorstJobPct(const std::vector<MixComparison>& comps,
                const std::string& policy)
{
    return meanOf(comps, policy, &PolicyScore::worst_job_pct);
}

} // namespace harness
} // namespace satori
