#include "satori/harness/scenarios.hpp"

#include "satori/common/logging.hpp"
#include "satori/policies/clite_policy.hpp"
#include "satori/policies/copart_policy.hpp"
#include "satori/policies/dcat_policy.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/policies/oracle_policy.hpp"
#include "satori/policies/parties_policy.hpp"
#include "satori/policies/random_policy.hpp"

namespace satori {
namespace harness {

sim::SimulatedServer
makeServer(const PlatformSpec& platform, const workloads::JobMix& mix,
           std::uint64_t seed, double noise_sigma)
{
    sim::ServerOptions options;
    options.seed = seed;
    options.noise_sigma = noise_sigma;
    return sim::SimulatedServer(platform,
                                perfmodel::MachineParams::paperLike(),
                                mix.jobs, options);
}

std::unique_ptr<policies::PartitioningPolicy>
makePolicy(const std::string& name, const sim::SimulatedServer& server,
           core::SatoriOptions satori_options)
{
    const PlatformSpec& platform = server.platform();
    const std::size_t jobs = server.numJobs();

    if (name == "Equal") {
        return std::make_unique<policies::EqualPartitionPolicy>(platform,
                                                                jobs);
    }
    if (name == "Random") {
        return std::make_unique<policies::RandomPolicy>(platform, jobs);
    }
    if (name == "dCAT") {
        return std::make_unique<policies::DCatPolicy>(platform, jobs);
    }
    if (name == "CoPart") {
        return std::make_unique<policies::CoPartPolicy>(platform, jobs);
    }
    if (name == "PARTIES") {
        return std::make_unique<policies::PartiesPolicy>(platform, jobs);
    }
    if (name == "CLITE") {
        return std::make_unique<policies::ClitePolicy>(platform, jobs);
    }
    if (name == "SATORI" || name == "SATORI-vanilla" ||
        name == "SATORI-static" || name == "Throughput-SATORI" ||
        name == "Fairness-SATORI") {
        if (name == "SATORI") {
            satori_options.mode = core::GoalMode::Balanced;
        } else if (name == "SATORI-vanilla") {
            // The paper's controller without the resilience layer:
            // the baseline bench_fault_resilience degrades.
            satori_options.mode = core::GoalMode::Balanced;
            satori_options.resilience = core::ResilienceOptions::vanilla();
        } else if (name == "SATORI-static")
            satori_options.mode = core::GoalMode::StaticEqual;
        else if (name == "Throughput-SATORI")
            satori_options.mode = core::GoalMode::ThroughputOnly;
        else
            satori_options.mode = core::GoalMode::FairnessOnly;
        return std::make_unique<core::SatoriController>(platform, jobs,
                                                        satori_options);
    }
    if (name == "Balanced-Oracle") {
        return std::make_unique<policies::OraclePolicy>(
            server, policies::OracleKind::Balanced);
    }
    if (name == "Throughput-Oracle") {
        return std::make_unique<policies::OraclePolicy>(
            server, policies::OracleKind::Throughput);
    }
    if (name == "Fairness-Oracle") {
        return std::make_unique<policies::OraclePolicy>(
            server, policies::OracleKind::Fairness);
    }
    SATORI_FATAL("unknown policy name: " + name);
}

std::vector<std::string>
comparisonPolicyNames()
{
    return {"Random", "dCAT", "CoPart", "PARTIES", "SATORI"};
}

std::vector<std::string>
satoriVariantNames()
{
    return {"SATORI", "SATORI-static", "Throughput-SATORI",
            "Fairness-SATORI"};
}

} // namespace harness
} // namespace satori
