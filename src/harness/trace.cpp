#include "satori/harness/trace.hpp"

#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace harness {

namespace {

/** Format a double the way the pre-buffered writer did (10 digits). */
std::string
num(double value)
{
    std::ostringstream os;
    os << std::setprecision(10) << value;
    return os.str();
}

} // namespace

TraceWriter::TraceWriter(const std::string& path, TraceFormat format,
                         std::size_t flush_every)
    : out_(path), format_(format), flush_every_(flush_every)
{
    if (!out_.good())
        SATORI_FATAL("cannot open trace file: " + path);
}

TraceWriter::~TraceWriter()
{
    flush();
}

void
TraceWriter::write(const TraceRecord& record)
{
    switch (format_) {
      case TraceFormat::Csv:
        if (!header_written_) {
            writeCsvHeader(record);
            header_written_ = true;
        }
        writeCsv(record);
        break;
      case TraceFormat::JsonLines:
        writeJson(record);
        break;
    }
    ++count_;
    ++buffered_;
    if (flush_every_ > 0 && buffered_ >= flush_every_)
        flush();
}

void
TraceWriter::writeCsvHeader(const TraceRecord& record)
{
    buffer_ += "time,policy,config,throughput,fairness,w_t,w_f,settled";
    for (std::size_t j = 0; j < record.ips.size(); ++j)
        buffer_ += ",ips_" + std::to_string(j);
    for (std::size_t j = 0; j < record.speedups.size(); ++j)
        buffer_ += ",speedup_" + std::to_string(j);
    buffer_ += ",faults\n";
}

void
TraceWriter::writeCsv(const TraceRecord& record)
{
    buffer_ += num(record.time) + "," + record.policy + ",\"" +
               record.config.toString() + "\"," +
               num(record.throughput) + "," + num(record.fairness) +
               "," + num(record.w_t) + "," + num(record.w_f) + "," +
               (record.settled ? "1" : "0");
    for (double v : record.ips) {
        buffer_ += ",";
        buffer_ += num(v);
    }
    for (double v : record.speedups) {
        buffer_ += ",";
        buffer_ += num(v);
    }
    buffer_ += ",\"" + record.faults + "\"\n";
}

void
TraceWriter::writeJson(const TraceRecord& record)
{
    buffer_ += "{\"time\":" + num(record.time) + ",\"policy\":\"" +
               record.policy + "\",\"config\":\"" +
               record.config.toString() +
               "\",\"throughput\":" + num(record.throughput) +
               ",\"fairness\":" + num(record.fairness) +
               ",\"w_t\":" + num(record.w_t) +
               ",\"w_f\":" + num(record.w_f) + ",\"settled\":" +
               (record.settled ? "true" : "false");
    buffer_ += ",\"ips\":[";
    for (std::size_t j = 0; j < record.ips.size(); ++j) {
        if (j > 0)
            buffer_ += ",";
        buffer_ += num(record.ips[j]);
    }
    buffer_ += "],\"speedups\":[";
    for (std::size_t j = 0; j < record.speedups.size(); ++j) {
        if (j > 0)
            buffer_ += ",";
        buffer_ += num(record.speedups[j]);
    }
    buffer_ += "],\"faults\":\"" + record.faults + "\"}\n";
}

void
TraceWriter::flush()
{
    if (!buffer_.empty()) {
        out_ << buffer_;
        buffer_.clear();
    }
    buffered_ = 0;
    out_.flush();
}

} // namespace harness
} // namespace satori
