#include "satori/harness/trace.hpp"

#include <iomanip>

#include "satori/common/logging.hpp"

namespace satori {
namespace harness {

TraceWriter::TraceWriter(const std::string& path, TraceFormat format)
    : out_(path), format_(format)
{
    if (!out_.good())
        SATORI_FATAL("cannot open trace file: " + path);
    out_ << std::setprecision(10);
}

void
TraceWriter::write(const TraceRecord& record)
{
    switch (format_) {
      case TraceFormat::Csv:
        if (!header_written_) {
            writeCsvHeader(record);
            header_written_ = true;
        }
        writeCsv(record);
        break;
      case TraceFormat::JsonLines:
        writeJson(record);
        break;
    }
    ++count_;
}

void
TraceWriter::writeCsvHeader(const TraceRecord& record)
{
    out_ << "time,policy,config,throughput,fairness,w_t,w_f,settled";
    for (std::size_t j = 0; j < record.ips.size(); ++j)
        out_ << ",ips_" << j;
    for (std::size_t j = 0; j < record.speedups.size(); ++j)
        out_ << ",speedup_" << j;
    out_ << ",faults\n";
}

void
TraceWriter::writeCsv(const TraceRecord& record)
{
    out_ << record.time << "," << record.policy << ",\""
         << record.config.toString() << "\"," << record.throughput
         << "," << record.fairness << "," << record.w_t << ","
         << record.w_f << "," << (record.settled ? 1 : 0);
    for (double v : record.ips)
        out_ << "," << v;
    for (double v : record.speedups)
        out_ << "," << v;
    out_ << ",\"" << record.faults << "\"\n";
}

void
TraceWriter::writeJson(const TraceRecord& record)
{
    out_ << "{\"time\":" << record.time << ",\"policy\":\""
         << record.policy << "\",\"config\":\""
         << record.config.toString() << "\",\"throughput\":"
         << record.throughput << ",\"fairness\":" << record.fairness
         << ",\"w_t\":" << record.w_t << ",\"w_f\":" << record.w_f
         << ",\"settled\":" << (record.settled ? "true" : "false");
    out_ << ",\"ips\":[";
    for (std::size_t j = 0; j < record.ips.size(); ++j)
        out_ << (j ? "," : "") << record.ips[j];
    out_ << "],\"speedups\":[";
    for (std::size_t j = 0; j < record.speedups.size(); ++j)
        out_ << (j ? "," : "") << record.speedups[j];
    out_ << "],\"faults\":\"" << record.faults << "\"}\n";
}

void
TraceWriter::flush()
{
    out_.flush();
}

} // namespace harness
} // namespace satori
