#include "satori/harness/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace harness {

namespace {

/** Format a double the way the pre-buffered writer did (10 digits). */
std::string
num(double value)
{
    std::ostringstream os;
    os << std::setprecision(10) << value;
    return os.str();
}

/** "<msg>: <path>: <strerror>" with errno captured eagerly. */
std::string
describeIoError(const std::string& msg, const std::string& path)
{
    const int err = errno;
    return msg + ": " + path + ": " +
           (err != 0 ? std::strerror(err) : "unknown error");
}

} // namespace

TraceWriter::TraceWriter(const std::string& path, TraceFormat format,
                         std::size_t flush_every)
    : path_(path), tmp_path_(path + ".tmp"),
      out_(tmp_path_, std::ios::binary | std::ios::trunc),
      format_(format), flush_every_(flush_every)
{
    if (!out_.good())
        SATORI_FATAL(describeIoError("cannot open trace file", tmp_path_));
}

TraceWriter::~TraceWriter()
{
    // Destructors must not throw: report finalization failures to
    // stderr and leave the .tmp file behind as evidence.
    try {
        close();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "satori: trace finalization failed: %s\n",
                     e.what());
    }
}

void
TraceWriter::write(const TraceRecord& record)
{
    switch (format_) {
      case TraceFormat::Csv:
        if (!header_written_) {
            writeCsvHeader(record);
            header_written_ = true;
        }
        writeCsv(record);
        break;
      case TraceFormat::JsonLines:
        writeJson(record);
        break;
    }
    ++count_;
    ++buffered_;
    if (flush_every_ > 0 && buffered_ >= flush_every_)
        flush();
}

void
TraceWriter::writeCsvHeader(const TraceRecord& record)
{
    buffer_ += "time,policy,config,throughput,fairness,w_t,w_f,settled";
    for (std::size_t j = 0; j < record.ips.size(); ++j)
        buffer_ += ",ips_" + std::to_string(j);
    for (std::size_t j = 0; j < record.speedups.size(); ++j)
        buffer_ += ",speedup_" + std::to_string(j);
    buffer_ += ",faults\n";
}

void
TraceWriter::writeCsv(const TraceRecord& record)
{
    buffer_ += num(record.time) + "," + record.policy + ",\"" +
               record.config.toString() + "\"," +
               num(record.throughput) + "," + num(record.fairness) +
               "," + num(record.w_t) + "," + num(record.w_f) + "," +
               (record.settled ? "1" : "0");
    for (double v : record.ips) {
        buffer_ += ",";
        buffer_ += num(v);
    }
    for (double v : record.speedups) {
        buffer_ += ",";
        buffer_ += num(v);
    }
    buffer_ += ",\"" + record.faults + "\"\n";
}

void
TraceWriter::writeJson(const TraceRecord& record)
{
    buffer_ += "{\"time\":" + num(record.time) + ",\"policy\":\"" +
               record.policy + "\",\"config\":\"" +
               record.config.toString() +
               "\",\"throughput\":" + num(record.throughput) +
               ",\"fairness\":" + num(record.fairness) +
               ",\"w_t\":" + num(record.w_t) +
               ",\"w_f\":" + num(record.w_f) + ",\"settled\":" +
               (record.settled ? "true" : "false");
    buffer_ += ",\"ips\":[";
    for (std::size_t j = 0; j < record.ips.size(); ++j) {
        if (j > 0)
            buffer_ += ",";
        buffer_ += num(record.ips[j]);
    }
    buffer_ += "],\"speedups\":[";
    for (std::size_t j = 0; j < record.speedups.size(); ++j) {
        if (j > 0)
            buffer_ += ",";
        buffer_ += num(record.speedups[j]);
    }
    buffer_ += "],\"faults\":\"" + record.faults + "\"}\n";
}

void
TraceWriter::flush()
{
    SATORI_ASSERT(!closed_);
    if (!buffer_.empty()) {
        out_ << buffer_;
        buffer_.clear();
    }
    buffered_ = 0;
    out_.flush();
    if (!out_.good())
        SATORI_FATAL(describeIoError("write to trace file failed",
                                     tmp_path_));
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    flush();
    out_.close();
    if (out_.fail())
        SATORI_FATAL(describeIoError("closing trace file failed",
                                     tmp_path_));
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        SATORI_FATAL(describeIoError("installing trace file '" + path_ +
                                         "' failed",
                                     tmp_path_));
    closed_ = true;
}

} // namespace harness
} // namespace satori
