#include "satori/core/policy.hpp"

namespace satori {
namespace core {

// Anchor the interface's vtable in the core library.
PartitioningPolicy::~PartitioningPolicy() = default;

} // namespace core
} // namespace satori
