#include "satori/core/telemetry_guard.hpp"

#include <algorithm>
#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/stats.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace core {
namespace {

/** Consistent gaussian sigma estimate from a MAD (the 1.4826 factor). */
constexpr double kMadToSigma = 1.4826;

double
medianOf(std::vector<double> v)
{
    SATORI_ASSERT(!v.empty());
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
        const double lo =
            *std::max_element(v.begin(), v.begin() + mid);
        m = 0.5 * (m + lo);
    }
    return m;
}

} // namespace

TelemetryGuard::TelemetryGuard(std::size_t num_jobs,
                               TelemetryGuardOptions options)
    : num_jobs_(num_jobs), options_(options), jobs_(num_jobs)
{
    SATORI_ASSERT(num_jobs_ >= 1);
}

void
TelemetryGuard::accept(JobHistory& h, double value)
{
    if (h.window.size() < options_.hampel_window) {
        h.window.push_back(value);
    } else {
        h.window[h.next] = value;
        h.next = (h.next + 1) % options_.hampel_window;
    }
    h.last_good = value;
    h.has_last_good = true;
    h.bad_streak = 0;
}

SampleHealth
TelemetryGuard::filter(IntervalObservation& obs)
{
    if (!options_.enabled)
        return SampleHealth::Healthy;
    ++stats_.intervals;

    // A wrong-shape observation cannot be attributed to jobs at all:
    // reject it wholesale and, when possible, stand in the last good
    // vectors so downstream size invariants hold.
    if (obs.ips.size() != num_jobs_ ||
        obs.isolation_ips.size() != num_jobs_) {
        ++stats_.size_mismatches;
        ++stats_.unusable_intervals;
        obs.ips.assign(num_jobs_, 0.0);
        for (std::size_t j = 0; j < num_jobs_; ++j)
            obs.ips[j] = jobs_[j].has_last_good ? jobs_[j].last_good : 1.0;
        if (last_good_iso_.size() == num_jobs_)
            obs.isolation_ips = last_good_iso_;
        else
            obs.isolation_ips.assign(num_jobs_, 1.0);
        SATORI_OBS_METRIC(guard_unusable.inc());
        return SampleHealth::Unusable;
    }

    // The isolation baseline is refreshed rarely; any positive finite
    // snapshot is kept as the fallback for mismatched intervals.
    bool iso_ok = true;
    for (const double v : obs.isolation_ips)
        if (!std::isfinite(v) || v <= 0.0)
            iso_ok = false;
    if (iso_ok)
        last_good_iso_ = obs.isolation_ips;
    else if (last_good_iso_.size() == num_jobs_)
        obs.isolation_ips = last_good_iso_;

    bool any_repair = false;
    bool any_unusable = !iso_ok && last_good_iso_.size() != num_jobs_;

    // A reconfiguration legitimately moves every job's IPS level; the
    // Hampel gate only judges samples taken under the same allocation
    // as the previous interval. (Finite/freeze checks always apply.)
    const bool config_stable =
        has_last_config_ && obs.config == last_config_;
    last_config_ = obs.config;
    has_last_config_ = true;

    for (std::size_t j = 0; j < num_jobs_; ++j) {
        JobHistory& h = jobs_[j];
        const double raw = obs.ips[j];

        // Stale-counter detection: noisy hardware counters never
        // repeat bit-identically; a run of equal reads means the
        // source froze and the value carries no new information.
        bool frozen = false;
        // Exact repeat is the point: freeze detection wants bitwise
        // equality, not closeness. satori-analyzer: allow(num-float-eq)
        if (h.has_last_raw && raw == h.last_raw) {
            if (++h.freeze_count + 1 >= options_.freeze_run &&
                options_.freeze_run > 0) {
                frozen = true;
                ++stats_.frozen_detected;
            }
        } else {
            h.freeze_count = 0;
        }
        h.last_raw = raw;
        h.has_last_raw = true;

        const bool finite_ok = std::isfinite(raw) && raw > 0.0;
        if (!finite_ok)
            ++stats_.non_finite;

        // Hampel gate against the rolling window of accepted values.
        bool outlier = false;
        if (finite_ok && !frozen && config_stable &&
            h.window.size() >= std::max<std::size_t>(
                                   5, options_.hampel_window / 2)) {
            const double med = medianOf(h.window);
            std::vector<double> dev;
            dev.reserve(h.window.size());
            for (const double v : h.window)
                dev.push_back(std::abs(v - med));
            const double mad = medianOf(std::move(dev));
            // Floor the scale so a quiet window cannot turn ordinary
            // noise into outliers.
            const double sigma =
                std::max(kMadToSigma * mad, 1e-3 * std::abs(med));
            if (std::abs(raw - med) >
                options_.hampel_threshold * sigma) {
                outlier = true;
                ++stats_.outliers_gated;
            }
        }

        if (finite_ok && !frozen && !outlier) {
            accept(h, raw);
            continue;
        }

        // Bad sample: substitute the last good value while the
        // staleness budget lasts.
        ++h.bad_streak;
        if (h.bad_streak <= options_.staleness_budget &&
            h.has_last_good) {
            obs.ips[j] = h.last_good;
            ++stats_.repaired_values;
            any_repair = true;
            continue;
        }

        // Budget exhausted. A finite value that kept deviating is a
        // regime shift - accept it and reseed the window so the gate
        // tracks the new level. A frozen stream is not a shift (real
        // counters never repeat exactly), and a non-finite one has no
        // information at all: both leave the interval unusable.
        if (finite_ok && !frozen) {
            h.window.clear();
            h.next = 0;
            accept(h, raw);
            ++stats_.regime_accepts;
            any_repair = true;
        } else {
            if (h.has_last_good)
                obs.ips[j] = h.last_good; // keep the vector finite
            else
                obs.ips[j] = 1.0;
            any_unusable = true;
        }
    }

    if (any_unusable) {
        ++stats_.unusable_intervals;
        SATORI_OBS_METRIC(guard_unusable.inc());
        return SampleHealth::Unusable;
    }
    if (any_repair) {
        SATORI_OBS_METRIC(guard_repaired.inc());
        return SampleHealth::Repaired;
    }
    SATORI_OBS_METRIC(guard_healthy.inc());
    return SampleHealth::Healthy;
}

void
TelemetryGuard::reset()
{
    jobs_.assign(num_jobs_, JobHistory{});
    last_good_iso_.clear();
    has_last_config_ = false;
    stats_ = TelemetryGuardStats{};
}

void
TelemetryGuard::saveState(persist::StateWriter& w) const
{
    w.putSize(num_jobs_);
    for (const JobHistory& h : jobs_) {
        w.putDoubleVec(h.window);
        w.putSize(h.next);
        w.putDouble(h.last_good);
        w.putBool(h.has_last_good);
        w.putDouble(h.last_raw);
        w.putBool(h.has_last_raw);
        w.putSize(h.freeze_count);
        w.putSize(h.bad_streak);
    }
    w.putDoubleVec(last_good_iso_);
    persist::putConfiguration(w, last_config_);
    w.putBool(has_last_config_);
    w.putSize(stats_.intervals);
    w.putSize(stats_.repaired_values);
    w.putSize(stats_.outliers_gated);
    w.putSize(stats_.frozen_detected);
    w.putSize(stats_.non_finite);
    w.putSize(stats_.size_mismatches);
    w.putSize(stats_.unusable_intervals);
    w.putSize(stats_.regime_accepts);
}

void
TelemetryGuard::restoreState(persist::StateReader& r)
{
    const std::size_t saved_jobs = r.getSize();
    if (saved_jobs != num_jobs_)
        SATORI_FATAL("telemetry-guard state has " +
                     std::to_string(saved_jobs) +
                     " jobs, this guard tracks " +
                     std::to_string(num_jobs_));
    for (JobHistory& h : jobs_) {
        h.window = r.getDoubleVec();
        h.next = r.getSize();
        h.last_good = r.getDouble();
        h.has_last_good = r.getBool();
        h.last_raw = r.getDouble();
        h.has_last_raw = r.getBool();
        h.freeze_count = r.getSize();
        h.bad_streak = r.getSize();
    }
    last_good_iso_ = r.getDoubleVec();
    last_config_ = persist::getConfiguration(r);
    has_last_config_ = r.getBool();
    stats_.intervals = r.getSize();
    stats_.repaired_values = r.getSize();
    stats_.outliers_gated = r.getSize();
    stats_.frozen_detected = r.getSize();
    stats_.non_finite = r.getSize();
    stats_.size_mismatches = r.getSize();
    stats_.unusable_intervals = r.getSize();
    stats_.regime_accepts = r.getSize();
}

} // namespace core
} // namespace satori
