#include "satori/core/weights.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace core {

WeightController::WeightController(Options options)
    : options_(options)
{
    SATORI_ASSERT(options_.dt > 0.0);
    SATORI_ASSERT(options_.prioritization_period >= options_.dt);
    SATORI_ASSERT(options_.equalization_period >=
                  options_.prioritization_period);
    SATORI_ASSERT(options_.w_min >= 0.0 && options_.w_max <= 1.0 &&
                  options_.w_min < options_.w_max);
}

WeightComponents
WeightController::update(double throughput, double fairness)
{
    WeightComponents out;

    const auto tp_iters = static_cast<std::size_t>(
        std::llround(options_.prioritization_period / options_.dt));
    const auto te_iters = static_cast<std::size_t>(
        std::llround(options_.equalization_period / options_.dt));

    // --- Prioritization component (Eq. 4) -------------------------------
    if (period_start_throughput_ < 0.0) {
        // First observation: anchor the period, keep neutral weights.
        period_start_throughput_ = throughput;
        period_start_fairness_ = fairness;
    }
    ++t_p_iters_;
    out.prioritization_boundary = (t_p_iters_ >= tp_iters);
    if (out.prioritization_boundary) {
        const double dt_improve = std::max(
            (throughput - period_start_throughput_) /
                std::max(period_start_throughput_, 1e-9),
            0.0);
        const double df_improve = std::max(
            (fairness - period_start_fairness_) /
                std::max(period_start_fairness_, 1e-9),
            0.0);
        const double total = dt_improve + df_improve;
        if (total < 1e-12) {
            w_tp_ = 0.5;
            w_fp_ = 0.5;
        } else if (options_.favor_weaker_goal) {
            // Eq. 4: the goal whose counterpart improved gets the next
            // opportunity (bounded to [0.25, 0.75] by construction).
            w_tp_ = 0.25 + 0.5 * df_improve / total;
            w_fp_ = 0.25 + 0.5 * dt_improve / total;
        } else {
            // The ~5%-worse alternative: keep favoring the goal that
            // performed well.
            w_tp_ = 0.25 + 0.5 * dt_improve / total;
            w_fp_ = 0.25 + 0.5 * df_improve / total;
        }
        t_p_iters_ = 0;
        period_start_throughput_ = throughput;
        period_start_fairness_ = fairness;
    }
    out.w_tp = w_tp_;
    out.w_fp = w_fp_;

    // --- Equalization component (Eq. 3, per-iteration units) ------------
    const double mean_wt =
        t_e_iters_ == 0 ? 0.5
                        : sum_wt_ / static_cast<double>(t_e_iters_);
    out.w_te = clamp(0.5 + (0.5 - mean_wt), 0.0, 1.0);
    out.w_fe = 1.0 - out.w_te;

    // --- Blend (Eqs. 5-6): equalization dominates near the end of T_E ---
    const double frac = static_cast<double>(t_e_iters_) /
                        static_cast<double>(te_iters);
    out.blend = frac;
    double w_t = frac * out.w_te + (1.0 - frac) * out.w_tp;
    w_t = clamp(w_t, options_.w_min, options_.w_max);
    out.w_t = w_t;
    out.w_f = 1.0 - w_t;

    // --- Advance the equalization period --------------------------------
    sum_wt_ += w_t;
    ++t_e_iters_;
    if (t_e_iters_ >= te_iters) {
        last_eq_mean_wt_ = sum_wt_ / static_cast<double>(t_e_iters_);
        t_e_iters_ = 0;
        sum_wt_ = 0.0;
        out.equalization_boundary = true;
    }
    return out;
}

void
WeightController::resetPeriods()
{
    t_e_iters_ = 0;
    sum_wt_ = 0.0;
    t_p_iters_ = 0;
    period_start_throughput_ = -1.0;
    period_start_fairness_ = -1.0;
    w_tp_ = 0.5;
    w_fp_ = 0.5;
}

void
WeightController::saveState(persist::StateWriter& w) const
{
    w.putSize(t_e_iters_);
    w.putDouble(sum_wt_);
    w.putSize(t_p_iters_);
    w.putDouble(period_start_throughput_);
    w.putDouble(period_start_fairness_);
    w.putDouble(w_tp_);
    w.putDouble(w_fp_);
    w.putDouble(last_eq_mean_wt_);
}

void
WeightController::restoreState(persist::StateReader& r)
{
    t_e_iters_ = r.getSize();
    sum_wt_ = r.getDouble();
    t_p_iters_ = r.getSize();
    period_start_throughput_ = r.getDouble();
    period_start_fairness_ = r.getDouble();
    w_tp_ = r.getDouble();
    w_fp_ = r.getDouble();
    last_eq_mean_wt_ = r.getDouble();
}

} // namespace core
} // namespace satori
