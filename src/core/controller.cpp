#include "satori/core/controller.hpp"

#include <algorithm>
#include <cmath>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/metrics/metrics.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace core {

std::string
goalModeName(GoalMode mode)
{
    switch (mode) {
      case GoalMode::Balanced:
        return "SATORI";
      case GoalMode::StaticEqual:
        return "SATORI-static";
      case GoalMode::ThroughputOnly:
        return "Throughput-SATORI";
      case GoalMode::FairnessOnly:
        return "Fairness-SATORI";
    }
    SATORI_PANIC("unknown GoalMode");
}

SatoriController::SatoriController(const PlatformSpec& platform,
                                   std::size_t num_jobs,
                                   SatoriOptions options)
    : options_(std::move(options)), space_(platform, num_jobs),
      candgen_(space_, options_.candidates), engine_(options_.engine),
      recorder_(options_.objective.numGoals(), options_.window),
      weight_controller_(options_.weights), rng_(options_.seed),
      cusum_(options_.cusum),
      guard_(num_jobs, options_.resilience.guard),
      equal_config_(Configuration::equalPartition(platform, num_jobs))
{
    seeds_ = candgen_.seedConfigurations();
    if (options_.max_seeds > 0 && seeds_.size() > options_.max_seeds) {
        // Keep the equal partition plus an even spread of variants.
        std::vector<Configuration> kept;
        kept.push_back(seeds_.front());
        const std::size_t stride =
            (seeds_.size() - 1 + options_.max_seeds - 2) /
            (options_.max_seeds - 1);
        for (std::size_t i = 1; i < seeds_.size(); i += stride)
            kept.push_back(seeds_[i]);
        seeds_ = std::move(kept);
    }
    SATORI_ASSERT(!seeds_.empty());
    // A fixed probe set for proxy-model-change diagnostics (Fig. 17b).
    Rng probe_rng = rng_.split();
    probes_.reserve(options_.num_probes);
    for (std::size_t i = 0; i < options_.num_probes; ++i)
        probes_.push_back(space_.sample(probe_rng).normalizedVector());
}

std::string
SatoriController::name() const
{
    return goalModeName(options_.mode);
}

std::pair<double, double>
SatoriController::currentWeights(double throughput, double fairness)
{
    switch (options_.mode) {
      case GoalMode::Balanced: {
        diagnostics_.weights =
            weight_controller_.update(throughput, fairness);
        return {diagnostics_.weights.w_t, diagnostics_.weights.w_f};
      }
      case GoalMode::StaticEqual:
        diagnostics_.weights = WeightComponents{};
        return {0.5, 0.5};
      case GoalMode::ThroughputOnly:
        diagnostics_.weights = WeightComponents{};
        diagnostics_.weights.w_t = 1.0;
        diagnostics_.weights.w_f = 0.0;
        return {1.0, 0.0};
      case GoalMode::FairnessOnly:
        diagnostics_.weights = WeightComponents{};
        diagnostics_.weights.w_t = 0.0;
        diagnostics_.weights.w_f = 1.0;
        return {0.0, 1.0};
    }
    SATORI_PANIC("unknown GoalMode");
}

const Configuration&
SatoriController::holdCourse() const
{
    if (settled_)
        return settled_config_;
    if (last_decision_.numJobs() > 0)
        return last_decision_;
    return equal_config_;
}

void
SatoriController::recordOnly(const IntervalObservation& obs)
{
    const std::vector<double> goals = options_.objective.goalValues(obs);
    recorder_.add(obs.config, goals);
    diagnostics_.throughput = goals[0];
    diagnostics_.fairness = goals[1];
    const auto [w_t, w_f] = currentWeights(goals[0], goals[1]);
    diagnostics_.objective_value = w_t * goals[0] + w_f * goals[1];
    diagnostics_.num_samples = recorder_.size();
}

Configuration
SatoriController::decide(const IntervalObservation& raw_obs)
{
    SATORI_OBS_SPAN("controller.decide");
    ++decide_calls_;
    SATORI_OBS_METRIC(controller_decisions.inc());

    // Telemetry validation: repair or reject the observation before
    // any of its values can reach the recorder, the weight clock, or
    // the GP. With resilience disabled this is a no-op and the method
    // reduces to Algorithm 1 exactly.
    IntervalObservation obs = raw_obs;
    const SampleHealth health = guard_.filter(obs);
    if (health == SampleHealth::Unusable) {
        ++unusable_streak_;
        healthy_streak_ = 0;
        ++diagnostics_.unusable_intervals;
    } else if (health == SampleHealth::Healthy) {
        unusable_streak_ = 0;
        ++healthy_streak_;
    } else { // Repaired: counts as neither unusable nor fully healthy.
        unusable_streak_ = 0;
        healthy_streak_ = 0;
    }

    // Degraded fallback: repeated unusable telemetry means every
    // decision would be built on lies. Run the equal partition (the
    // fair static choice) and freeze all learning until the stream
    // recovers; then re-explore from trimmed records, exactly like a
    // reactivation.
    if (degraded_) {
        if (healthy_streak_ >= options_.resilience.recover_after) {
            degraded_ = false;
            settled_ = false;
            stall_counter_ = 0;
            best_balanced_ = -1.0;
            settled_ref_objective_ = -1.0;
            settled_ref_ips_.clear();
            reactivate_strikes_ = 0;
            job_strikes_ = 0;
            settled_warmup_ = 0;
            burst_len_ = 0;
            cusum_.reset();
            if (options_.reactivate_keep_samples > 0 &&
                !recorder_.empty())
                recorder_.trimToRecent(options_.reactivate_keep_samples);
        } else {
            diagnostics_.degraded = true;
            diagnostics_.settled = false;
            expected_config_ = equal_config_;
            has_expected_ = true;
            SATORI_OBS_METRIC(controller_degraded.inc());
            emitObsAudit(obs, health, equal_config_, "degraded");
            return equal_config_;
        }
    } else if (options_.resilience.degraded_after > 0 &&
               unusable_streak_ >= options_.resilience.degraded_after) {
        degraded_ = true;
        ++diagnostics_.degraded_entries;
        diagnostics_.degraded = true;
        diagnostics_.settled = false;
        expected_config_ = equal_config_;
        has_expected_ = true;
        SATORI_OBS_METRIC(controller_degraded.inc());
        emitObsAudit(obs, health, equal_config_, "degraded");
        return equal_config_;
    }
    diagnostics_.degraded = false;

    // An isolated unusable interval (budget-exhausted NaN stream,
    // size mismatch): learn nothing, hold the current course.
    if (health == SampleHealth::Unusable) {
        const Configuration& hold = holdCourse();
        expected_config_ = hold;
        has_expected_ = true;
        SATORI_OBS_METRIC(controller_holds.inc());
        emitObsAudit(obs, health, hold, "hold");
        return hold;
    }

    // Actuation verification: obs.config is what actually ran. If it
    // is not what was requested, the actuation was dropped, delayed,
    // or partially applied - re-issue the request a bounded number of
    // times before accepting reality. The interval is still recorded
    // (it is a true sample of obs.config) and the weight clock still
    // advances.
    if (options_.resilience.actuation_retry > 0 && has_expected_) {
        if (obs.config == expected_config_) {
            actuation_retries_ = 0;
        } else {
            ++diagnostics_.actuation_mismatches;
            if (actuation_retries_ <
                options_.resilience.actuation_retry) {
                ++actuation_retries_;
                ++diagnostics_.actuation_retries;
                recordOnly(obs);
                SATORI_OBS_METRIC(controller_retries.inc());
                emitObsAudit(obs, health, expected_config_,
                             "retry-actuation");
                return expected_config_;
            }
            actuation_retries_ = 0; // give up; adopt the observed state
        }
    }

    const Configuration decision = decideCore(obs);
    expected_config_ = decision;
    has_expected_ = true;
    emitObsAudit(obs, health, decision, last_outcome_);
    return decision;
}

Configuration
SatoriController::decideCore(const IntervalObservation& obs)
{
    // (1) Record the outcome of the configuration that just ran,
    // keeping each goal's value separately (Sec. III-B).
    const std::vector<double> goals = options_.objective.goalValues(obs);
    recorder_.add(obs.config, goals);
    diagnostics_.throughput = goals[0];
    diagnostics_.fairness = goals[1];

    // Dynamic weights are tracked in both states so the long-term
    // 0.5-average property holds across settle/explore transitions.
    const auto [w_t, w_f] = currentWeights(goals[0], goals[1]);
    SATORI_OBS_METRIC(controller_w_t.set(w_t));
    SATORI_OBS_METRIC(controller_w_f.set(w_f));

    // Audit the interval the controller is acting on: the incoming
    // configuration must be feasible and the regenerated per-goal
    // values and weight vector sane (Jain in (0, 1], weights ~1).
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkAllocation(
        space_.platform(), space_.numJobs(), obs.config, __FILE__,
        __LINE__));
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkObjective(
        goals, options_.objective.weightVector(w_t, w_f),
        options_.objective.fairnessMetric() == FairnessMetric::JainIndex,
        __FILE__, __LINE__));

    // (1b) While settled, skip all GP work (the paper's overhead
    // optimization) and just watch for a significant drop of the
    // balanced objective, signalling a phase or mix change.
    if (settled_) {
        diagnostics_.settled = true;
        diagnostics_.num_samples = recorder_.size();
        diagnostics_.proxy_change_pct = 0.0;
        diagnostics_.objective_value =
            w_t * goals[0] + w_f * goals[1];
        SATORI_OBS_METRIC(
            controller_objective.set(diagnostics_.objective_value));
        const double balanced_now = 0.5 * goals[0] + 0.5 * goals[1];
        // Temporary prioritization acts while settled too: every
        // prioritization boundary the incumbent is re-selected under
        // the *current* weights, so a throughput-priority period runs
        // a throughput-leaning configuration and vice versa - the
        // short-term trade the paper exploits (Sec. III-C, Fig. 3).
        if (options_.mode == GoalMode::Balanced &&
            diagnostics_.weights.prioritization_boundary &&
            !recorder_.empty()) {
            const std::vector<double> w_now =
                options_.objective.weightVector(w_t, w_f);
            const std::size_t best_i =
                recorder_.bestSampleByAveragedObjective(
                    w_now, options_.incumbent_kappa);
            const Configuration& choice =
                recorder_.sample(best_i).config;
            if (!(choice == settled_config_)) {
                settled_config_ = choice;
                settled_ref_objective_ = -1.0; // re-anchor reference
                reactivate_strikes_ = 0;
            }
        }
        bool reactivate = false;
        if (options_.use_cusum_reactivation) {
            // Alternative detector: two-sided CUSUM on the balanced
            // objective (calibrates on the first settled samples).
            reactivate = cusum_.update(balanced_now);
        } else if (settled_ref_objective_ < 0.0) {
            // Anchor the references only after the reconfiguration
            // transient of switching to the settled configuration has
            // decayed; otherwise the recovery itself looks like a
            // performance change and re-triggers exploration.
            if (obs.config == settled_config_ && ++settled_warmup_ >= 3) {
                settled_ref_objective_ = balanced_now;
                settled_ref_ips_ = obs.ips;
            }
        } else {
            // Trigger A: the combined objective degraded.
            if (balanced_now <
                settled_ref_objective_ *
                    (1.0 - options_.reactivate_threshold)) {
                reactivate = (++reactivate_strikes_ >= 2);
            } else {
                reactivate_strikes_ = 0;
                settled_ref_objective_ =
                    std::max(settled_ref_objective_,
                             0.9 * settled_ref_objective_ +
                                 0.1 * balanced_now);
            }
            // Trigger B (the paper's wording): a specific job's
            // performance changed significantly - in either
            // direction - signalling a phase change that likely
            // moved the optimum even if our config still scores well.
            if (!reactivate && options_.reactivate_job_threshold > 0.0) {
                bool job_moved = false;
                for (std::size_t j = 0; j < obs.ips.size(); ++j) {
                    const double ref =
                        std::max(settled_ref_ips_[j], 1.0);
                    if (std::abs(obs.ips[j] - ref) / ref >
                        options_.reactivate_job_threshold) {
                        job_moved = true;
                        break;
                    }
                }
                if (job_moved)
                    reactivate = (++job_strikes_ >= 2);
                else
                    job_strikes_ = 0;
            }
        }
        if (!reactivate) {
            last_outcome_ = "settled";
            return settled_config_;
        }
        settled_ = false;
        stall_counter_ = 0;
        best_balanced_ = -1.0;
        settled_ref_objective_ = -1.0;
        settled_ref_ips_.clear();
        reactivate_strikes_ = 0;
        job_strikes_ = 0;
        settled_warmup_ = 0;
        burst_len_ = 0;
        if (options_.reactivate_keep_samples > 0)
            recorder_.trimToRecent(options_.reactivate_keep_samples);
    }
    diagnostics_.settled = false;
    ++burst_len_;

    // (2) Regenerate the objective function under the current dynamic
    // weights and software-reconstruct the proxy model.
    const std::vector<double> weights =
        options_.objective.weightVector(w_t, w_f);
    const std::vector<double> y = recorder_.combined(weights);
    diagnostics_.objective_value = y.back();
    SATORI_OBS_METRIC(
        controller_objective.set(diagnostics_.objective_value));
    engine_.setSamples(recorder_.inputs(), y);
    diagnostics_.num_samples = recorder_.size();
    SATORI_OBS_METRIC(
        bo_samples.set(static_cast<double>(recorder_.size())));

    // Convergence tracking on the weight-independent balanced
    // objective: settling must not depend on the moving goal post.
    const double balanced = 0.5 * goals[0] + 0.5 * goals[1];
    if (balanced > best_balanced_ + 1e-3) {
        best_balanced_ = balanced;
        stall_counter_ = 0;
    } else {
        ++stall_counter_;
    }

    // Proxy-change diagnostic (Fig. 17b): mean absolute % change of
    // the model's estimates at a fixed probe set.
    const std::vector<double> probe_means = engine_.probeMeans(probes_);
    if (!last_probe_means_.empty()) {
        double change = 0.0;
        for (std::size_t i = 0; i < probe_means.size(); ++i) {
            const double prev = last_probe_means_[i];
            const double denom = std::max(std::abs(prev), 1e-6);
            change += std::abs(probe_means[i] - prev) / denom;
        }
        diagnostics_.proxy_change_pct =
            100.0 * change / static_cast<double>(probe_means.size());
    }
    last_probe_means_ = probe_means;

    // Dwell: hold the previously chosen configuration for a few
    // intervals to amortize the reconfiguration transient and average
    // its noisy measurements.
    if (dwell_left_ > 0) {
        --dwell_left_;
        last_outcome_ = "dwell";
        return last_decision_;
    }

    // (3) During warm-up, evaluate the structured S_init list first
    // (Algorithm 1 input; Sec. V initialization-sensitivity note).
    if (next_seed_ < seeds_.size()) {
        last_decision_ = seeds_[next_seed_++];
        dwell_left_ = options_.dwell_intervals > 0
                          ? options_.dwell_intervals - 1
                          : 0;
        last_outcome_ = "seed";
        return last_decision_;
    }

    // (3b) Settle on the incumbent best once the search has stalled
    // or the burst budget is exhausted (Sec. V: stop GP updates after
    // optimal-configuration detection).
    const bool stalled = options_.stall_intervals > 0 &&
                         stall_counter_ >= options_.stall_intervals;
    const bool burst_spent = options_.burst_max_intervals > 0 &&
                             burst_len_ >= options_.burst_max_intervals;
    if ((stalled || burst_spent) &&
        recorder_.size() >= options_.min_explore_samples) {
        // Incumbent under the *current dynamic weights*: temporary
        // prioritization decides which configuration wins now, while
        // the equalization mechanism guarantees both goals receive
        // equal weight in the long run (Sec. III-C).
        const std::size_t best_i = recorder_.bestSampleByAveragedObjective(
            weights, options_.incumbent_kappa);
        settled_ = true;
        settled_config_ = recorder_.sample(best_i).config;
        settled_ref_objective_ = -1.0;
        settled_ref_ips_.clear();
        reactivate_strikes_ = 0;
        job_strikes_ = 0;
        settled_warmup_ = 0;
        cusum_.reset();
        diagnostics_.settled = true;
        SATORI_OBS_METRIC(controller_settles.inc());
        last_outcome_ = "settled";
        return settled_config_;
    }

    // (4) Maximize the acquisition function over the candidate set,
    // interleaving exploitation of the incumbent so co-located jobs
    // are not held on speculative configurations for a whole burst.
    const Configuration& incumbent =
        recorder_
            .sample(recorder_.bestSampleByAveragedObjective(
                weights, options_.incumbent_kappa))
            .config;
    ++explore_steps_;
    if (options_.exploit_period > 0 &&
        explore_steps_ % options_.exploit_period == 0) {
        last_decision_ = incumbent;
        dwell_left_ = options_.dwell_intervals > 0
                          ? options_.dwell_intervals - 1
                          : 0;
        last_outcome_ = "exploit";
        return incumbent;
    }
    std::vector<Configuration> candidates =
        candgen_.generate(incumbent, rng_);
    // Fairness-repair candidates: moves of 1-3 units of each resource
    // from the least- to the most-slowed job, from the incumbent.
    // Multi-unit moves let a single decision cross working-set cliffs
    // that one-unit explorers are blind to.
    {
        const std::vector<double> spd =
            speedups(obs.ips, obs.isolation_ips);
        JobIndex worst = 0, best_j = 0;
        for (JobIndex j = 1; j < spd.size(); ++j) {
            if (spd[j] < spd[worst])
                worst = j;
            if (spd[j] > spd[best_j])
                best_j = j;
        }
        if (worst != best_j) {
            for (std::size_t r = 0; r < space_.platform().numResources();
                 ++r) {
                Configuration c = incumbent;
                for (int step = 0; step < 4; ++step) {
                    if (!c.transferUnit(r, best_j, worst))
                        break;
                    candidates.push_back(c);
                }
            }
        }
    }
    std::vector<RealVec> xs;
    std::vector<double> penalties;
    xs.reserve(candidates.size());
    penalties.reserve(candidates.size());
    for (const auto& c : candidates) {
        xs.push_back(c.normalizedVector());
        penalties.push_back(options_.switch_penalty *
                            Configuration::l1Distance(obs.config, c));
    }
    const std::size_t pick = engine_.suggestIndex(xs, penalties);
    last_decision_ = candidates[pick];
    dwell_left_ = options_.dwell_intervals > 0
                      ? options_.dwell_intervals - 1
                      : 0;
    last_outcome_ = "explore";
    return last_decision_;
}

void
SatoriController::emitObsAudit(const IntervalObservation& observation,
                               SampleHealth health,
                               const Configuration& decision,
                               const char* outcome) const
{
#if defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED
    satori::obs::Observability& ctx = satori::obs::observability();
    satori::obs::DecisionAuditChannel& channel = ctx.audit();
    // The record feeds two one-way sinks: the audit ring and the live
    // plane's /healthz + facts.* history series. Build it if either
    // wants it.
    if (!channel.enabled() && !ctx.liveEnabled())
        return;
    satori::obs::DecisionRecord rec;
    rec.interval = decide_calls_ - 1;
    rec.time = observation.time;
    rec.policy = goalModeName(options_.mode);
    rec.observed_ips.assign(observation.ips.begin(),
                            observation.ips.end());
    if (!options_.resilience.guard.enabled) {
        rec.guard_verdict = "off";
    } else {
        switch (health) {
          case SampleHealth::Healthy:
            rec.guard_verdict = "healthy";
            break;
          case SampleHealth::Repaired:
            rec.guard_verdict = "repaired";
            break;
          case SampleHealth::Unusable:
            rec.guard_verdict = "unusable";
            break;
        }
    }
    rec.degraded = diagnostics_.degraded;
    rec.settled = diagnostics_.settled;
    rec.throughput = diagnostics_.throughput;
    rec.fairness = diagnostics_.fairness;
    rec.w_t = diagnostics_.weights.w_t;
    rec.w_f = diagnostics_.weights.w_f;
    rec.objective = diagnostics_.objective_value;
    rec.bo_samples = diagnostics_.num_samples;
    rec.proxy_change_pct = diagnostics_.proxy_change_pct;
    rec.chosen_config = decision.toString();
    rec.outcome = outcome;
    const bo::BoEngine::SuggestStats& sstats = engine_.suggestStats();
    rec.screen_kept = sstats.screen_kept;
    rec.screen_pruned = sstats.screen_pruned;
    rec.window_evictions = sstats.window_evictions;
    rec.approx_active = sstats.approx_active;
    if (ctx.liveEnabled())
        ctx.noteDecision(rec);
    if (channel.enabled())
        channel.emit(std::move(rec));
#else
    (void)observation;
    (void)health;
    (void)decision;
    (void)outcome;
#endif
}

void
SatoriController::reset()
{
    recorder_.clear();
    weight_controller_.resetPeriods();
    next_seed_ = 0;
    last_probe_means_.clear();
    settled_ = false;
    settled_ref_objective_ = -1.0;
    settled_ref_ips_.clear();
    reactivate_strikes_ = 0;
    job_strikes_ = 0;
    settled_warmup_ = 0;
    cusum_.reset();
    best_balanced_ = -1.0;
    stall_counter_ = 0;
    explore_steps_ = 0;
    burst_len_ = 0;
    dwell_left_ = 0;
    guard_.reset();
    degraded_ = false;
    unusable_streak_ = 0;
    healthy_streak_ = 0;
    has_expected_ = false;
    actuation_retries_ = 0;
    decide_calls_ = 0;
    last_outcome_ = "";
    diagnostics_ = SatoriDiagnostics{};
    engine_ = bo::BoEngine(options_.engine);
}

void
SatoriController::saveState(persist::StateWriter& w) const
{
    engine_.saveState(w);
    recorder_.saveState(w);
    weight_controller_.saveState(w);
    rng_.saveState(w);
    w.putSize(next_seed_);
    w.putDoubleVec(last_probe_means_);

    w.putBool(settled_);
    persist::putConfiguration(w, settled_config_);
    w.putDouble(settled_ref_objective_);
    w.putDoubleVec(settled_ref_ips_);
    w.putI64(reactivate_strikes_);
    w.putI64(job_strikes_);
    w.putI64(settled_warmup_);
    cusum_.saveState(w);
    w.putDouble(best_balanced_);
    w.putSize(stall_counter_);
    w.putSize(explore_steps_);
    w.putSize(burst_len_);
    persist::putConfiguration(w, last_decision_);
    w.putSize(dwell_left_);

    guard_.saveState(w);
    w.putBool(degraded_);
    w.putSize(unusable_streak_);
    w.putSize(healthy_streak_);
    persist::putConfiguration(w, expected_config_);
    w.putBool(has_expected_);
    w.putSize(actuation_retries_);
    w.putSize(decide_calls_);

    const SatoriDiagnostics& d = diagnostics_;
    w.putDouble(d.weights.w_t);
    w.putDouble(d.weights.w_f);
    w.putDouble(d.weights.w_te);
    w.putDouble(d.weights.w_fe);
    w.putDouble(d.weights.w_tp);
    w.putDouble(d.weights.w_fp);
    w.putDouble(d.weights.blend);
    w.putBool(d.weights.equalization_boundary);
    w.putBool(d.weights.prioritization_boundary);
    w.putDouble(d.objective_value);
    w.putDouble(d.throughput);
    w.putDouble(d.fairness);
    w.putDouble(d.proxy_change_pct);
    w.putSize(d.num_samples);
    w.putBool(d.settled);
    w.putBool(d.degraded);
    w.putSize(d.degraded_entries);
    w.putSize(d.actuation_mismatches);
    w.putSize(d.actuation_retries);
    w.putSize(d.unusable_intervals);
}

void
SatoriController::restoreState(persist::StateReader& r)
{
    engine_.restoreState(r);
    recorder_.restoreState(r);
    weight_controller_.restoreState(r);
    rng_.restoreState(r);
    next_seed_ = r.getSize();
    if (next_seed_ > seeds_.size())
        SATORI_FATAL("controller state seed cursor " +
                     std::to_string(next_seed_) + " exceeds the " +
                     std::to_string(seeds_.size()) + " seeds of this "
                     "instance (options mismatch?)");
    last_probe_means_ = r.getDoubleVec();

    settled_ = r.getBool();
    settled_config_ = persist::getConfiguration(r);
    settled_ref_objective_ = r.getDouble();
    settled_ref_ips_ = r.getDoubleVec();
    reactivate_strikes_ = static_cast<int>(r.getI64());
    job_strikes_ = static_cast<int>(r.getI64());
    settled_warmup_ = static_cast<int>(r.getI64());
    cusum_.restoreState(r);
    best_balanced_ = r.getDouble();
    stall_counter_ = r.getSize();
    explore_steps_ = r.getSize();
    burst_len_ = r.getSize();
    last_decision_ = persist::getConfiguration(r);
    dwell_left_ = r.getSize();

    guard_.restoreState(r);
    degraded_ = r.getBool();
    unusable_streak_ = r.getSize();
    healthy_streak_ = r.getSize();
    expected_config_ = persist::getConfiguration(r);
    has_expected_ = r.getBool();
    actuation_retries_ = r.getSize();
    decide_calls_ = r.getSize();

    SatoriDiagnostics& d = diagnostics_;
    d.weights.w_t = r.getDouble();
    d.weights.w_f = r.getDouble();
    d.weights.w_te = r.getDouble();
    d.weights.w_fe = r.getDouble();
    d.weights.w_tp = r.getDouble();
    d.weights.w_fp = r.getDouble();
    d.weights.blend = r.getDouble();
    d.weights.equalization_boundary = r.getBool();
    d.weights.prioritization_boundary = r.getBool();
    d.objective_value = r.getDouble();
    d.throughput = r.getDouble();
    d.fairness = r.getDouble();
    d.proxy_change_pct = r.getDouble();
    d.num_samples = r.getSize();
    d.settled = r.getBool();
    d.degraded = r.getBool();
    d.degraded_entries = r.getSize();
    d.actuation_mismatches = r.getSize();
    d.actuation_retries = r.getSize();
    d.unusable_intervals = r.getSize();

    // Points at string literals only; the next decide() reassigns it.
    last_outcome_ = "";
}

} // namespace core
} // namespace satori
