#include "satori/core/objective.hpp"

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace core {

ObjectiveSpec::ObjectiveSpec(ThroughputMetric tmetric,
                             FairnessMetric fmetric,
                             std::vector<ExtraGoal> extras)
    : tmetric_(tmetric), fmetric_(fmetric), extras_(std::move(extras))
{
    for (const auto& g : extras_) {
        if (g.weight_share <= 0.0 || g.weight_share >= 1.0)
            SATORI_FATAL("extra goal weight share must be in (0, 1)");
        if (!g.evaluator)
            SATORI_FATAL("extra goal '" + g.name + "' needs an evaluator");
        extra_share_ += g.weight_share;
    }
    if (extra_share_ >= 1.0)
        SATORI_FATAL("extra goal weight shares must sum below 1");
}

std::vector<double>
ObjectiveSpec::goalValues(const IntervalObservation& obs) const
{
    std::vector<double> out;
    out.reserve(numGoals());
    out.push_back(
        normalizedThroughput(tmetric_, obs.ips, obs.isolation_ips));
    out.push_back(normalizedFairness(
        fmetric_, speedups(obs.ips, obs.isolation_ips)));
    for (const auto& g : extras_)
        out.push_back(clamp(g.evaluator(obs), 0.0, 1.0));
    return out;
}

std::vector<double>
ObjectiveSpec::weightVector(double w_t, double w_f) const
{
    const double tf_budget = 1.0 - extra_share_;
    std::vector<double> out;
    out.reserve(numGoals());
    out.push_back(w_t * tf_budget);
    out.push_back(w_f * tf_budget);
    for (const auto& g : extras_)
        out.push_back(g.weight_share);
    return out;
}

double
ObjectiveSpec::combine(const std::vector<double>& weights,
                       const std::vector<double>& goals)
{
    SATORI_ASSERT(weights.size() == goals.size());
    double y = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k)
        y += weights[k] * goals[k];
    return y;
}

} // namespace core
} // namespace satori
