#include "satori/core/goal_record.hpp"

#include <cmath>
#include <map>
#include <string>

#include "satori/common/logging.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace core {

GoalRecorder::GoalRecorder(std::size_t num_goals, std::size_t window)
    : num_goals_(num_goals), window_(window)
{
    SATORI_ASSERT(num_goals_ >= 1);
}

void
GoalRecorder::add(Configuration config, std::vector<double> goal_values)
{
    SATORI_ASSERT(goal_values.size() == num_goals_);
    GoalSample s;
    s.x = config.normalizedVector();
    s.config = std::move(config);
    s.goals = std::move(goal_values);
    samples_.push_back(std::move(s));
    if (window_ > 0 && samples_.size() > window_)
        samples_.pop_front();
}

const GoalSample&
GoalRecorder::sample(std::size_t i) const
{
    SATORI_ASSERT(i < samples_.size());
    return samples_[i];
}

std::vector<RealVec>
GoalRecorder::inputs() const
{
    std::vector<RealVec> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_)
        out.push_back(s.x);
    return out;
}

std::vector<double>
GoalRecorder::combined(const std::vector<double>& weights) const
{
    SATORI_ASSERT(weights.size() == num_goals_);
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) {
        double y = 0.0;
        for (std::size_t k = 0; k < num_goals_; ++k)
            y += weights[k] * s.goals[k];
        out.push_back(y);
    }
    return out;
}

std::size_t
GoalRecorder::bestSampleByAveragedObjective(
    const std::vector<double>& weights, double uncertainty_kappa) const
{
    SATORI_ASSERT(!samples_.empty());
    SATORI_ASSERT(weights.size() == num_goals_);
    // Group repeated evaluations of the same configuration and rank
    // configurations by a recency-weighted mean combined score (so
    // measurements taken in stale program phases fade out), minus an
    // uncertainty discount that keeps a single lucky noisy sample
    // from being declared the incumbent.
    std::map<std::string, std::pair<double, double>> grouped;
    std::map<std::string, std::size_t> latest;
    const std::size_t n = samples_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto& s = samples_[i];
        double y = 0.0;
        for (std::size_t k = 0; k < num_goals_; ++k)
            y += weights[k] * s.goals[k];
        const double recency =
            std::pow(0.97, static_cast<double>(n - 1 - i));
        auto& acc = grouped[s.config.toString()];
        acc.first += recency * y;
        acc.second += recency;
        latest[s.config.toString()] = i;
    }
    std::string best_key;
    double best_score = -2.0;
    for (const auto& [key, acc] : grouped) {
        const double m = acc.first / acc.second;
        // acc.second is the effective (recency-discounted) sample
        // count; the discount shrinks as evaluations accumulate.
        const double score =
            m - uncertainty_kappa / std::sqrt(std::max(acc.second, 1e-3));
        if (score > best_score) {
            best_score = score;
            best_key = key;
        }
    }
    return latest.at(best_key);
}

void
GoalRecorder::trimToRecent(std::size_t n)
{
    while (samples_.size() > n)
        samples_.pop_front();
}

void
GoalRecorder::clear()
{
    samples_.clear();
}

void
GoalRecorder::saveState(persist::StateWriter& w) const
{
    w.putSize(num_goals_);
    w.putSize(samples_.size());
    for (const auto& s : samples_) {
        persist::putConfiguration(w, s.config);
        w.putDoubleVec(s.x);
        w.putDoubleVec(s.goals);
    }
}

void
GoalRecorder::restoreState(persist::StateReader& r)
{
    const std::size_t saved_goals = r.getSize();
    if (saved_goals != num_goals_)
        SATORI_FATAL("goal-record state has " +
                     std::to_string(saved_goals) +
                     " goals per sample, this recorder uses " +
                     std::to_string(num_goals_));
    const std::size_t n = r.getSize();
    samples_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        GoalSample s;
        s.config = persist::getConfiguration(r);
        s.x = r.getDoubleVec();
        s.goals = r.getDoubleVec();
        if (s.goals.size() != num_goals_)
            SATORI_FATAL("goal-record state sample " +
                         std::to_string(i) +
                         " has a mismatched goal vector");
        samples_.push_back(std::move(s));
    }
}

} // namespace core
} // namespace satori
