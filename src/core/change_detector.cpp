#include "satori/core/change_detector.hpp"

#include <algorithm>
#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace core {

ChangeDetector::ChangeDetector(ChangeDetectorOptions options)
    : options_(options)
{
    SATORI_ASSERT(options_.slack_sigmas >= 0.0);
    SATORI_ASSERT(options_.threshold_sigmas > options_.slack_sigmas);
    SATORI_ASSERT(options_.calibration_samples >= 2);
}

bool
ChangeDetector::update(double value)
{
    if (calibrating_) {
        ++calib_n_;
        calib_sum_ += value;
        calib_sq_ += value * value;
        if (calib_n_ >= options_.calibration_samples) {
            const double n = static_cast<double>(calib_n_);
            mean_ = calib_sum_ / n;
            const double var =
                std::max(calib_sq_ / n - mean_ * mean_, 0.0);
            // Inflate the small-sample sigma estimate to guard the
            // false-alarm rate against calibration underestimation.
            const double inflation = 1.0 + 1.0 / std::sqrt(2.0 * n);
            sigma_ = std::max(std::sqrt(var) * inflation,
                              std::abs(mean_) *
                                  options_.min_relative_sigma);
            if (sigma_ <= 0.0)
                sigma_ = 1e-9;
            cusum_hi_ = 0.0;
            cusum_lo_ = 0.0;
            calibrating_ = false;
        }
        return false;
    }

    const double z = (value - mean_) / sigma_;
    cusum_hi_ = std::max(0.0, cusum_hi_ + z - options_.slack_sigmas);
    cusum_lo_ = std::max(0.0, cusum_lo_ - z - options_.slack_sigmas);
    if (cusum_hi_ > options_.threshold_sigmas ||
        cusum_lo_ > options_.threshold_sigmas) {
        reset();
        return true;
    }
    return false;
}

void
ChangeDetector::reset()
{
    calibrating_ = true;
    calib_n_ = 0;
    calib_sum_ = 0.0;
    calib_sq_ = 0.0;
    cusum_hi_ = 0.0;
    cusum_lo_ = 0.0;
}

void
ChangeDetector::saveState(persist::StateWriter& w) const
{
    w.putBool(calibrating_);
    w.putSize(calib_n_);
    w.putDouble(calib_sum_);
    w.putDouble(calib_sq_);
    w.putDouble(mean_);
    w.putDouble(sigma_);
    w.putDouble(cusum_hi_);
    w.putDouble(cusum_lo_);
}

void
ChangeDetector::restoreState(persist::StateReader& r)
{
    calibrating_ = r.getBool();
    calib_n_ = r.getSize();
    calib_sum_ = r.getDouble();
    calib_sq_ = r.getDouble();
    mean_ = r.getDouble();
    sigma_ = r.getDouble();
    cusum_hi_ = r.getDouble();
    cusum_lo_ = r.getDouble();
}

} // namespace core
} // namespace satori
