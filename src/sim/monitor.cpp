#include "satori/sim/monitor.hpp"

namespace satori {
namespace sim {

PerfMonitor::PerfMonitor(SimulatedServer& server) : server_(server)
{
    resetBaseline();
}

IntervalObservation
PerfMonitor::observe(Seconds dt)
{
    IntervalObservation obs;
    obs.dt = dt;
    obs.config = server_.configuration();
    obs.ips = server_.step(dt);
    obs.time = server_.now();
    obs.isolation_ips = baseline_;
    return obs;
}

void
PerfMonitor::resetBaseline()
{
    baseline_ = server_.isolationIpsNow();
}

} // namespace sim
} // namespace satori
