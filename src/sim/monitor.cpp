#include "satori/sim/monitor.hpp"

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace sim {

PerfMonitor::PerfMonitor(SimulatedServer& server) : server_(server)
{
    resetBaseline();
}

IntervalObservation
PerfMonitor::observe(Seconds dt)
{
    SATORI_OBS_SPAN("sim.observe");
    const Seconds prev_time = server_.now();
    (void)prev_time; // consumed only by the audit hook
    IntervalObservation obs;
    obs.dt = dt;
    obs.config = server_.configuration();
    obs.ips = server_.step(dt);
    obs.time = server_.now();
    obs.isolation_ips = baseline_;
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkObservation(
        obs.ips, obs.isolation_ips, server_.numJobs(), obs.time, prev_time,
        __FILE__, __LINE__));
    return obs;
}

void
PerfMonitor::resetBaseline()
{
    baseline_ = server_.isolationIpsNow();
}

void
PerfMonitor::saveState(persist::StateWriter& w) const
{
    w.putDoubleVec(baseline_);
}

void
PerfMonitor::restoreState(persist::StateReader& r)
{
    baseline_ = r.getDoubleVec();
    if (baseline_.size() != server_.numJobs())
        SATORI_FATAL("monitor state baseline does not match the job "
                     "count");
}

} // namespace sim
} // namespace satori
