#include "satori/sim/server.hpp"

#include <algorithm>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace sim {

SimulatedServer::SimulatedServer(PlatformSpec platform,
                                 perfmodel::MachineParams machine,
                                 std::vector<workloads::WorkloadProfile> mix,
                                 ServerOptions options)
    : platform_(std::move(platform)), machine_(machine),
      options_(options), rng_(options.seed)
{
    if (mix.empty())
        SATORI_FATAL("a server needs at least one job");
    if (platform_.numResources() == 0)
        SATORI_FATAL("a server needs at least one partitionable resource");
    for (auto& profile : mix)
        jobs_.emplace_back(std::move(profile));
    config_ = Configuration::equalPartition(platform_, jobs_.size());
    reconfig_penalty_.assign(jobs_.size(), 0.0);
}

void
SimulatedServer::setConfiguration(const Configuration& config)
{
    // Audits every policy decision applied to the server: per-resource
    // sums must equal capacity, every job >= 1 unit of everything.
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkAllocation(
        platform_, jobs_.size(), config, __FILE__, __LINE__));
    if (config.numResources() != platform_.numResources())
        SATORI_FATAL("configuration has " +
                     std::to_string(config.numResources()) +
                     " resources, platform has " +
                     std::to_string(platform_.numResources()));
    if (config.numJobs() != jobs_.size())
        SATORI_FATAL("configuration has " +
                     std::to_string(config.numJobs()) +
                     " jobs, server runs " +
                     std::to_string(jobs_.size()));
    // Name the offending resource: an over-committed total is the
    // error a buggy policy actually produces, and "invalid
    // configuration" gives no lead on which actuator to inspect.
    for (std::size_t r = 0; r < platform_.numResources(); ++r) {
        const int total = config.totalUnits(r);
        const int capacity = platform_.units(r);
        if (total != capacity)
            SATORI_FATAL(
                "resource " +
                resourceKindName(platform_.resource(r).kind) + ": " +
                std::to_string(total) + " units configured, platform " +
                (total > capacity ? "capacity is only "
                                  : "requires exactly ") +
                std::to_string(capacity) + " in " + config.toString());
        for (std::size_t j = 0; j < jobs_.size(); ++j)
            if (config.units(r, j) < 1)
                SATORI_FATAL(
                    "resource " +
                    resourceKindName(platform_.resource(r).kind) +
                    ": job " + std::to_string(j) +
                    " received < 1 unit in " + config.toString());
    }
    // Accrue the reconfiguration transient for every job whose
    // allocation changed (cache re-warming, thread migration).
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        double cost = 0.0;
        for (std::size_t r = 0; r < platform_.numResources(); ++r) {
            const int delta =
                std::abs(config.units(r, j) - config_.units(r, j));
            if (delta == 0)
                continue;
            switch (platform_.resource(r).kind) {
              case ResourceKind::Cores:
                cost += options_.reconfig_cost_cores * delta;
                break;
              case ResourceKind::LlcWays:
                cost += options_.reconfig_cost_ways * delta;
                break;
              case ResourceKind::MemBandwidth:
              case ResourceKind::PowerCap:
                cost += options_.reconfig_cost_bw * delta;
                break;
            }
        }
        reconfig_penalty_[j] = std::min(reconfig_penalty_[j] + cost,
                                        options_.reconfig_cost_cap);
    }
    config_ = config;
}

perfmodel::AllocationView
SimulatedServer::allocationView(const Configuration& config,
                                JobIndex j) const
{
    perfmodel::AllocationView view;
    view.cores = 1;
    view.llc_ways = 1;
    view.bw_fraction = 1.0;
    view.power_fraction = 1.0;
    for (std::size_t r = 0; r < platform_.numResources(); ++r) {
        const int units = config.units(r, j);
        const double total = static_cast<double>(platform_.units(r));
        switch (platform_.resource(r).kind) {
          case ResourceKind::Cores:
            view.cores = units;
            break;
          case ResourceKind::LlcWays:
            view.llc_ways = units;
            break;
          case ResourceKind::MemBandwidth:
            view.bw_fraction = static_cast<double>(units) / total;
            break;
          case ResourceKind::PowerCap:
            // Normalize to the fair share: units/total * numJobs == 1
            // at the equal partition.
            view.power_fraction = static_cast<double>(units) / total *
                                  static_cast<double>(jobs_.size());
            break;
        }
    }
    return view;
}

std::vector<Ips>
SimulatedServer::step(Seconds dt)
{
    SATORI_OBS_SPAN("sim.step");
    SATORI_OBS_METRIC(sim_steps.inc());
    SATORI_ASSERT(dt > 0.0);
    std::vector<Ips> measured(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        const auto view = allocationView(config_, j);
        const auto perf = perfmodel::evaluatePhase(
            jobs_[j].currentPhase(), machine_, view);
        // Multiplicative measurement/interference noise, floored so a
        // job never appears stopped.
        const double noise =
            std::max(0.5, rng_.gaussian(1.0, options_.noise_sigma));
        // Outstanding reconfiguration transient, decaying per interval.
        const double transient = 1.0 - reconfig_penalty_[j];
        reconfig_penalty_[j] *= options_.reconfig_decay;
        const double throttle =
            external_throttle_.empty() ? 1.0 : external_throttle_[j];
        const Ips ips = perf.ips * noise * transient * throttle;
        jobs_[j].retire(ips * dt);
        measured[j] = ips;
    }
    now_ += dt;
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkMeasuredIps(
        measured, __FILE__, __LINE__));
    return measured;
}

std::vector<Ips>
SimulatedServer::isolationIpsNow() const
{
    std::vector<Ips> out(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        out[j] = isolationIpsAt(j, jobs_[j].currentPhaseIndex());
    return out;
}

std::vector<std::size_t>
SimulatedServer::phaseSignature() const
{
    std::vector<std::size_t> sig(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        sig[j] = jobs_[j].currentPhaseIndex();
    return sig;
}

const Job&
SimulatedServer::job(std::size_t j) const
{
    SATORI_ASSERT(j < jobs_.size());
    return jobs_[j];
}

Job&
SimulatedServer::job(std::size_t j)
{
    SATORI_ASSERT(j < jobs_.size());
    return jobs_[j];
}

void
SimulatedServer::replaceJob(std::size_t j,
                            workloads::WorkloadProfile profile)
{
    if (j >= jobs_.size())
        SATORI_FATAL("replaceJob: job index " + std::to_string(j) +
                     " out of range (" + std::to_string(jobs_.size()) +
                     " jobs)");
    if (profile.phases.empty())
        SATORI_FATAL("replaceJob: workload '" + profile.name +
                     "' has no phases");
    jobs_[j] = Job(std::move(profile));
    reconfig_penalty_[j] = 0.0;
    // Churn must leave per-job bookkeeping consistent: one transient
    // slot per job, configuration shape unchanged.
    SATORI_ASSERT(reconfig_penalty_.size() == jobs_.size());
    SATORI_ASSERT(config_.numJobs() == jobs_.size());
}

void
SimulatedServer::setExternalThrottle(std::vector<double> factors)
{
    if (factors.empty()) {
        external_throttle_.clear();
        return;
    }
    if (factors.size() != jobs_.size())
        SATORI_FATAL("external throttle has " +
                     std::to_string(factors.size()) +
                     " entries, server runs " +
                     std::to_string(jobs_.size()) + " jobs");
    for (std::size_t j = 0; j < factors.size(); ++j)
        if (!(factors[j] > 0.0) || factors[j] > 1.0)
            SATORI_FATAL("external throttle for job " +
                         std::to_string(j) + " must be in (0, 1], got " +
                         std::to_string(factors[j]));
    external_throttle_ = std::move(factors);
}

std::vector<Ips>
SimulatedServer::evaluateIps(
    const Configuration& config,
    const std::vector<std::size_t>& phase_signature) const
{
    SATORI_ASSERT(phase_signature.size() == jobs_.size());
    SATORI_ASSERT(config.isValidFor(platform_, jobs_.size()));
    std::vector<Ips> out(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        const auto& phase =
            jobs_[j].profile().phases.at(phase_signature[j]);
        const auto view = allocationView(config, j);
        out[j] = perfmodel::evaluatePhase(phase, machine_, view).ips;
    }
    return out;
}

Ips
SimulatedServer::isolationIpsAt(std::size_t j,
                                std::size_t phase_index) const
{
    SATORI_ASSERT(j < jobs_.size());
    const auto& phase = jobs_[j].profile().phases.at(phase_index);
    perfmodel::AllocationView view;
    view.bw_fraction = 1.0;
    view.power_fraction = 1.0;
    view.cores = 1;
    view.llc_ways = 1;
    for (std::size_t r = 0; r < platform_.numResources(); ++r) {
        switch (platform_.resource(r).kind) {
          case ResourceKind::Cores:
            view.cores = platform_.units(r);
            break;
          case ResourceKind::LlcWays:
            view.llc_ways = platform_.units(r);
            break;
          case ResourceKind::MemBandwidth:
          case ResourceKind::PowerCap:
            break; // full fractions already set
        }
    }
    return perfmodel::evaluatePhase(phase, machine_, view).ips;
}

void
SimulatedServer::saveState(persist::StateWriter& w) const
{
    w.putSize(jobs_.size());
    for (const Job& job : jobs_)
        job.saveState(w);
    persist::putConfiguration(w, config_);
    rng_.saveState(w);
    w.putDouble(now_);
    w.putDoubleVec(reconfig_penalty_);
    w.putDoubleVec(external_throttle_);
}

void
SimulatedServer::restoreState(persist::StateReader& r)
{
    const std::size_t saved_jobs = r.getSize();
    if (saved_jobs != jobs_.size())
        SATORI_FATAL("server state has " + std::to_string(saved_jobs) +
                     " jobs, this server runs " +
                     std::to_string(jobs_.size()));
    for (Job& job : jobs_)
        job.restoreState(r);
    Configuration config = persist::getConfiguration(r);
    if (!config.isValidFor(platform_, jobs_.size()))
        SATORI_FATAL("server state configuration " + config.toString() +
                     " is invalid for this platform");
    config_ = std::move(config);
    rng_.restoreState(r);
    now_ = r.getDouble();
    reconfig_penalty_ = r.getDoubleVec();
    if (reconfig_penalty_.size() != jobs_.size())
        SATORI_FATAL("server state reconfiguration transients do not "
                     "match the job count");
    external_throttle_ = r.getDoubleVec();
    if (!external_throttle_.empty() &&
        external_throttle_.size() != jobs_.size())
        SATORI_FATAL("server state external throttle does not match "
                     "the job count");
}

} // namespace sim
} // namespace satori
