#include "satori/sim/job.hpp"

#include "satori/common/logging.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace sim {

Job::Job(workloads::WorkloadProfile profile)
    : profile_(std::move(profile)), phases_(profile_.phases)
{
    SATORI_ASSERT(profile_.fixed_work > 0);
}

const perfmodel::PhaseParams&
Job::currentPhase() const
{
    return phases_.current();
}

std::size_t
Job::currentPhaseIndex() const
{
    return phases_.currentIndex();
}

void
Job::retire(Instructions n)
{
    SATORI_ASSERT(n >= 0);
    phases_.advance(n);
    total_retired_ += n;
    run_retired_ += n;
    while (run_retired_ >= profile_.fixed_work) {
        run_retired_ -= profile_.fixed_work;
        ++completed_runs_;
    }
}

double
Job::runProgress() const
{
    return run_retired_ / profile_.fixed_work;
}

void
Job::reset()
{
    phases_.reset();
    total_retired_ = 0;
    run_retired_ = 0;
    completed_runs_ = 0;
}

void
Job::saveState(persist::StateWriter& w) const
{
    w.putSize(phases_.currentIndex());
    w.putDouble(phases_.progressInPhase());
    w.putDouble(total_retired_);
    w.putDouble(run_retired_);
    w.putU64(completed_runs_);
}

void
Job::restoreState(persist::StateReader& r)
{
    const std::size_t index = r.getSize();
    const Instructions progress = r.getDouble();
    phases_.seek(index, progress);
    total_retired_ = r.getDouble();
    run_retired_ = r.getDouble();
    completed_runs_ = r.getU64();
}

} // namespace sim
} // namespace satori
