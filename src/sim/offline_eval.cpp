#include "satori/sim/offline_eval.hpp"

#include <cmath>

#include "satori/common/logging.hpp"

namespace satori {
namespace sim {

struct OfflineEvaluator::IpsTables
{
    /** ips[j][flat unit index] with flat = sum_r (u_r - 1) * stride_r. */
    std::vector<std::vector<double>> ips;
    std::vector<std::size_t> strides; ///< Per-resource flat strides.
    std::vector<Ips> isolation;       ///< Isolation IPS at this signature.
    double isolation_sum = 0.0;
};

OfflineEvaluator::OfflineEvaluator(const SimulatedServer& server,
                                   Options options)
    : server_(server), options_(options),
      space_(server.platform(), server.numJobs())
{
}

OfflineEvaluator::IpsTables
OfflineEvaluator::buildTables(
    const std::vector<std::size_t>& phase_signature) const
{
    const PlatformSpec& platform = server_.platform();
    const std::size_t num_jobs = server_.numJobs();
    const std::size_t num_res = platform.numResources();

    IpsTables t;
    // A job can hold at most U_r - (M - 1) units of resource r (every
    // other job keeps at least one).
    std::vector<int> dims(num_res);
    t.strides.assign(num_res, 0);
    std::size_t table_size = 1;
    for (std::size_t r = 0; r < num_res; ++r) {
        dims[r] = platform.units(r) - static_cast<int>(num_jobs) + 1;
        SATORI_ASSERT(dims[r] >= 1);
        t.strides[r] = table_size;
        table_size *= static_cast<std::size_t>(dims[r]);
    }

    t.ips.assign(num_jobs, std::vector<double>(table_size, 0.0));
    std::vector<std::vector<int>> alloc(
        num_res, std::vector<int>(num_jobs, 1));
    for (std::size_t j = 0; j < num_jobs; ++j) {
        // Enumerate this job's possible unit vectors with an odometer
        // over resources; other jobs' units are irrelevant to job j's
        // model, so a dummy-but-valid configuration is unnecessary -
        // we call the model through the server's allocation view on a
        // scratch configuration carrying only job j's true units.
        std::vector<int> units(num_res, 1);
        for (std::size_t flat = 0; flat < table_size; ++flat) {
            for (std::size_t r = 0; r < num_res; ++r)
                alloc[r][j] = units[r];
            const Configuration scratch(alloc);
            const auto view = server_.allocationView(scratch, j);
            const auto& phase =
                server_.job(j).profile().phases.at(phase_signature[j]);
            t.ips[j][flat] =
                perfmodel::evaluatePhase(phase, server_.machine(), view)
                    .ips;
            // Advance the odometer.
            for (std::size_t r = 0; r < num_res; ++r) {
                if (units[r] < dims[r]) {
                    ++units[r];
                    break;
                }
                units[r] = 1;
            }
        }
        for (std::size_t r = 0; r < num_res; ++r)
            alloc[r][j] = 1;
    }

    t.isolation.resize(num_jobs);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        t.isolation[j] =
            server_.isolationIpsAt(j, phase_signature[j]);
        t.isolation_sum += t.isolation[j];
    }
    return t;
}

std::pair<double, double>
OfflineEvaluator::metricsFor(
    const Configuration& config,
    const std::vector<std::size_t>& phase_signature) const
{
    const std::vector<Ips> ips =
        server_.evaluateIps(config, phase_signature);
    std::vector<Ips> iso(server_.numJobs());
    for (std::size_t j = 0; j < server_.numJobs(); ++j)
        iso[j] = server_.isolationIpsAt(j, phase_signature[j]);
    const double t = normalizedThroughput(options_.tmetric, ips, iso);
    const double f =
        normalizedFairness(options_.fmetric, speedups(ips, iso));
    return {t, f};
}

const OracleResult&
OfflineEvaluator::bestFor(const std::vector<std::size_t>& phase_signature,
                          double w_t, double w_f)
{
    const MemoKey key{phase_signature,
                      {static_cast<std::int64_t>(std::llround(w_t * 1e6)),
                       static_cast<std::int64_t>(std::llround(w_f * 1e6))}};
    const auto hit = memo_.find(key);
    if (hit != memo_.end())
        return hit->second;

    ++searches_;
    const IpsTables tables = buildTables(phase_signature);
    const std::size_t num_jobs = server_.numJobs();
    const std::size_t num_res = server_.platform().numResources();

    const std::uint64_t total = space_.size();
    const std::uint64_t stride =
        total <= options_.max_evals
            ? 1
            : (total + options_.max_evals - 1) / options_.max_evals;

    OracleResult best;
    best.objective = -1.0;
    best.exhaustive = (stride == 1);

    const bool fast_metrics =
        options_.tmetric == ThroughputMetric::SumIps &&
        options_.fmetric == FairnessMetric::JainIndex;

    std::vector<double> spd(num_jobs);
    std::vector<Ips> ips_vec(num_jobs);
    for (std::uint64_t idx = 0; idx < total; idx += stride) {
        const Configuration config = space_.at(idx);
        double sum_ips = 0.0;
        for (std::size_t j = 0; j < num_jobs; ++j) {
            std::size_t flat = 0;
            for (std::size_t r = 0; r < num_res; ++r) {
                flat += static_cast<std::size_t>(config.units(r, j) - 1) *
                        tables.strides[r];
            }
            const double ips = tables.ips[j][flat];
            ips_vec[j] = ips;
            sum_ips += ips;
            spd[j] = ips / tables.isolation[j];
        }
        double thr, fair;
        if (fast_metrics) {
            // Inlined sum-IPS throughput + Jain index for speed.
            double m = 0.0;
            for (double s : spd)
                m += s;
            m /= static_cast<double>(num_jobs);
            double ss = 0.0;
            for (double s : spd)
                ss += (s - m) * (s - m);
            const double var = ss / static_cast<double>(num_jobs);
            const double cov2 = m > 0.0 ? var / (m * m) : 0.0;
            fair = 1.0 / (1.0 + cov2);
            thr = std::min(sum_ips / tables.isolation_sum /
                               colocationThroughputScale(num_jobs),
                           1.0);
        } else {
            thr = normalizedThroughput(options_.tmetric, ips_vec,
                                       tables.isolation);
            fair = normalizedFairness(options_.fmetric, spd);
        }

        const double objective = w_t * thr + w_f * fair;
        if (objective > best.objective) {
            best.objective = objective;
            best.throughput = thr;
            best.fairness = fair;
            best.config = config;
        }
    }
    SATORI_ASSERT(best.objective >= 0.0);
    return memo_.emplace(key, std::move(best)).first->second;
}

} // namespace sim
} // namespace satori
