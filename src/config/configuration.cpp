#include "satori/config/configuration.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {

Configuration::Configuration(std::vector<std::vector<int>> alloc)
    : alloc_(std::move(alloc))
{
    if (!alloc_.empty()) {
        const std::size_t jobs = alloc_.front().size();
        for (const auto& row : alloc_)
            SATORI_ASSERT(row.size() == jobs);
    }
}

std::size_t
Configuration::numJobs() const
{
    return alloc_.empty() ? 0 : alloc_.front().size();
}

int
Configuration::units(ResourceIndex r, JobIndex j) const
{
    SATORI_ASSERT(r < alloc_.size() && j < alloc_[r].size());
    return alloc_[r][j];
}

int&
Configuration::units(ResourceIndex r, JobIndex j)
{
    SATORI_ASSERT(r < alloc_.size() && j < alloc_[r].size());
    return alloc_[r][j];
}

const std::vector<int>&
Configuration::resourceRow(ResourceIndex r) const
{
    SATORI_ASSERT(r < alloc_.size());
    return alloc_[r];
}

int
Configuration::totalUnits(ResourceIndex r) const
{
    const auto& row = resourceRow(r);
    return std::accumulate(row.begin(), row.end(), 0);
}

bool
Configuration::isValidFor(const PlatformSpec& platform,
                          std::size_t num_jobs) const
{
    if (alloc_.size() != platform.numResources())
        return false;
    for (std::size_t r = 0; r < alloc_.size(); ++r) {
        if (alloc_[r].size() != num_jobs)
            return false;
        int total = 0;
        for (int u : alloc_[r]) {
            if (u < 1)
                return false;
            total += u;
        }
        if (total != platform.units(r))
            return false;
    }
    return true;
}

Configuration
Configuration::equalPartition(const PlatformSpec& platform,
                              std::size_t num_jobs)
{
    SATORI_ASSERT(num_jobs >= 1);
    std::vector<std::vector<int>> alloc(platform.numResources());
    for (std::size_t r = 0; r < platform.numResources(); ++r) {
        const int units = platform.units(r);
        if (static_cast<std::size_t>(units) < num_jobs)
            SATORI_FATAL("resource '" +
                         resourceKindName(platform.resource(r).kind) +
                         "' has fewer units than co-located jobs");
        const int base = units / static_cast<int>(num_jobs);
        const int extra = units % static_cast<int>(num_jobs);
        alloc[r].assign(num_jobs, base);
        for (int j = 0; j < extra; ++j)
            alloc[r][static_cast<std::size_t>(j)] += 1;
    }
    return Configuration(std::move(alloc));
}

RealVec
Configuration::normalizedVector() const
{
    RealVec out;
    out.reserve(numResources() * numJobs());
    for (std::size_t r = 0; r < numResources(); ++r) {
        const double total = static_cast<double>(totalUnits(r));
        for (std::size_t j = 0; j < numJobs(); ++j)
            out.push_back(static_cast<double>(alloc_[r][j]) / total);
    }
    return out;
}

double
Configuration::distance(const Configuration& a, const Configuration& b)
{
    SATORI_ASSERT(a.numResources() == b.numResources());
    SATORI_ASSERT(a.numJobs() == b.numJobs());
    double d2 = 0.0;
    for (std::size_t r = 0; r < a.numResources(); ++r) {
        for (std::size_t j = 0; j < a.numJobs(); ++j) {
            const double d =
                static_cast<double>(a.alloc_[r][j] - b.alloc_[r][j]);
            d2 += d * d;
        }
    }
    return std::sqrt(d2);
}

int
Configuration::l1Distance(const Configuration& a, const Configuration& b)
{
    SATORI_ASSERT(a.numResources() == b.numResources());
    SATORI_ASSERT(a.numJobs() == b.numJobs());
    int d = 0;
    for (std::size_t r = 0; r < a.numResources(); ++r)
        for (std::size_t j = 0; j < a.numJobs(); ++j)
            d += std::abs(a.alloc_[r][j] - b.alloc_[r][j]);
    return d;
}

bool
Configuration::transferUnit(ResourceIndex r, JobIndex from, JobIndex to)
{
    SATORI_ASSERT(r < alloc_.size());
    SATORI_ASSERT(from < numJobs() && to < numJobs());
    if (from == to || alloc_[r][from] <= 1)
        return false;
    alloc_[r][from] -= 1;
    alloc_[r][to] += 1;
    return true;
}

std::string
Configuration::toString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t r = 0; r < alloc_.size(); ++r) {
        if (r)
            os << "|";
        for (std::size_t j = 0; j < alloc_[r].size(); ++j) {
            if (j)
                os << ",";
            os << alloc_[r][j];
        }
    }
    os << "]";
    return os.str();
}

bool
Configuration::operator==(const Configuration& other) const
{
    return alloc_ == other.alloc_;
}

} // namespace satori
