#include "satori/config/platform.hpp"

#include "satori/common/logging.hpp"

namespace satori {

std::string
resourceKindName(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Cores:
        return "cores";
      case ResourceKind::LlcWays:
        return "llc_ways";
      case ResourceKind::MemBandwidth:
        return "mem_bw";
      case ResourceKind::PowerCap:
        return "power_cap";
    }
    SATORI_PANIC("unknown ResourceKind");
}

PlatformSpec::PlatformSpec(std::vector<ResourceSpec> resources)
    : resources_(std::move(resources))
{
    for (const auto& r : resources_)
        SATORI_ASSERT(r.units >= 1);
}

void
PlatformSpec::addResource(ResourceKind kind, int units)
{
    if (units < 1)
        SATORI_FATAL("resource must have at least one unit");
    if (indexOf(kind) >= 0)
        SATORI_FATAL("duplicate resource kind in platform");
    resources_.push_back({kind, units});
}

const ResourceSpec&
PlatformSpec::resource(ResourceIndex r) const
{
    SATORI_ASSERT(r < resources_.size());
    return resources_[r];
}

int
PlatformSpec::indexOf(ResourceKind kind) const
{
    for (std::size_t i = 0; i < resources_.size(); ++i)
        if (resources_[i].kind == kind)
            return static_cast<int>(i);
    return -1;
}

PlatformSpec
PlatformSpec::restrictedTo(const std::vector<ResourceKind>& kinds) const
{
    PlatformSpec out;
    for (const auto& r : resources_) {
        for (ResourceKind k : kinds) {
            if (r.kind == k) {
                out.addResource(r.kind, r.units);
                break;
            }
        }
    }
    return out;
}

PlatformSpec
PlatformSpec::paperTestbed()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 10);
    p.addResource(ResourceKind::LlcWays, 11);
    p.addResource(ResourceKind::MemBandwidth, 10);
    return p;
}

PlatformSpec
PlatformSpec::smallTestbed()
{
    PlatformSpec p;
    p.addResource(ResourceKind::Cores, 8);
    p.addResource(ResourceKind::LlcWays, 8);
    p.addResource(ResourceKind::MemBandwidth, 8);
    return p;
}

PlatformSpec
PlatformSpec::extendedTestbed()
{
    PlatformSpec p = paperTestbed();
    p.addResource(ResourceKind::PowerCap, 8);
    return p;
}

} // namespace satori
