#include "satori/config/enumeration.hpp"

#include <numeric>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {

CompositionSpace::CompositionSpace(int units, int parts)
    : units_(units), parts_(parts)
{
    if (parts < 1)
        SATORI_FATAL("composition must have at least one part");
    if (units < parts)
        SATORI_FATAL("cannot give every job at least one unit: units < jobs");
    size_ = binomial(static_cast<std::uint64_t>(units - 1),
                     static_cast<std::uint64_t>(parts - 1));
}

std::vector<int>
CompositionSpace::at(std::uint64_t index) const
{
    SATORI_ASSERT(index < size_);
    std::vector<int> out(static_cast<std::size_t>(parts_));
    int remaining_units = units_;
    for (int p = 0; p < parts_ - 1; ++p) {
        const int remaining_parts = parts_ - p - 1;
        // First part can be 1 .. remaining_units - remaining_parts.
        for (int first = 1;; ++first) {
            const std::uint64_t block =
                binomial(static_cast<std::uint64_t>(
                             remaining_units - first - 1),
                         static_cast<std::uint64_t>(remaining_parts - 1));
            if (index < block) {
                out[static_cast<std::size_t>(p)] = first;
                remaining_units -= first;
                break;
            }
            index -= block;
        }
    }
    out[static_cast<std::size_t>(parts_ - 1)] = remaining_units;
    return out;
}

std::uint64_t
CompositionSpace::rank(const std::vector<int>& composition) const
{
    SATORI_ASSERT(composition.size() == static_cast<std::size_t>(parts_));
    std::uint64_t index = 0;
    int remaining_units = units_;
    for (int p = 0; p < parts_ - 1; ++p) {
        const int remaining_parts = parts_ - p - 1;
        const int value = composition[static_cast<std::size_t>(p)];
        SATORI_ASSERT(value >= 1);
        for (int first = 1; first < value; ++first) {
            index += binomial(static_cast<std::uint64_t>(
                                  remaining_units - first - 1),
                              static_cast<std::uint64_t>(
                                  remaining_parts - 1));
        }
        remaining_units -= value;
    }
    SATORI_ASSERT(composition.back() == remaining_units);
    return index;
}

std::vector<int>
CompositionSpace::sample(Rng& rng) const
{
    return at(rng.uniformInt(size_));
}

ConfigurationSpace::ConfigurationSpace(const PlatformSpec& platform,
                                       std::size_t num_jobs)
    : platform_(platform), num_jobs_(num_jobs)
{
    SATORI_ASSERT(num_jobs >= 1);
    size_ = 1;
    for (std::size_t r = 0; r < platform.numResources(); ++r) {
        per_resource_.emplace_back(platform.units(r),
                                   static_cast<int>(num_jobs));
        size_ *= per_resource_.back().size();
    }
}

Configuration
ConfigurationSpace::at(std::uint64_t index) const
{
    SATORI_ASSERT(index < size_);
    std::vector<std::vector<int>> alloc(per_resource_.size());
    // Mixed-radix decomposition, least-significant resource last.
    for (std::size_t r = per_resource_.size(); r-- > 0;) {
        const std::uint64_t radix = per_resource_[r].size();
        alloc[r] = per_resource_[r].at(index % radix);
        index /= radix;
    }
    return Configuration(std::move(alloc));
}

std::uint64_t
ConfigurationSpace::rank(const Configuration& config) const
{
    SATORI_ASSERT(config.numResources() == per_resource_.size());
    std::uint64_t index = 0;
    for (std::size_t r = 0; r < per_resource_.size(); ++r) {
        index = index * per_resource_[r].size() +
                per_resource_[r].rank(config.resourceRow(r));
    }
    return index;
}

Configuration
ConfigurationSpace::sample(Rng& rng) const
{
    std::vector<std::vector<int>> alloc(per_resource_.size());
    for (std::size_t r = 0; r < per_resource_.size(); ++r)
        alloc[r] = per_resource_[r].sample(rng);
    return Configuration(std::move(alloc));
}

std::vector<Configuration>
ConfigurationSpace::neighbors(const Configuration& config) const
{
    std::vector<Configuration> out;
    for (std::size_t r = 0; r < per_resource_.size(); ++r) {
        for (JobIndex from = 0; from < num_jobs_; ++from) {
            if (config.units(r, from) <= 1)
                continue;
            for (JobIndex to = 0; to < num_jobs_; ++to) {
                if (to == from)
                    continue;
                Configuration next = config;
                next.transferUnit(r, from, to);
                out.push_back(std::move(next));
            }
        }
    }
    return out;
}

std::uint64_t
ConfigurationSpace::sizeOf(const PlatformSpec& platform,
                           std::size_t num_jobs)
{
    std::uint64_t size = 1;
    for (std::size_t r = 0; r < platform.numResources(); ++r) {
        size *= binomial(static_cast<std::uint64_t>(platform.units(r) - 1),
                         static_cast<std::uint64_t>(num_jobs - 1));
    }
    return size;
}

} // namespace satori
