#include "satori/bo/kernel.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/linalg/simd.hpp"

namespace satori {
namespace bo {

namespace {

/**
 * Squared distances from @p q to every packed point, through the
 * fused simd::sqDistInto kernel. The dimension-pointer table lives
 * on the stack for any realistic dimensionality; beyond it, fall
 * back to the bit-identical one-dimension-at-a-time accumulation.
 */
void
sqDistBlock(const SoaPoints& pts, const RealVec& q, double* out)
{
    const std::size_t count = pts.count();
    const std::size_t dims = pts.dims();
    constexpr std::size_t kMaxStackDims = 64;
    if (dims <= kMaxStackDims) {
        const double* ptrs[kMaxStackDims];
        for (std::size_t d = 0; d < dims; ++d)
            ptrs[d] = pts.dim(d);
        linalg::simd::sqDistInto(out, ptrs, q.data(), dims, count);
        return;
    }
    for (std::size_t c = 0; c < count; ++c)
        out[c] = 0.0;
    for (std::size_t d = 0; d < dims; ++d)
        linalg::simd::accumSqDiff(out, pts.dim(d), q[d], count);
}

} // namespace

void
SoaPoints::assign(const std::vector<RealVec>& pts, std::size_t begin,
                  std::size_t end)
{
    SATORI_ASSERT(begin <= end && end <= pts.size());
    count_ = end - begin;
    dims_ = count_ > 0 ? pts[begin].size() : 0;
    data_.resize(count_ * dims_);
    for (std::size_t c = 0; c < count_; ++c) {
        const RealVec& p = pts[begin + c];
        SATORI_ASSERT(p.size() == dims_);
        for (std::size_t d = 0; d < dims_; ++d)
            data_[d * count_ + c] = p[d];
    }
}

void
Kernel::covarianceRow(const RealVec& x, const std::vector<RealVec>& pts,
                      double* out) const
{
    for (std::size_t i = 0; i < pts.size(); ++i)
        out[i] = covariance(x, pts[i]);
}

void
Kernel::covarianceCross(const SoaPoints& pts, const RealVec& q,
                        double* out) const
{
    // Generic fallback: gather each packed point back into a vector
    // and evaluate pairwise. Kernels with a hot batched path (Matern
    // 5/2) override this with the SoA-streaming version.
    RealVec p(pts.dims());
    for (std::size_t c = 0; c < pts.count(); ++c) {
        for (std::size_t d = 0; d < pts.dims(); ++d)
            p[d] = pts.dim(d)[c];
        out[c] = covariance(q, p);
    }
}

void
Kernel::covarianceCrossApprox(const SoaPoints& pts, const RealVec& q,
                              double* out,
                              std::vector<double>& scratch) const
{
    (void)scratch;
    covarianceCross(pts, q, out);
}

Matern52Kernel::Matern52Kernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
Matern52Kernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r = euclideanDistance(a, b);
    const double z = std::sqrt(5.0) * r / length_scale_;
    return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

void
Matern52Kernel::covarianceRow(const RealVec& x,
                              const std::vector<RealVec>& pts,
                              double* out) const
{
    // Element-for-element the same expressions covariance() evaluates
    // (sqrt(5) is a compile-time constant there too); batching only
    // keeps the distance accumulation inlined in this loop instead of
    // paying a virtual call + two function calls per point.
    const std::size_t dims = x.size();
    for (std::size_t p = 0; p < pts.size(); ++p) {
        const RealVec& b = pts[p];
        double d2 = 0.0;
        for (std::size_t i = 0; i < dims; ++i) {
            const double d = x[i] - b[i];
            d2 += d * d;
        }
        const double r = std::sqrt(d2);
        const double z = std::sqrt(5.0) * r / length_scale_;
        out[p] = signal_variance_ * (1.0 + z + z * z / 3.0) *
                 std::exp(-z);
    }
}

void
Matern52Kernel::covarianceCross(const SoaPoints& pts, const RealVec& q,
                                double* out) const
{
    // Squared distances accumulate per dimension in ascending order -
    // the same per-element operation sequence covariance() runs, just
    // streamed across the whole block, all coordinates fused in one
    // pass (out holds the d^2 block). Bit-identical by construction;
    // simd_test pins the lane/scalar equivalence of sqDistInto.
    const std::size_t count = pts.count();
    const std::size_t dims = pts.dims();
    SATORI_ASSERT(dims == q.size());
    sqDistBlock(pts, q, out);
    for (std::size_t c = 0; c < count; ++c) {
        const double r = std::sqrt(out[c]);
        const double z = std::sqrt(5.0) * r / length_scale_;
        out[c] = signal_variance_ * (1.0 + z + z * z / 3.0) *
                 std::exp(-z);
    }
}

void
Matern52Kernel::covarianceCrossApprox(const SoaPoints& pts,
                                      const RealVec& q, double* out,
                                      std::vector<double>& scratch) const
{
    // As covarianceCross, but the sqrt/polynomial/exp tail runs in
    // the fused vectorized kernel (exp(-z) < 1e-9 relative; see
    // linalg/simd.hpp) with the per-element division hoisted into
    // one reciprocal. Only the approximate-GP paths call this - the
    // error is folded into the RMSE budget the benchmark gates.
    (void)scratch;
    SATORI_ASSERT(pts.dims() == q.size());
    sqDistBlock(pts, q, out);
    const double scaled_inv_ls = std::sqrt(5.0) / length_scale_;
    linalg::simd::matern52FromSqDistInto(out, out, scaled_inv_ls,
                                         signal_variance_, pts.count());
}

std::unique_ptr<Kernel>
Matern52Kernel::withLengthScale(double ls) const
{
    return std::make_unique<Matern52Kernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
Matern52Kernel::clone() const
{
    return std::make_unique<Matern52Kernel>(*this);
}

RbfKernel::RbfKernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
RbfKernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r2 = squaredDistance(a, b);
    return signal_variance_ *
           std::exp(-r2 / (2.0 * length_scale_ * length_scale_));
}

std::unique_ptr<Kernel>
RbfKernel::withLengthScale(double ls) const
{
    return std::make_unique<RbfKernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
RbfKernel::clone() const
{
    return std::make_unique<RbfKernel>(*this);
}

} // namespace bo
} // namespace satori
