#include "satori/bo/kernel.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace bo {

Matern52Kernel::Matern52Kernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
Matern52Kernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r = euclideanDistance(a, b);
    const double z = std::sqrt(5.0) * r / length_scale_;
    return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

std::unique_ptr<Kernel>
Matern52Kernel::withLengthScale(double ls) const
{
    return std::make_unique<Matern52Kernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
Matern52Kernel::clone() const
{
    return std::make_unique<Matern52Kernel>(*this);
}

RbfKernel::RbfKernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
RbfKernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r2 = squaredDistance(a, b);
    return signal_variance_ *
           std::exp(-r2 / (2.0 * length_scale_ * length_scale_));
}

std::unique_ptr<Kernel>
RbfKernel::withLengthScale(double ls) const
{
    return std::make_unique<RbfKernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
RbfKernel::clone() const
{
    return std::make_unique<RbfKernel>(*this);
}

} // namespace bo
} // namespace satori
