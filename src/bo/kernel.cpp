#include "satori/bo/kernel.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace bo {

void
Kernel::covarianceRow(const RealVec& x, const std::vector<RealVec>& pts,
                      double* out) const
{
    for (std::size_t i = 0; i < pts.size(); ++i)
        out[i] = covariance(x, pts[i]);
}

Matern52Kernel::Matern52Kernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
Matern52Kernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r = euclideanDistance(a, b);
    const double z = std::sqrt(5.0) * r / length_scale_;
    return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

void
Matern52Kernel::covarianceRow(const RealVec& x,
                              const std::vector<RealVec>& pts,
                              double* out) const
{
    // Element-for-element the same expressions covariance() evaluates
    // (sqrt(5) is a compile-time constant there too); batching only
    // keeps the distance accumulation inlined in this loop instead of
    // paying a virtual call + two function calls per point.
    const std::size_t dims = x.size();
    for (std::size_t p = 0; p < pts.size(); ++p) {
        const RealVec& b = pts[p];
        double d2 = 0.0;
        for (std::size_t i = 0; i < dims; ++i) {
            const double d = x[i] - b[i];
            d2 += d * d;
        }
        const double r = std::sqrt(d2);
        const double z = std::sqrt(5.0) * r / length_scale_;
        out[p] = signal_variance_ * (1.0 + z + z * z / 3.0) *
                 std::exp(-z);
    }
}

std::unique_ptr<Kernel>
Matern52Kernel::withLengthScale(double ls) const
{
    return std::make_unique<Matern52Kernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
Matern52Kernel::clone() const
{
    return std::make_unique<Matern52Kernel>(*this);
}

RbfKernel::RbfKernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance)
{
    SATORI_ASSERT(length_scale_ > 0.0 && signal_variance_ > 0.0);
}

double
RbfKernel::covariance(const RealVec& a, const RealVec& b) const
{
    const double r2 = squaredDistance(a, b);
    return signal_variance_ *
           std::exp(-r2 / (2.0 * length_scale_ * length_scale_));
}

std::unique_ptr<Kernel>
RbfKernel::withLengthScale(double ls) const
{
    return std::make_unique<RbfKernel>(ls, signal_variance_);
}

std::unique_ptr<Kernel>
RbfKernel::clone() const
{
    return std::make_unique<RbfKernel>(*this);
}

} // namespace bo
} // namespace satori
