#include "satori/bo/approx_gp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/linalg/simd.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace bo {

namespace {

/** Candidate block size for batched prediction (see gp.cpp). */
constexpr std::size_t kPredictBlock = 256;

/** Journal length beyond which the candidate cache is cheaper to
 * rebuild than to correct (each entry costs one O(m C) pass). */
constexpr std::size_t kPendingCap = 16;

/** Sherman-Morrison corrections between full variance refreshes -
 * bounds numerical drift of the cached variances against the direct
 * triangular solve. */
constexpr std::size_t kSmRefreshInterval = 512;

/** Downdate corrections with 1 - c^T A^-1 c below this are too close
 * to singular to journal; the cache is dropped instead. */
constexpr double kSmDenomFloor = 1e-9;

/**
 * Content hash of a candidate set: 4 interleaved FNV-1a lanes over
 * the raw coordinate bits, so a 10k x 10-dim set hashes in one short
 * pass and any single-bit coordinate change flips the key.
 */
void
hashCandidates(const std::vector<RealVec>& xs, std::uint64_t key[4])
{
    constexpr std::uint64_t kPrime = 1099511628211ull;
    key[0] = 14695981039346656037ull;
    key[1] = key[0] ^ 0x9e3779b97f4a7c15ull;
    key[2] = key[0] ^ 0xc2b2ae3d27d4eb4full;
    key[3] = key[0] ^ 0x165667b19e3779f9ull;
    std::size_t lane = 0;
    for (const RealVec& x : xs) {
        for (const double v : x) {
            std::uint64_t bits = 0;
            std::memcpy(&bits, &v, sizeof bits);
            key[lane] = (key[lane] ^ bits) * kPrime;
            lane = (lane + 1) & 3;
        }
    }
}

/** First @p count primes (Halton bases; count = input dims, small). */
std::vector<unsigned>
firstPrimes(std::size_t count)
{
    std::vector<unsigned> primes;
    primes.reserve(count);
    for (unsigned candidate = 2; primes.size() < count; ++candidate) {
        bool prime = true;
        for (unsigned p : primes) {
            if (p * p > candidate)
                break;
            if (candidate % p == 0) {
                prime = false;
                break;
            }
        }
        if (prime)
            primes.push_back(candidate);
    }
    return primes;
}

/** Halton radical inverse of @p index in base @p base, in (0, 1). */
double
radicalInverse(unsigned base, std::size_t index)
{
    double inv_base = 1.0 / static_cast<double>(base);
    double factor = inv_base;
    double value = 0.0;
    while (index > 0) {
        value += factor * static_cast<double>(index % base);
        index /= base;
        factor *= inv_base;
    }
    return value;
}

} // namespace

ApproxGp::ApproxGp(std::unique_ptr<Kernel> kernel, double noise_variance,
                   std::size_t num_inducing)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance),
      num_inducing_(num_inducing)
{
    SATORI_ASSERT(kernel_ != nullptr);
    SATORI_ASSERT(noise_variance_ > 0.0);
    SATORI_ASSERT(num_inducing_ >= 1);
}

void
ApproxGp::setMaxHistory(std::size_t max_history)
{
    max_history_ = max_history;
}

void
ApproxGp::placeInducing(const std::vector<RealVec>& inputs)
{
    // A Halton lattice scaled to the bounding box of the observed
    // inputs: low-discrepancy coverage of the region the model is
    // actually asked about, deterministic, and independent of the
    // window contents afterwards (so sliding never moves u).
    const std::size_t dims = inputs[0].size();
    std::vector<double> lo(inputs[0]);
    std::vector<double> hi(inputs[0]);
    for (const RealVec& x : inputs) {
        for (std::size_t d = 0; d < dims; ++d) {
            lo[d] = std::min(lo[d], x[d]);
            hi[d] = std::max(hi[d], x[d]);
        }
    }
    const std::vector<unsigned> bases = firstPrimes(dims);
    inducing_.assign(num_inducing_, RealVec(dims, 0.0));
    for (std::size_t t = 0; t < num_inducing_; ++t)
        for (std::size_t d = 0; d < dims; ++d)
            inducing_[t][d] =
                lo[d] + (hi[d] - lo[d]) * radicalInverse(bases[d], t + 1);

    const std::size_t m = inducing_.size();
    kuu_ = linalg::Matrix(m, m);
    for (std::size_t i = 0; i < m; ++i)
        kernel_->covarianceRow(inducing_[i], inducing_, &kuu_(i, 0));
}

void
ApproxGp::inducingColumn(const RealVec& x, double* out) const
{
    one_point_scratch_.assign(1, x);
    pts_scratch_.assign(one_point_scratch_, 0, 1);
    for (std::size_t i = 0; i < inducing_.size(); ++i)
        kernel_->covarianceCrossApprox(pts_scratch_, inducing_[i],
                                       &out[i], kernel_scratch_);
}

void
ApproxGp::rebuildGram()
{
    const std::size_t m = inducing_.size();
    linalg::Matrix a(m, m);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t k = 0; k < m; ++k)
            a(i, k) = noise_variance_ * kuu_(i, k);
    for (const std::vector<double>& c : cols_)
        for (std::size_t i = 0; i < m; ++i)
            linalg::simd::fmaAccum(&a(i, 0), c.data(), c[i], m);
    chol_a_ = std::make_unique<linalg::Cholesky>(a);
    // A wholesale new factor orphans any journaled rank-1 corrections
    // (they were prepared against the old one).
    invalidateCache();
}

void
ApproxGp::solveWeights()
{
    const std::size_t n = inputs_.size();
    const std::size_t m = inducing_.size();
    y_mean_ = mean(y_raw_);
    y_scale_ = stddev(y_raw_);
    if (y_scale_ < 1e-12)
        y_scale_ = 1.0;
    y_std_.resize(n);
    for (std::size_t j = 0; j < n; ++j)
        y_std_[j] = (y_raw_[j] - y_mean_) / y_scale_;
    b_.assign(m, 0.0);
    for (std::size_t j = 0; j < n; ++j)
        linalg::simd::fmaAccum(b_.data(), cols_[j].data(), y_std_[j], m);
    w_ = chol_a_->solve(b_);
    fitted_ = true;
}

void
ApproxGp::fit(const std::vector<RealVec>& inputs,
              const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    if (windowed() && inputs.size() > max_history_) {
        const std::size_t skip = inputs.size() - max_history_;
        inputs_.assign(inputs.begin() + static_cast<std::ptrdiff_t>(skip),
                       inputs.end());
        y_raw_.assign(targets.begin() + static_cast<std::ptrdiff_t>(skip),
                      targets.end());
    } else {
        inputs_ = inputs;
        y_raw_ = targets;
    }
    if (inducing_.empty() || inducing_[0].size() != inputs_[0].size())
        placeInducing(inputs_);

    const std::size_t n = inputs_.size();
    const std::size_t m = inducing_.size();
    cols_.assign(n, std::vector<double>(m, 0.0));
    // Blocked K_uf build: one SoA pack per sample block, one streamed
    // row per inducing point, then scattered to the per-sample
    // columns the rank-1 window ops want.
    if (kustar_scratch_.rows() != m ||
        kustar_scratch_.cols() != std::min(n, kPredictBlock))
        kustar_scratch_ =
            linalg::Matrix(m, std::min(n, kPredictBlock));
    for (std::size_t b0 = 0; b0 < n; b0 += kPredictBlock) {
        const std::size_t b1 = std::min(n, b0 + kPredictBlock);
        const std::size_t bsz = b1 - b0;
        pts_scratch_.assign(inputs_, b0, b1);
        if (kustar_scratch_.cols() != bsz)
            kustar_scratch_ = linalg::Matrix(m, bsz);
        for (std::size_t i = 0; i < m; ++i)
            kernel_->covarianceCrossApprox(pts_scratch_, inducing_[i],
                                           kustar_scratch_.rowPtr(i),
                                           kernel_scratch_);
        for (std::size_t c = 0; c < bsz; ++c)
            for (std::size_t i = 0; i < m; ++i)
                cols_[b0 + c][i] = kustar_scratch_(i, c);
    }
    rebuildGram();
    solveWeights();
}

void
ApproxGp::evictOldest()
{
    SATORI_ASSERT(!inputs_.empty());
    PendingRankOne entry;
    const bool journal = prepareJournal(cols_.front(), true, entry);
    const bool ok = chol_a_->rankOneDowndate(cols_.front());
    inputs_.erase(inputs_.begin());
    y_raw_.erase(y_raw_.begin());
    cols_.erase(cols_.begin());
    ++window_evictions_;
    SATORI_OBS_METRIC(bo_window_evictions.inc());
    if (!ok) {
        // The hyperbolic rotation can legitimately break down when
        // A - cc^T grazes singularity; rebuild from the surviving
        // columns (the designed fallback, counted and audited).
        ++fallback_rebuilds_;
        SATORI_OBS_METRIC(bo_approx_fallbacks.inc());
        rebuildGram();
    } else if (journal) {
        pushJournal(std::move(entry));
    }
}

void
ApproxGp::enforceWindow()
{
    while (windowed() && inputs_.size() > max_history_)
        evictOldest();
}

void
ApproxGp::appendSampleColumn(const RealVec& x)
{
    std::vector<double> c(inducing_.size());
    inducingColumn(x, c.data());
    PendingRankOne entry;
    const bool journal = prepareJournal(c, false, entry);
    const bool updated = chol_a_->rankOneUpdate(c);
    cols_.push_back(std::move(c));
    if (!updated) {
        ++fallback_rebuilds_;
        SATORI_OBS_METRIC(bo_approx_fallbacks.inc());
        rebuildGram();
    } else if (journal) {
        pushJournal(std::move(entry));
    }
}

void
ApproxGp::addObservation(const RealVec& x, double target)
{
    if (!fitted_) {
        inputs_.push_back(x);
        y_raw_.push_back(target);
        const std::vector<RealVec> in = inputs_;
        const std::vector<double> y = y_raw_;
        fit(in, y);
        return;
    }
    inputs_.push_back(x);
    y_raw_.push_back(target);
    appendSampleColumn(x);
    enforceWindow();
    solveWeights();
}

bool
ApproxGp::samePrefix(const std::vector<RealVec>& other,
                     std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i) {
        if (other[i].size() != inputs_[i].size())
            return false;
        if (std::memcmp(other[i].data(), inputs_[i].data(),
                        inputs_[i].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

bool
ApproxGp::sameShifted(const std::vector<RealVec>& other) const
{
    const std::size_t n = inputs_.size();
    if (other.size() != n || n == 0)
        return false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (other[i].size() != inputs_[i + 1].size())
            return false;
        if (std::memcmp(other[i].data(), inputs_[i + 1].data(),
                        inputs_[i + 1].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

void
ApproxGp::fitIncremental(const std::vector<RealVec>& inputs,
                         const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    if (fitted_ && inputs.size() == inputs_.size() &&
        samePrefix(inputs, inputs_.size())) {
        y_raw_ = targets;
        enforceWindow();
        solveWeights();
        return;
    }
    if (fitted_ && inputs.size() == inputs_.size() + 1 &&
        samePrefix(inputs, inputs_.size())) {
        addObservation(inputs.back(), targets.back());
        // addObservation standardized against the appended y only;
        // replace the full target set and re-solve (targets may be
        // re-weighted wholesale).
        y_raw_.assign(targets.end() -
                          static_cast<std::ptrdiff_t>(inputs_.size()),
                      targets.end());
        solveWeights();
        return;
    }
    if (fitted_ && windowed() && sameShifted(inputs)) {
        evictOldest();
        inputs_.push_back(inputs.back());
        appendSampleColumn(inputs.back());
        y_raw_ = targets;
        solveWeights();
        return;
    }
    fit(inputs, targets);
}

void
ApproxGp::predictBatchInto(const std::vector<RealVec>& xs,
                           std::vector<GpPrediction>& out) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t m = inducing_.size();
    out.resize(xs.size());
    for (std::size_t b0 = 0; b0 < xs.size(); b0 += kPredictBlock) {
        const std::size_t b1 = std::min(xs.size(), b0 + kPredictBlock);
        const std::size_t bsz = b1 - b0;
        pts_scratch_.assign(xs, b0, b1);
        if (kustar_scratch_.rows() != m || kustar_scratch_.cols() != bsz)
            kustar_scratch_ = linalg::Matrix(m, bsz);
        for (std::size_t i = 0; i < m; ++i)
            kernel_->covarianceCrossApprox(pts_scratch_, inducing_[i],
                                           kustar_scratch_.rowPtr(i),
                                           kernel_scratch_);
        means_scratch_.assign(bsz, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            linalg::simd::fmaAccum(means_scratch_.data(),
                                   kustar_scratch_.rowPtr(i), w_[i],
                                   bsz);
        chol_a_->solveLowerMultiTransposedInto(kustar_scratch_,
                                               v_scratch_);
        vv_scratch_.assign(bsz, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            linalg::simd::accumSquare(vv_scratch_.data(),
                                      v_scratch_.rowPtr(i), bsz);
        for (std::size_t c = 0; c < bsz; ++c) {
            out[b0 + c].mean =
                y_mean_ + y_scale_ * means_scratch_[c];
            const double var_std = noise_variance_ * vv_scratch_[c];
            out[b0 + c].variance =
                std::max(var_std, 0.0) * y_scale_ * y_scale_;
        }
    }
}

bool
ApproxGp::prepareJournal(const std::vector<double>& c, bool downdate,
                         PendingRankOne& entry)
{
    if (!cache_.valid)
        return false;
    // h = A^-1 c against the factor as it stands *before* the rank-1
    // change; Sherman-Morrison then gives the new quadratic form as
    //   k^T A'^-1 k = k^T A^-1 k -+ (k^T h)^2 / (1 +- c^T h).
    entry.h = chol_a_->solve(c);
    double cth = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
        cth += c[i] * entry.h[i];
    const double denom = downdate ? 1.0 - cth : 1.0 + cth;
    if (!(denom > kSmDenomFloor)) {
        // Grazing singularity (or NaN): the correction would amplify
        // error unboundedly. Drop the cache; the next cached call
        // rebuilds exact values.
        invalidateCache();
        return false;
    }
    entry.coef = (downdate ? noise_variance_ : -noise_variance_) / denom;
    return true;
}

void
ApproxGp::pushJournal(PendingRankOne&& entry)
{
    if (!cache_.valid)
        return;
    if (pending_.size() >= kPendingCap) {
        invalidateCache();
        return;
    }
    pending_.push_back(std::move(entry));
}

void
ApproxGp::invalidateCache() const
{
    cache_.valid = false;
    cache_.sm_applied = 0;
    pending_.clear();
}

void
ApproxGp::recomputeCacheVariances() const
{
    const std::size_t m = cache_.kustar.rows();
    const std::size_t count = cache_.kustar.cols();
    chol_a_->solveLowerMultiTransposedInto(cache_.kustar, v_scratch_);
    vv_scratch_.assign(count, 0.0);
    for (std::size_t i = 0; i < m; ++i)
        linalg::simd::accumSquare(vv_scratch_.data(),
                                  v_scratch_.rowPtr(i), count);
    cache_.var_std.resize(count);
    for (std::size_t c = 0; c < count; ++c)
        cache_.var_std[c] = noise_variance_ * vv_scratch_[c];
    cache_.sm_applied = 0;
    pending_.clear();
}

void
ApproxGp::rebuildCache(const std::vector<RealVec>& xs,
                       const std::uint64_t key[4]) const
{
    const std::size_t m = inducing_.size();
    const std::size_t count = xs.size();
    if (cache_.kustar.rows() != m || cache_.kustar.cols() != count)
        cache_.kustar = linalg::Matrix(m, count);
    // Row segments of the m x C block are contiguous per candidate
    // block, so the kernel streams straight into the cache.
    for (std::size_t b0 = 0; b0 < count; b0 += kPredictBlock) {
        const std::size_t b1 = std::min(count, b0 + kPredictBlock);
        pts_scratch_.assign(xs, b0, b1);
        for (std::size_t i = 0; i < m; ++i)
            kernel_->covarianceCrossApprox(pts_scratch_, inducing_[i],
                                           cache_.kustar.rowPtr(i) + b0,
                                           kernel_scratch_);
    }
    recomputeCacheVariances();
    std::memcpy(cache_.key, key, sizeof cache_.key);
    cache_.count = count;
    cache_.dims = xs[0].size();
    cache_.valid = true;
}

void
ApproxGp::refreshCacheVariances() const
{
    if (cache_.sm_applied + pending_.size() >= kSmRefreshInterval) {
        // Periodic drift control: one direct solve resets the cached
        // variances to what predictBatchInto would compute.
        recomputeCacheVariances();
        return;
    }
    const std::size_t m = cache_.kustar.rows();
    const std::size_t count = cache_.count;
    for (const PendingRankOne& e : pending_) {
        // g = K_u*^T h, then var += coef * g^2 per candidate - the
        // Sherman-Morrison quadratic-form correction, batched.
        g_scratch_.assign(count, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            linalg::simd::fmaAccum(g_scratch_.data(),
                                   cache_.kustar.rowPtr(i), e.h[i],
                                   count);
        double* var = cache_.var_std.data();
        const double* g = g_scratch_.data();
        for (std::size_t c = 0; c < count; ++c)
            var[c] += e.coef * g[c] * g[c];
    }
    cache_.sm_applied += pending_.size();
    pending_.clear();
}

void
ApproxGp::predictBatchCachedInto(const std::vector<RealVec>& xs,
                                 std::vector<GpPrediction>& out) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t m = inducing_.size();
    const std::size_t count = xs.size();
    out.resize(count);
    if (count == 0)
        return;
    std::uint64_t key[4];
    hashCandidates(xs, key);
    const bool hit = cache_.valid && cache_.count == count &&
                     cache_.dims == xs[0].size() &&
                     std::memcmp(key, cache_.key, sizeof key) == 0;
    if (hit) {
        ++cache_hits_;
        SATORI_OBS_METRIC(bo_approx_cache_hits.inc());
        refreshCacheVariances();
    } else {
        ++cache_misses_;
        SATORI_OBS_METRIC(bo_approx_cache_misses.inc());
        rebuildCache(xs, key);
    }
    // Means always come from the live weights (w_ changes on every
    // solveWeights); one O(m C) pass over the cached block.
    means_scratch_.assign(count, 0.0);
    for (std::size_t i = 0; i < m; ++i)
        linalg::simd::fmaAccum(means_scratch_.data(),
                               cache_.kustar.rowPtr(i), w_[i], count);
    for (std::size_t c = 0; c < count; ++c) {
        out[c].mean = y_mean_ + y_scale_ * means_scratch_[c];
        out[c].variance =
            std::max(cache_.var_std[c], 0.0) * y_scale_ * y_scale_;
    }
}

GpPrediction
ApproxGp::predict(const RealVec& x) const
{
    std::vector<RealVec> one(1, x);
    std::vector<GpPrediction> pred;
    predictBatchInto(one, pred);
    return pred[0];
}

} // namespace bo
} // namespace satori
