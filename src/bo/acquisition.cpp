#include "satori/bo/acquisition.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace bo {

double
expectedImprovement(const GpPrediction& pred, double best_observed,
                    double xi)
{
    const double sigma = pred.stddev();
    const double improvement = pred.mean - best_observed - xi;
    if (sigma < 1e-12)
        return std::max(improvement, 0.0);
    const double z = improvement / sigma;
    return improvement * normalCdf(z) + sigma * normalPdf(z);
}

double
upperConfidenceBound(const GpPrediction& pred, double beta)
{
    return pred.mean + beta * pred.stddev();
}

double
probabilityOfImprovement(const GpPrediction& pred, double best_observed,
                         double xi)
{
    const double sigma = pred.stddev();
    const double improvement = pred.mean - best_observed - xi;
    if (sigma < 1e-12)
        return improvement > 0.0 ? 1.0 : 0.0;
    return normalCdf(improvement / sigma);
}

double
acquisitionUpperBound(AcquisitionKind kind, double mean, double sigma_max,
                      double best_observed, double xi, double beta)
{
    // `improvement` is computed with exactly the expression the exact
    // scorers use, so the two agree bit-for-bit on the shared term.
    const double improvement = mean - best_observed - xi;
    switch (kind) {
      case AcquisitionKind::ExpectedImprovement: {
        // EI = imp * Phi(z) + sigma * phi(z) <= max(imp, 0) +
        // sigma_max * phi(0). The constant rounds phi(0) up; the
        // (1 + 1e-12) slack dominates the <= 6-op rounding of the
        // exact evaluation (~5e-16 relative).
        constexpr double kPhi0Up = 0.3989422804014327;
        return (std::max(improvement, 0.0) + kPhi0Up * sigma_max) *
               (1.0 + 1e-12);
      }
      case AcquisitionKind::Ucb:
        // beta >= 0: fl multiplication and addition are monotone, so
        // mean + beta * sigma_max dominates exactly - no slack
        // needed. beta < 0: beta * sigma <= 0, so mean itself is an
        // upper bound.
        return mean + std::max(beta * sigma_max, 0.0);
      case AcquisitionKind::ProbabilityOfImprovement: {
        if (improvement >= 0.0)
            return 1.0000001; // PI <= 1 plus normalCdf rounding room.
        if (sigma_max < 1e-12)
            return 1e-12; // exact path returns 0 here.
        // imp < 0: Phi(imp / sigma) is increasing in sigma, so
        // sigma_max maximizes it; slack covers normalCdf rounding.
        return normalCdf(improvement / sigma_max) * (1.0 + 1e-9) +
               1e-12;
      }
    }
    SATORI_PANIC("unknown AcquisitionKind");
}

double
acquisition(AcquisitionKind kind, const GpPrediction& pred,
            double best_observed, double xi, double beta)
{
    switch (kind) {
      case AcquisitionKind::ExpectedImprovement:
        return expectedImprovement(pred, best_observed, xi);
      case AcquisitionKind::Ucb:
        return upperConfidenceBound(pred, beta);
      case AcquisitionKind::ProbabilityOfImprovement:
        return probabilityOfImprovement(pred, best_observed, xi);
    }
    SATORI_PANIC("unknown AcquisitionKind");
}

} // namespace bo
} // namespace satori
