#include "satori/bo/acquisition.hpp"

#include <cmath>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace bo {

double
expectedImprovement(const GpPrediction& pred, double best_observed,
                    double xi)
{
    const double sigma = pred.stddev();
    const double improvement = pred.mean - best_observed - xi;
    if (sigma < 1e-12)
        return std::max(improvement, 0.0);
    const double z = improvement / sigma;
    return improvement * normalCdf(z) + sigma * normalPdf(z);
}

double
upperConfidenceBound(const GpPrediction& pred, double beta)
{
    return pred.mean + beta * pred.stddev();
}

double
probabilityOfImprovement(const GpPrediction& pred, double best_observed,
                         double xi)
{
    const double sigma = pred.stddev();
    const double improvement = pred.mean - best_observed - xi;
    if (sigma < 1e-12)
        return improvement > 0.0 ? 1.0 : 0.0;
    return normalCdf(improvement / sigma);
}

double
acquisition(AcquisitionKind kind, const GpPrediction& pred,
            double best_observed, double xi, double beta)
{
    switch (kind) {
      case AcquisitionKind::ExpectedImprovement:
        return expectedImprovement(pred, best_observed, xi);
      case AcquisitionKind::Ucb:
        return upperConfidenceBound(pred, beta);
      case AcquisitionKind::ProbabilityOfImprovement:
        return probabilityOfImprovement(pred, best_observed, xi);
    }
    SATORI_PANIC("unknown AcquisitionKind");
}

} // namespace bo
} // namespace satori
