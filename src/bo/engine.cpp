#include "satori/bo/engine.hpp"

#include <algorithm>
#include <limits>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace bo {

BoEngine::BoEngine(EngineOptions options) : options_(std::move(options))
{
    gp_ = std::make_unique<GaussianProcess>(
        std::make_unique<Matern52Kernel>(options_.length_scale),
        options_.noise_variance);
}

void
BoEngine::setSamples(const std::vector<RealVec>& inputs,
                     const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkTrainingSet(
        inputs, targets, __FILE__, __LINE__));
    inputs_ = inputs;
    targets_ = targets;
    refit(nullptr);
}

void
BoEngine::addSample(const RealVec& input, double target)
{
    inputs_.push_back(input);
    targets_.push_back(target);
    refit(&inputs_.back());
}

void
BoEngine::refit(const RealVec* appended)
{
    SATORI_OBS_SPAN("bo.fit");
    SATORI_OBS_METRIC(bo_fits.inc());
    ++fits_since_grid_;
    const bool use_grid = !options_.length_scale_grid.empty() &&
                          options_.grid_refit_period > 0 &&
                          fits_since_grid_ >= options_.grid_refit_period &&
                          inputs_.size() >= 8;
    if (use_grid) {
        SATORI_OBS_METRIC(bo_grid_refits.inc());
        gp_->fitWithLengthScaleGrid(inputs_, targets_,
                                    options_.length_scale_grid);
        fits_since_grid_ = 0;
    } else if (!options_.incremental) {
        gp_->fit(inputs_, targets_);
    } else if (appended != nullptr && gp_->isFitted()) {
        gp_->addObservation(*appended, targets_.back());
    } else {
        gp_->fitIncremental(inputs_, targets_);
    }
}

double
BoEngine::bestObserved() const
{
    SATORI_ASSERT(!targets_.empty());
    return *std::max_element(targets_.begin(), targets_.end());
}

std::size_t
BoEngine::bestIndex() const
{
    SATORI_ASSERT(!targets_.empty());
    return static_cast<std::size_t>(
        std::max_element(targets_.begin(), targets_.end()) -
        targets_.begin());
}

std::size_t
BoEngine::suggestIndex(const std::vector<RealVec>& candidates) const
{
    return suggestImpl(candidates, nullptr);
}

std::size_t
BoEngine::suggestIndex(const std::vector<RealVec>& candidates,
                       const std::vector<double>& penalties) const
{
    SATORI_ASSERT(penalties.size() == candidates.size());
    return suggestImpl(candidates, &penalties);
}

std::size_t
BoEngine::suggestImpl(const std::vector<RealVec>& candidates,
                      const std::vector<double>* penalties) const
{
    SATORI_OBS_SPAN("bo.acquisition");
    SATORI_OBS_METRIC(bo_suggests.inc());
    SATORI_OBS_METRIC(bo_candidates.observe(
        static_cast<double>(candidates.size())));
    SATORI_ASSERT(ready());
    SATORI_ASSERT(!candidates.empty());
    const double best = bestObserved();
    gp_->predictBatchInto(candidates, preds_scratch_);
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        double score = acquisition(options_.acquisition,
                                   preds_scratch_[i], best, options_.xi,
                                   options_.ucb_beta);
        if (penalties != nullptr)
            score -= (*penalties)[i];
        if (score > best_score) {
            best_score = score;
            best_idx = i;
        }
    }
    return best_idx;
}

GpPrediction
BoEngine::predict(const RealVec& x) const
{
    SATORI_ASSERT(ready());
    return gp_->predict(x);
}

std::vector<double>
BoEngine::probeMeans(const std::vector<RealVec>& probes) const
{
    SATORI_OBS_SPAN("bo.probe");
    SATORI_ASSERT(ready());
    gp_->predictBatchInto(probes, preds_scratch_);
    std::vector<double> means;
    means.reserve(probes.size());
    for (const auto& pred : preds_scratch_)
        means.push_back(pred.mean);
    return means;
}

std::size_t
BoEngine::numSamples() const
{
    return inputs_.size();
}

void
BoEngine::saveState(persist::StateWriter& w) const
{
    w.putDouble(gp_->kernel().lengthScale());
    w.putBool(gp_->isFitted());
    w.putSize(fits_since_grid_);
    w.putSize(inputs_.size());
    for (const RealVec& x : inputs_)
        w.putDoubleVec(x);
    w.putDoubleVec(targets_);
}

void
BoEngine::restoreState(persist::StateReader& r)
{
    const double length_scale = r.getDouble();
    const bool fitted = r.getBool();
    fits_since_grid_ = r.getSize();
    const std::size_t n = r.getSize();
    inputs_.clear();
    inputs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs_.push_back(r.getDoubleVec());
    targets_ = r.getDoubleVec();
    if (targets_.size() != inputs_.size())
        SATORI_FATAL("BO engine state has " +
                     std::to_string(inputs_.size()) + " inputs but " +
                     std::to_string(targets_.size()) + " targets");
    // Rebuild the GP at the saved length scale and refit the full
    // training set. A full fit is bit-identical to the incremental
    // update paths (pinned by the GP tests), so the resumed posterior
    // matches the uninterrupted run exactly. A plain refit does not
    // advance fits_since_grid_, preserving the grid-refit timing.
    gp_ = std::make_unique<GaussianProcess>(
        std::make_unique<Matern52Kernel>(length_scale),
        options_.noise_variance);
    if (fitted && !inputs_.empty())
        gp_->fit(inputs_, targets_);
}

} // namespace bo
} // namespace satori
