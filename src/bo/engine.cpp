#include "satori/bo/engine.hpp"

#include <algorithm>
#include <limits>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/common/parallel.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace bo {

namespace {

/** Below this many candidates, chunked threading cannot beat the
 * spawn/wake overhead - score serially regardless of acq_threads. */
constexpr std::size_t kParallelMinCandidates = 512;

} // namespace

BoEngine::BoEngine(EngineOptions options) : options_(std::move(options))
{
    gp_ = std::make_unique<GaussianProcess>(
        std::make_unique<Matern52Kernel>(options_.length_scale),
        options_.noise_variance);
    gp_->setMaxHistory(options_.max_history);
}

void
BoEngine::setSamples(const std::vector<RealVec>& inputs,
                     const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkTrainingSet(
        inputs, targets, __FILE__, __LINE__));
    inputs_ = inputs;
    targets_ = targets;
    refit(false);
}

void
BoEngine::addSample(const RealVec& input, double target)
{
    inputs_.push_back(input);
    targets_.push_back(target);
    refit(true);
}

void
BoEngine::trimToWindow()
{
    if (options_.max_history == 0 ||
        inputs_.size() <= options_.max_history)
        return;
    const auto drop = static_cast<std::ptrdiff_t>(
        inputs_.size() - options_.max_history);
    inputs_.erase(inputs_.begin(), inputs_.begin() + drop);
    targets_.erase(targets_.begin(), targets_.begin() + drop);
}

bool
BoEngine::approxActive() const
{
    return options_.approx &&
           inputs_.size() >= options_.approx_min_samples;
}

void
BoEngine::ensureApproxGp()
{
    if (approx_gp_)
        return;
    // Carry the exact GP's (possibly grid-adapted) length scale over
    // so the regimes model the same covariance family.
    const double ls = (gp_ && gp_->isFitted())
                          ? gp_->kernel().lengthScale()
                          : options_.length_scale;
    approx_gp_ = std::make_unique<ApproxGp>(
        std::make_unique<Matern52Kernel>(ls), options_.noise_variance,
        options_.approx_inducing);
    approx_gp_->setMaxHistory(options_.max_history);
}

void
BoEngine::refit(bool appended)
{
    SATORI_OBS_SPAN("bo.fit");
    SATORI_OBS_METRIC(bo_fits.inc());
    // Trim before taking any appended-element reference: the erase
    // shifts the vector.
    trimToWindow();
    if (approxActive()) {
        // Approximate regime: only the SoR model tracks updates (the
        // exact GP would defeat the point at O(n^2) each). The grid-
        // refit phase freezes and the exact GP goes stale; regime
        // exit resyncs it with one full fit.
        ensureApproxGp();
        if (appended && approx_gp_->isFitted())
            approx_gp_->addObservation(inputs_.back(), targets_.back());
        else
            approx_gp_->fitIncremental(inputs_, targets_);
        gp_stale_ = true;
        return;
    }
    if (gp_stale_) {
        ++fits_since_grid_;
        gp_->fit(inputs_, targets_);
        gp_stale_ = false;
        return;
    }
    ++fits_since_grid_;
    const bool use_grid = !options_.length_scale_grid.empty() &&
                          options_.grid_refit_period > 0 &&
                          fits_since_grid_ >= options_.grid_refit_period &&
                          inputs_.size() >= 8;
    if (use_grid) {
        SATORI_OBS_METRIC(bo_grid_refits.inc());
        gp_->fitWithLengthScaleGrid(inputs_, targets_,
                                    options_.length_scale_grid);
        fits_since_grid_ = 0;
    } else if (!options_.incremental) {
        gp_->fit(inputs_, targets_);
    } else if (appended && gp_->isFitted()) {
        gp_->addObservation(inputs_.back(), targets_.back());
    } else {
        gp_->fitIncremental(inputs_, targets_);
    }
}

double
BoEngine::bestObserved() const
{
    SATORI_ASSERT(!targets_.empty());
    return *std::max_element(targets_.begin(), targets_.end());
}

std::size_t
BoEngine::bestIndex() const
{
    SATORI_ASSERT(!targets_.empty());
    return static_cast<std::size_t>(
        std::max_element(targets_.begin(), targets_.end()) -
        targets_.begin());
}

std::size_t
BoEngine::suggestIndex(const std::vector<RealVec>& candidates) const
{
    return suggestImpl(candidates, nullptr);
}

std::size_t
BoEngine::suggestIndex(const std::vector<RealVec>& candidates,
                       const std::vector<double>& penalties) const
{
    SATORI_ASSERT(penalties.size() == candidates.size());
    return suggestImpl(candidates, &penalties);
}

void
BoEngine::scoreExactInto(const std::vector<RealVec>& xs,
                         std::vector<GpPrediction>& preds) const
{
    preds.resize(xs.size());
    const std::size_t threads = options_.acq_threads == 0
                                    ? common::defaultThreadCount()
                                    : options_.acq_threads;
    if (threads <= 1 || xs.size() < kParallelMinCandidates) {
        gp_->predictRangeInto(xs, 0, xs.size(), preds.data(),
                              acq_scratch_, true);
        return;
    }
    // Contiguous chunks, one scratch per chunk (not per worker -
    // chunks outnumber nothing and never share), so results are
    // bit-identical to the serial sweep at any thread count:
    // predictRangeInto is lane-parallel per candidate and writes only
    // its own output slots.
    const std::size_t chunks = std::min(threads, xs.size());
    const std::size_t per = (xs.size() + chunks - 1) / chunks;
    if (thread_scratch_.size() < chunks)
        thread_scratch_.resize(chunks);
    common::parallelFor(chunks, threads, [&](std::size_t c) {
        const std::size_t lo = c * per;
        const std::size_t hi = std::min(xs.size(), lo + per);
        if (lo < hi)
            gp_->predictRangeInto(xs, lo, hi, preds.data() + lo,
                                  thread_scratch_[c], true);
    });
}

std::size_t
BoEngine::suggestScreened(const std::vector<RealVec>& candidates,
                          const std::vector<double>* penalties,
                          double best) const
{
    const std::size_t count = candidates.size();
    // Cheap pass: exact posterior means (O(n) per candidate, no
    // triangular solve) plus one global stddev cap.
    gp_->predictMeansInto(candidates, means_scratch_);
    const double sigma_max = gp_->maxStddev();
    bounds_scratch_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        double bound = acquisitionUpperBound(
            options_.acquisition, means_scratch_[i], sigma_max, best,
            options_.xi, options_.ucb_beta);
        if (penalties != nullptr)
            bound -= (*penalties)[i];
        bounds_scratch_[i] = bound;
    }
    // Seed: the bound-argmax, scored exactly. Every candidate whose
    // bound is below the seed's exact score has exact score <= bound
    // < seed_score <= max score, so it can be neither the argmax nor
    // tied with it - pruning it cannot change the decision. The
    // comparison is written !(bound < seed_score) so NaNs survive to
    // the exact pass, which treats them exactly as the dense loop
    // would.
    double best_bound = -std::numeric_limits<double>::infinity();
    std::size_t seed = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (bounds_scratch_[i] > best_bound) {
            best_bound = bounds_scratch_[i];
            seed = i;
        }
    }
    GpPrediction seed_pred;
    gp_->predictRangeInto(candidates, seed, seed + 1, &seed_pred,
                          acq_scratch_, true);
    double seed_score = acquisition(options_.acquisition, seed_pred,
                                    best, options_.xi,
                                    options_.ucb_beta);
    if (penalties != nullptr)
        seed_score -= (*penalties)[seed];
    surv_idx_scratch_.clear();
    surv_cands_scratch_.clear();
    for (std::size_t i = 0; i < count; ++i) {
        if (!(bounds_scratch_[i] < seed_score)) {
            surv_idx_scratch_.push_back(i);
            surv_cands_scratch_.push_back(candidates[i]);
        }
    }
    // The seed's own bound dominates its exact score, so it always
    // survives and the survivor set is never empty.
    SATORI_ASSERT(!surv_idx_scratch_.empty());
    stats_.screen_kept = surv_idx_scratch_.size();
    stats_.screen_pruned = count - surv_idx_scratch_.size();
    SATORI_OBS_METRIC(bo_screen_kept.inc(stats_.screen_kept));
    SATORI_OBS_METRIC(bo_screen_pruned.inc(stats_.screen_pruned));
    // Exact scores for the survivors only. Survivors keep ascending
    // original order, so first-wins argmax over them reproduces the
    // dense loop's tie-breaking bit for bit.
    scoreExactInto(surv_cands_scratch_, preds_scratch_);
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_idx = surv_idx_scratch_[0];
    for (std::size_t j = 0; j < surv_idx_scratch_.size(); ++j) {
        double score = acquisition(options_.acquisition,
                                   preds_scratch_[j], best,
                                   options_.xi, options_.ucb_beta);
        if (penalties != nullptr)
            score -= (*penalties)[surv_idx_scratch_[j]];
        if (score > best_score) {
            best_score = score;
            best_idx = surv_idx_scratch_[j];
        }
    }
    return best_idx;
}

std::size_t
BoEngine::suggestImpl(const std::vector<RealVec>& candidates,
                      const std::vector<double>* penalties) const
{
    SATORI_OBS_SPAN("bo.acquisition");
    SATORI_OBS_METRIC(bo_suggests.inc());
    SATORI_OBS_METRIC(bo_candidates.observe(
        static_cast<double>(candidates.size())));
    SATORI_ASSERT(ready());
    SATORI_ASSERT(!candidates.empty());
    stats_ = SuggestStats{};
    const double best = bestObserved();
    const bool use_approx =
        approxActive() && approx_gp_ && approx_gp_->isFitted();
    std::size_t best_idx = 0;
    if (!use_approx && options_.screen && candidates.size() >= 2) {
        best_idx = suggestScreened(candidates, penalties, best);
    } else {
        if (use_approx) {
            stats_.approx_active = true;
            // The decision loop re-scores the same candidate lattice
            // every interval; the cached path amortizes the kernel
            // block and variance solve across decisions (misses fall
            // back to exactly what predictBatchInto computes).
            approx_gp_->predictBatchCachedInto(candidates,
                                               preds_scratch_);
        } else {
            scoreExactInto(candidates, preds_scratch_);
        }
        stats_.screen_kept = candidates.size();
        double best_score = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            double score = acquisition(options_.acquisition,
                                       preds_scratch_[i], best,
                                       options_.xi, options_.ucb_beta);
            if (penalties != nullptr)
                score -= (*penalties)[i];
            if (score > best_score) {
                best_score = score;
                best_idx = i;
            }
        }
    }
    stats_.window_evictions =
        (gp_ ? gp_->windowEvictions() : 0) +
        (approx_gp_ ? approx_gp_->windowEvictions() : 0);
    return best_idx;
}

GpPrediction
BoEngine::predict(const RealVec& x) const
{
    SATORI_ASSERT(ready());
    if (approxActive() && approx_gp_ && approx_gp_->isFitted())
        return approx_gp_->predict(x);
    return gp_->predict(x);
}

std::vector<double>
BoEngine::probeMeans(const std::vector<RealVec>& probes) const
{
    SATORI_OBS_SPAN("bo.probe");
    SATORI_ASSERT(ready());
    std::vector<double> means;
    if (approxActive() && approx_gp_ && approx_gp_->isFitted()) {
        approx_gp_->predictBatchInto(probes, preds_scratch_);
        means.reserve(probes.size());
        for (const auto& pred : preds_scratch_)
            means.push_back(pred.mean);
        return means;
    }
    // Means-only pass: bit-identical means, no per-probe O(n^2)
    // variance solve.
    gp_->predictMeansInto(probes, means);
    return means;
}

std::size_t
BoEngine::numSamples() const
{
    return inputs_.size();
}

void
BoEngine::saveState(persist::StateWriter& w) const
{
    w.putDouble(gp_->kernel().lengthScale());
    w.putBool(ready());
    w.putSize(fits_since_grid_);
    w.putSize(inputs_.size());
    for (const RealVec& x : inputs_)
        w.putDoubleVec(x);
    w.putDoubleVec(targets_);
    // v2 fields: the decision-path shape the training set was built
    // under. Restore refuses a mismatch - silently resuming a
    // windowed run unwindowed (or vice versa) would corrupt the
    // window semantics without any error surfacing later.
    w.putSize(options_.max_history);
    w.putBool(options_.approx);
    w.putBool(options_.screen);
}

void
BoEngine::restoreState(persist::StateReader& r)
{
    const double length_scale = r.getDouble();
    const bool fitted = r.getBool();
    fits_since_grid_ = r.getSize();
    const std::size_t n = r.getSize();
    inputs_.clear();
    inputs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs_.push_back(r.getDoubleVec());
    targets_ = r.getDoubleVec();
    if (targets_.size() != inputs_.size())
        SATORI_FATAL("BO engine state has " +
                     std::to_string(inputs_.size()) + " inputs but " +
                     std::to_string(targets_.size()) + " targets");
    const std::size_t max_history = r.getSize();
    const bool approx = r.getBool();
    const bool screen = r.getBool();
    if (max_history != options_.max_history ||
        approx != options_.approx || screen != options_.screen)
        SATORI_FATAL("BO engine state was saved under a different "
                     "decision-path configuration (max_history/approx/"
                     "screen mismatch)");
    // Rebuild the GP at the saved length scale and refit the full
    // training set. A full fit is bit-identical to the incremental
    // update paths (pinned by the GP tests), so the resumed posterior
    // matches the uninterrupted run exactly in the default
    // configuration; windowed state restores under the window's
    // byte-STABILITY (tolerance-level) contract instead, since the
    // saved samples are the already-trimmed window. A plain refit
    // does not advance fits_since_grid_, preserving the grid-refit
    // timing.
    gp_ = std::make_unique<GaussianProcess>(
        std::make_unique<Matern52Kernel>(length_scale),
        options_.noise_variance);
    gp_->setMaxHistory(options_.max_history);
    gp_stale_ = false;
    approx_gp_.reset();
    if (fitted && !inputs_.empty()) {
        gp_->fit(inputs_, targets_);
        if (approxActive()) {
            ensureApproxGp();
            approx_gp_->fit(inputs_, targets_);
        }
    }
}

} // namespace bo
} // namespace satori
