#include "satori/bo/candidates.hpp"

#include <unordered_set>

#include "satori/common/logging.hpp"

namespace satori {
namespace bo {

CandidateGenerator::CandidateGenerator(const ConfigurationSpace& space,
                                       CandidateOptions options)
    : space_(space), options_(options)
{
}

std::vector<Configuration>
CandidateGenerator::seedConfigurations() const
{
    std::vector<Configuration> seeds;
    const Configuration equal = Configuration::equalPartition(
        space_.platform(), space_.numJobs());
    seeds.push_back(equal);
    // Low-imbalance variants: a single unit of a single resource moved
    // between adjacent jobs. These keep the per-job share across
    // resources nearly balanced, which the paper identifies as "good"
    // starting points.
    for (std::size_t r = 0; r < space_.platform().numResources(); ++r) {
        for (JobIndex j = 0; j + 1 < space_.numJobs(); ++j) {
            Configuration c = equal;
            if (c.transferUnit(r, j, j + 1))
                seeds.push_back(c);
            Configuration d = equal;
            if (d.transferUnit(r, j + 1, j))
                seeds.push_back(d);
        }
    }
    return seeds;
}

std::vector<Configuration>
CandidateGenerator::generate(const Configuration& incumbent, Rng& rng) const
{
    std::vector<Configuration> out;
    // `seen` is queried only for membership — the emitted order is the
    // insertion order of `out`, so candidate lists replay exactly for a
    // given (incumbent, rng state) regardless of hash-bucket layout.
    // Iterating `seen` here would break replay; see BoTest.
    std::unordered_set<std::uint64_t> seen;
    auto push_unique = [&](Configuration c) {
        const std::uint64_t key = space_.rank(c);
        if (seen.insert(key).second)
            out.push_back(std::move(c));
    };

    for (std::size_t i = 0; i < options_.num_random; ++i)
        push_unique(space_.sample(rng));
    if (options_.include_neighbors) {
        for (auto& n : space_.neighbors(incumbent))
            push_unique(std::move(n));
    }
    if (options_.include_seeds) {
        for (auto& s : seedConfigurations())
            push_unique(std::move(s));
    }
    if (options_.include_concentrated) {
        for (auto& c : concentratedConfigurations())
            push_unique(std::move(c));
    }
    SATORI_ASSERT(!out.empty());
    return out;
}

std::vector<Configuration>
CandidateGenerator::concentratedConfigurations() const
{
    std::vector<Configuration> out;
    const std::size_t jobs = space_.numJobs();
    if (jobs < 2)
        return out; // nothing to concentrate with a single job
    const Configuration equal = Configuration::equalPartition(
        space_.platform(), space_.numJobs());
    for (std::size_t r = 0; r < space_.platform().numResources(); ++r) {
        const int units = space_.platform().units(r);
        const int spare = units - static_cast<int>(jobs);
        if (spare <= 0)
            continue;
        for (JobIndex j = 0; j < jobs; ++j) {
            for (double share : {0.5, 1.0}) {
                // Give job j `share` of what is left after every
                // other job keeps one unit; spread the rest evenly.
                const int take =
                    1 + static_cast<int>(
                            share * static_cast<double>(spare));
                Configuration c = equal;
                std::vector<int> row(jobs, 1);
                row[j] = take;
                int rest = units - take - static_cast<int>(jobs - 1);
                std::size_t k = 0;
                while (rest > 0) {
                    if (k != j) {
                        row[k] += 1;
                        --rest;
                    }
                    k = (k + 1) % jobs;
                }
                for (JobIndex q = 0; q < jobs; ++q)
                    c.units(r, q) = row[q];
                if (!(c == equal))
                    out.push_back(std::move(c));
            }
        }
    }
    return out;
}

} // namespace bo
} // namespace satori
