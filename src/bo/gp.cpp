#include "satori/bo/gp.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/linalg/matrix.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace bo {

namespace {

/**
 * How far the target scale may drift from the scale at the last full
 * factorization before an incremental update also refreshes the
 * factorization. The factor never depends on the targets, so this is
 * numerical hygiene only - it changes nothing observable - but it
 * bounds how long a factor extended purely by rank-1 appends lives
 * while the objective magnitude moves by orders of magnitude.
 */
constexpr double kScaleDriftTolerance = 32.0;

} // namespace

double
GpPrediction::stddev() const
{
    return std::sqrt(std::max(variance, 0.0));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance)
{
    SATORI_ASSERT(kernel_ != nullptr);
    SATORI_ASSERT(noise_variance_ >= 0.0);
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      noise_variance_(other.noise_variance_), fitted_(other.fitted_),
      inputs_(other.inputs_), y_raw_(other.y_raw_), y_std_(other.y_std_),
      y_mean_(other.y_mean_), y_scale_(other.y_scale_),
      chol_(other.chol_
                ? std::make_unique<linalg::Cholesky>(*other.chol_)
                : nullptr),
      alpha_(other.alpha_), log_marginal_(other.log_marginal_),
      k_cache_(other.k_cache_), anchor_scale_(other.anchor_scale_)
{
}

GaussianProcess&
GaussianProcess::operator=(const GaussianProcess& other)
{
    if (this != &other) {
        GaussianProcess copy(other);
        *this = std::move(copy);
    }
    return *this;
}

void
GaussianProcess::fit(const std::vector<RealVec>& inputs,
                     const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    inputs_ = inputs;
    y_raw_ = targets;
    fitStandardized();
}

void
GaussianProcess::fitStandardized()
{
    buildKernelCache();
    refitFromCache();
}

void
GaussianProcess::buildKernelCache()
{
    const std::size_t n = inputs_.size();
    k_cache_ = linalg::Matrix(n, n);
    // Row-at-a-time through the batched kernel; symmetric entries are
    // recomputed rather than mirrored, which is bitwise-identical for
    // a stationary kernel (the distance accumulation sees the same
    // operands) and keeps every write contiguous.
    for (std::size_t i = 0; i < n; ++i) {
        kernel_->covarianceRow(inputs_[i], inputs_, &k_cache_(i, 0));
        k_cache_(i, i) += noise_variance_;
    }
}

void
GaussianProcess::refitFromCache()
{
    SATORI_OBS_SPAN("gp.fit");
    // Only the obs/audit hooks consume n; OBS=OFF + AUDIT=OFF builds
    // compile both away.
    [[maybe_unused]] const std::size_t n = inputs_.size();
    SATORI_OBS_METRIC(gp_fits.inc());
    SATORI_OBS_METRIC(
        gp_training_size.observe(static_cast<double>(n)));
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkKernelMatrix(
        k_cache_, __FILE__, __LINE__));
    chol_ = std::make_unique<linalg::Cholesky>(k_cache_);
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
        chol_->jitter(), chol_->conditionEstimate(), n, __FILE__,
        __LINE__));
    standardizeAndSolve();
    anchor_scale_ = y_scale_;
}

void
GaussianProcess::standardizeAndSolve()
{
    const std::size_t n = inputs_.size();
    y_mean_ = mean(y_raw_);
    y_scale_ = stddev(y_raw_);
    if (y_scale_ < 1e-12)
        y_scale_ = 1.0; // constant targets: keep scale neutral
    y_std_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        y_std_[i] = (y_raw_[i] - y_mean_) / y_scale_;
    alpha_ = chol_->solve(y_std_);

    // log p(y|X) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
    log_marginal_ = -0.5 * linalg::dot(y_std_, alpha_) -
                    0.5 * chol_->logDet() -
                    0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
    fitted_ = true;
}

bool
GaussianProcess::tryExtendFactor(const RealVec& x)
{
    const std::size_t n = inputs_.size();
    // The new row, computed exactly as a fresh kernel build would:
    // upper-triangle order is k(existing_i, new), diagonal gets the
    // kernel self-covariance first, then the noise added on top.
    std::vector<double> cross(n);
    kernel_->covarianceRow(x, inputs_, cross.data());
    double diag = kernel_->covariance(x, x);
    diag += noise_variance_;

    linalg::Matrix grown(n + 1, n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            grown(i, j) = k_cache_(i, j);
        grown(i, n) = cross[i];
        grown(n, i) = cross[i];
    }
    grown(n, n) = diag;
    k_cache_ = std::move(grown);
    inputs_.push_back(x);
    return chol_->update(cross, diag);
}

bool
GaussianProcess::scaleDrifted() const
{
    return y_scale_ > anchor_scale_ * kScaleDriftTolerance ||
           y_scale_ * kScaleDriftTolerance < anchor_scale_;
}

bool
GaussianProcess::samePrefix(const std::vector<RealVec>& other,
                            std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i) {
        if (other[i].size() != inputs_[i].size())
            return false;
        // Bitwise comparison on purpose: equality must mean "the
        // cached factorization is exactly the one a refit would
        // build"; a spurious mismatch only costs a full refit.
        if (std::memcmp(other[i].data(), inputs_[i].data(),
                        inputs_[i].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

void
GaussianProcess::addObservation(const RealVec& x, double target)
{
    if (!fitted_) {
        inputs_.assign(1, x);
        y_raw_.assign(1, target);
        fitStandardized();
        return;
    }
    const bool extended = tryExtendFactor(x);
    y_raw_.push_back(target);
    if (!extended) {
        // SPD failure at the current jitter (e.g. a duplicated input
        // at jitter 0): refactorize the cached matrix from scratch so
        // the jitter-escalation ladder replays exactly as a fresh
        // fit's would.
        refitFromCache();
        return;
    }
    SATORI_OBS_SPAN("gp.fit.incremental");
    SATORI_OBS_METRIC(gp_incremental_updates.inc());
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
        chol_->jitter(), chol_->conditionEstimate(), inputs_.size(),
        __FILE__, __LINE__));
    standardizeAndSolve();
    if (scaleDrifted())
        refitFromCache();
}

void
GaussianProcess::fitIncremental(const std::vector<RealVec>& inputs,
                                const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    if (fitted_ && inputs.size() == inputs_.size() &&
        samePrefix(inputs, inputs_.size())) {
        // Same geometry, new targets (the re-weighted per-interval
        // reconstruction): reuse the factor, re-solve only.
        SATORI_OBS_SPAN("gp.fit.refresh");
        SATORI_OBS_METRIC(gp_refresh_solves.inc());
        y_raw_ = targets;
        standardizeAndSolve();
        if (scaleDrifted())
            refitFromCache();
        return;
    }
    if (fitted_ && inputs.size() == inputs_.size() + 1 &&
        samePrefix(inputs, inputs_.size())) {
        const bool extended = tryExtendFactor(inputs.back());
        y_raw_ = targets;
        if (!extended) {
            refitFromCache();
            return;
        }
        SATORI_OBS_SPAN("gp.fit.incremental");
        SATORI_OBS_METRIC(gp_incremental_updates.inc());
        SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
            chol_->jitter(), chol_->conditionEstimate(), inputs_.size(),
            __FILE__, __LINE__));
        standardizeAndSolve();
        if (scaleDrifted())
            refitFromCache();
        return;
    }
    fit(inputs, targets);
}

GpPrediction
GaussianProcess::predict(const RealVec& x) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t n = inputs_.size();
    std::vector<double> kstar(n);
    kernel_->covarianceRow(x, inputs_, kstar.data());

    GpPrediction pred;
    pred.mean = y_mean_ + y_scale_ * linalg::dot(kstar, alpha_);

    const std::vector<double> v = chol_->solveLower(kstar);
    const double var_std =
        kernel_->variance() - linalg::dot(v, v);
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkPosteriorVariance(
        var_std, kernel_->variance(), __FILE__, __LINE__));
    pred.variance = std::max(var_std, 0.0) * y_scale_ * y_scale_;
    return pred;
}

void
GaussianProcess::predictBatchInto(const std::vector<RealVec>& xs,
                                  std::vector<GpPrediction>& out) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t n = inputs_.size();
    const std::size_t m = xs.size();
    if (kstar_scratch_.rows() != m || kstar_scratch_.cols() != n)
        kstar_scratch_ = linalg::Matrix(m, n);
    for (std::size_t c = 0; c < m; ++c)
        kernel_->covarianceRow(xs[c], inputs_, &kstar_scratch_(c, 0));
    chol_->solveLowerMultiInto(kstar_scratch_, v_scratch_);
    out.resize(m);
    // v_scratch_ is transposed (solutions in columns); accumulate
    // ||v||^2 row by row so the inner loop stays contiguous while each
    // candidate still sums in ascending i - the exact linalg::dot
    // order predict() uses.
    vv_scratch_.assign(m, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < m; ++c)
            vv_scratch_[c] += v_scratch_(i, c) * v_scratch_(i, c);
    for (std::size_t c = 0; c < m; ++c) {
        // Same accumulation order as linalg::dot in predict().
        double mean_std = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            mean_std += kstar_scratch_(c, i) * alpha_[i];
        out[c].mean = y_mean_ + y_scale_ * mean_std;
        const double var_std = kernel_->variance() - vv_scratch_[c];
        SATORI_AUDIT_HOOK(
            analysis::globalAuditor().checkPosteriorVariance(
                var_std, kernel_->variance(), __FILE__, __LINE__));
        out[c].variance = std::max(var_std, 0.0) * y_scale_ * y_scale_;
    }
}

std::vector<GpPrediction>
GaussianProcess::predictBatch(const std::vector<RealVec>& xs) const
{
    std::vector<GpPrediction> out;
    predictBatchInto(xs, out);
    return out;
}

double
GaussianProcess::logMarginalLikelihood() const
{
    SATORI_ASSERT(fitted_);
    return log_marginal_;
}

void
GaussianProcess::fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                        const std::vector<double>& targets,
                                        const std::vector<double>& grid)
{
    SATORI_ASSERT(!grid.empty());
    // Keep the best candidate's full fitted state as the grid runs so
    // the winner can be restored directly instead of paying an extra
    // O(n^3) refit at the end.
    double best_lml = -std::numeric_limits<double>::infinity();
    std::unique_ptr<Kernel> best_kernel;
    std::unique_ptr<linalg::Cholesky> best_chol;
    std::vector<double> best_alpha;
    std::vector<double> best_y_std;
    double best_y_mean = 0.0;
    double best_y_scale = 1.0;
    double best_anchor = 1.0;
    linalg::Matrix best_cache;
    for (double ls : grid) {
        kernel_ = kernel_->withLengthScale(ls);
        fit(inputs, targets);
        if (log_marginal_ > best_lml) {
            best_lml = log_marginal_;
            best_kernel = kernel_->clone();
            best_chol = std::make_unique<linalg::Cholesky>(*chol_);
            best_alpha = alpha_;
            best_y_std = y_std_;
            best_y_mean = y_mean_;
            best_y_scale = y_scale_;
            best_anchor = anchor_scale_;
            best_cache = k_cache_;
        }
    }
    kernel_ = std::move(best_kernel);
    chol_ = std::move(best_chol);
    alpha_ = std::move(best_alpha);
    y_std_ = std::move(best_y_std);
    y_mean_ = best_y_mean;
    y_scale_ = best_y_scale;
    anchor_scale_ = best_anchor;
    k_cache_ = std::move(best_cache);
    log_marginal_ = best_lml;
}

} // namespace bo
} // namespace satori
