#include "satori/bo/gp.hpp"

#include <cmath>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/linalg/matrix.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace bo {

double
GpPrediction::stddev() const
{
    return std::sqrt(std::max(variance, 0.0));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance)
{
    SATORI_ASSERT(kernel_ != nullptr);
    SATORI_ASSERT(noise_variance_ >= 0.0);
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      noise_variance_(other.noise_variance_), fitted_(false)
{
    if (other.fitted_)
        fit(other.inputs_, other.y_raw_);
}

GaussianProcess&
GaussianProcess::operator=(const GaussianProcess& other)
{
    if (this != &other) {
        kernel_ = other.kernel_->clone();
        noise_variance_ = other.noise_variance_;
        fitted_ = false;
        chol_.reset();
        if (other.fitted_)
            fit(other.inputs_, other.y_raw_);
    }
    return *this;
}

void
GaussianProcess::fit(const std::vector<RealVec>& inputs,
                     const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    inputs_ = inputs;
    y_raw_ = targets;
    fitStandardized();
}

void
GaussianProcess::fitStandardized()
{
    SATORI_OBS_SPAN("gp.fit");
    const std::size_t n = inputs_.size();
    SATORI_OBS_METRIC(gp_fits.inc());
    SATORI_OBS_METRIC(
        gp_training_size.observe(static_cast<double>(n)));
    y_mean_ = mean(y_raw_);
    y_scale_ = stddev(y_raw_);
    if (y_scale_ < 1e-12)
        y_scale_ = 1.0; // constant targets: keep scale neutral
    y_std_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        y_std_[i] = (y_raw_[i] - y_mean_) / y_scale_;

    linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = kernel_->covariance(inputs_[i], inputs_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += noise_variance_;
    }
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkKernelMatrix(
        k, __FILE__, __LINE__));
    chol_ = std::make_unique<linalg::Cholesky>(std::move(k));
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
        chol_->jitter(), chol_->conditionEstimate(), n, __FILE__,
        __LINE__));
    alpha_ = chol_->solve(y_std_);

    // log p(y|X) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
    log_marginal_ = -0.5 * linalg::dot(y_std_, alpha_) -
                    0.5 * chol_->logDet() -
                    0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
    fitted_ = true;
}

GpPrediction
GaussianProcess::predict(const RealVec& x) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t n = inputs_.size();
    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i)
        kstar[i] = kernel_->covariance(x, inputs_[i]);

    GpPrediction pred;
    pred.mean = y_mean_ + y_scale_ * linalg::dot(kstar, alpha_);

    const std::vector<double> v = chol_->solveLower(kstar);
    const double var_std =
        kernel_->variance() - linalg::dot(v, v);
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkPosteriorVariance(
        var_std, kernel_->variance(), __FILE__, __LINE__));
    pred.variance = std::max(var_std, 0.0) * y_scale_ * y_scale_;
    return pred;
}

double
GaussianProcess::logMarginalLikelihood() const
{
    SATORI_ASSERT(fitted_);
    return log_marginal_;
}

void
GaussianProcess::fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                        const std::vector<double>& targets,
                                        const std::vector<double>& grid)
{
    SATORI_ASSERT(!grid.empty());
    double best_lml = -std::numeric_limits<double>::infinity();
    std::unique_ptr<Kernel> best_kernel;
    for (double ls : grid) {
        kernel_ = kernel_->withLengthScale(ls);
        fit(inputs, targets);
        if (log_marginal_ > best_lml) {
            best_lml = log_marginal_;
            best_kernel = kernel_->clone();
        }
    }
    kernel_ = std::move(best_kernel);
    fit(inputs, targets);
}

} // namespace bo
} // namespace satori
