#include "satori/bo/gp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "satori/analysis/invariants.hpp"
#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/linalg/matrix.hpp"
#include "satori/linalg/simd.hpp"
#include "satori/obs/obs.hpp"

namespace satori {
namespace bo {

namespace {

/**
 * How far the target scale may drift from the scale at the last full
 * factorization before an incremental update also refreshes the
 * factorization. The factor never depends on the targets, so this is
 * numerical hygiene only - it changes nothing observable - but it
 * bounds how long a factor extended purely by rank-1 appends lives
 * while the objective magnitude moves by orders of magnitude.
 */
constexpr double kScaleDriftTolerance = 32.0;

/**
 * Condition-estimate ceiling for a downdated factor. Every eviction
 * rotates the trailing factor in place; if the survivor ends up this
 * ill-conditioned (legitimately, e.g. near-duplicate inputs at tiny
 * jitter) a fresh jitter-escalated factorization replaces it rather
 * than letting solves run against a numerically exhausted triangle.
 */
constexpr double kWindowConditionLimit = 1e12;

/** Candidate block size for the batched prediction paths: bounds the
 * kstar/v scratch at n x 256 doubles so a 10k-candidate sweep stays
 * cache-resident instead of materializing a 10k-row matrix. */
constexpr std::size_t kPredictBlock = 256;

} // namespace

double
GpPrediction::stddev() const
{
    return std::sqrt(std::max(variance, 0.0));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance)
{
    SATORI_ASSERT(kernel_ != nullptr);
    SATORI_ASSERT(noise_variance_ >= 0.0);
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      noise_variance_(other.noise_variance_), fitted_(other.fitted_),
      inputs_(other.inputs_), y_raw_(other.y_raw_), y_std_(other.y_std_),
      y_mean_(other.y_mean_), y_scale_(other.y_scale_),
      chol_(other.chol_
                ? std::make_unique<linalg::Cholesky>(*other.chol_)
                : nullptr),
      alpha_(other.alpha_), log_marginal_(other.log_marginal_),
      k_cache_(other.k_cache_), anchor_scale_(other.anchor_scale_),
      max_history_(other.max_history_),
      window_evictions_(other.window_evictions_)
{
}

GaussianProcess&
GaussianProcess::operator=(const GaussianProcess& other)
{
    if (this != &other) {
        GaussianProcess copy(other);
        *this = std::move(copy);
    }
    return *this;
}

void
GaussianProcess::fit(const std::vector<RealVec>& inputs,
                     const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    if (windowed() && inputs.size() > max_history_) {
        // A windowed GP only ever fits the newest max_history_
        // samples; older ones would be evicted immediately anyway.
        const std::size_t skip = inputs.size() - max_history_;
        inputs_.assign(inputs.begin() + static_cast<std::ptrdiff_t>(skip),
                       inputs.end());
        y_raw_.assign(targets.begin() + static_cast<std::ptrdiff_t>(skip),
                      targets.end());
    } else {
        inputs_ = inputs;
        y_raw_ = targets;
    }
    fitStandardized();
}

void
GaussianProcess::setMaxHistory(std::size_t max_history)
{
    max_history_ = max_history;
    if (windowed()) {
        // The dense cache is not maintained across evictions; drop it
        // now so no stale copy survives the first one.
        k_cache_ = linalg::Matrix();
    } else if (fitted_) {
        // Back to unwindowed: the incremental paths assume the cache
        // mirrors inputs_, so restore that invariant.
        buildKernelCache();
    }
}

void
GaussianProcess::fitStandardized()
{
    buildKernelCache();
    refitFromCache();
    if (windowed())
        k_cache_ = linalg::Matrix();
}

void
GaussianProcess::refreshFactorization()
{
    if (windowed())
        fitStandardized();
    else
        refitFromCache();
}

void
GaussianProcess::buildKernelCache()
{
    const std::size_t n = inputs_.size();
    k_cache_ = linalg::Matrix(n, n);
    // Row-at-a-time through the batched kernel; symmetric entries are
    // recomputed rather than mirrored, which is bitwise-identical for
    // a stationary kernel (the distance accumulation sees the same
    // operands) and keeps every write contiguous.
    for (std::size_t i = 0; i < n; ++i) {
        kernel_->covarianceRow(inputs_[i], inputs_, &k_cache_(i, 0));
        k_cache_(i, i) += noise_variance_;
    }
}

void
GaussianProcess::refitFromCache()
{
    SATORI_OBS_SPAN("gp.fit");
    // Only the obs/audit hooks consume n; OBS=OFF + AUDIT=OFF builds
    // compile both away.
    [[maybe_unused]] const std::size_t n = inputs_.size();
    SATORI_OBS_METRIC(gp_fits.inc());
    SATORI_OBS_METRIC(
        gp_training_size.observe(static_cast<double>(n)));
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkKernelMatrix(
        k_cache_, __FILE__, __LINE__));
    chol_ = std::make_unique<linalg::Cholesky>(k_cache_);
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
        chol_->jitter(), chol_->conditionEstimate(), n, __FILE__,
        __LINE__));
    standardizeAndSolve();
    anchor_scale_ = y_scale_;
}

void
GaussianProcess::standardizeAndSolve()
{
    const std::size_t n = inputs_.size();
    y_mean_ = mean(y_raw_);
    y_scale_ = stddev(y_raw_);
    if (y_scale_ < 1e-12)
        y_scale_ = 1.0; // constant targets: keep scale neutral
    y_std_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        y_std_[i] = (y_raw_[i] - y_mean_) / y_scale_;
    // The windowed fast path takes the blocked backward solve (byte-
    // stable, not byte-equal to history - see solveUpperBlocked); the
    // default path keeps the historical order bit for bit.
    alpha_ = windowed() ? chol_->solveBlocked(y_std_)
                        : chol_->solve(y_std_);

    // log p(y|X) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
    log_marginal_ = -0.5 * linalg::dot(y_std_, alpha_) -
                    0.5 * chol_->logDet() -
                    0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
    fitted_ = true;
}

bool
GaussianProcess::tryExtendFactor(const RealVec& x)
{
    const std::size_t n = inputs_.size();
    // The new row, computed exactly as a fresh kernel build would:
    // upper-triangle order is k(existing_i, new), diagonal gets the
    // kernel self-covariance first, then the noise added on top.
    std::vector<double> cross(n);
    kernel_->covarianceRow(x, inputs_, cross.data());
    double diag = kernel_->covariance(x, x);
    diag += noise_variance_;

    if (!windowed()) {
        linalg::Matrix grown(n + 1, n + 1);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                grown(i, j) = k_cache_(i, j);
            grown(i, n) = cross[i];
            grown(n, i) = cross[i];
        }
        grown(n, n) = diag;
        k_cache_ = std::move(grown);
    }
    inputs_.push_back(x);
    return chol_->update(cross, diag);
}

void
GaussianProcess::evictOldest()
{
    SATORI_ASSERT(!inputs_.empty());
    const bool ok = chol_->downdate();
    inputs_.erase(inputs_.begin());
    y_raw_.erase(y_raw_.begin());
    ++window_evictions_;
    SATORI_OBS_METRIC(bo_window_evictions.inc());
    if (inputs_.empty())
        return;
    if (!ok || chol_->conditionEstimate() > kWindowConditionLimit) {
        // Downdate breakdown (non-finite) or a numerically exhausted
        // survivor: rebuild fresh with the jitter ladder. Rare by
        // construction - the rotation sweep is unconditionally stable
        // for SPD factors - but the window must never limp on.
        fitStandardized();
    }
}

void
GaussianProcess::enforceWindow()
{
    while (windowed() && inputs_.size() > max_history_)
        evictOldest();
}

bool
GaussianProcess::scaleDrifted() const
{
    return y_scale_ > anchor_scale_ * kScaleDriftTolerance ||
           y_scale_ * kScaleDriftTolerance < anchor_scale_;
}

bool
GaussianProcess::samePrefix(const std::vector<RealVec>& other,
                            std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i) {
        if (other[i].size() != inputs_[i].size())
            return false;
        // Bitwise comparison on purpose: equality must mean "the
        // cached factorization is exactly the one a refit would
        // build"; a spurious mismatch only costs a full refit.
        if (std::memcmp(other[i].data(), inputs_[i].data(),
                        inputs_[i].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

bool
GaussianProcess::sameShifted(const std::vector<RealVec>& other) const
{
    const std::size_t n = inputs_.size();
    if (other.size() != n || n == 0)
        return false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (other[i].size() != inputs_[i + 1].size())
            return false;
        // Bitwise on purpose, like samePrefix: a miss only costs a
        // full refit, never correctness.
        if (std::memcmp(other[i].data(), inputs_[i + 1].data(),
                        inputs_[i + 1].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

void
GaussianProcess::addObservation(const RealVec& x, double target)
{
    if (!fitted_) {
        inputs_.assign(1, x);
        y_raw_.assign(1, target);
        fitStandardized();
        return;
    }
    const bool extended = tryExtendFactor(x);
    y_raw_.push_back(target);
    if (!extended) {
        // SPD failure at the current jitter (e.g. a duplicated input
        // at jitter 0): refactorize the cached matrix from scratch so
        // the jitter-escalation ladder replays exactly as a fresh
        // fit's would.
        refreshFactorization();
        enforceWindow();
        return;
    }
    SATORI_OBS_SPAN("gp.fit.incremental");
    SATORI_OBS_METRIC(gp_incremental_updates.inc());
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
        chol_->jitter(), chol_->conditionEstimate(), inputs_.size(),
        __FILE__, __LINE__));
    enforceWindow();
    standardizeAndSolve();
    if (scaleDrifted())
        refreshFactorization();
}

void
GaussianProcess::fitIncremental(const std::vector<RealVec>& inputs,
                                const std::vector<double>& targets)
{
    SATORI_ASSERT(inputs.size() == targets.size());
    SATORI_ASSERT(!inputs.empty());
    if (fitted_ && inputs.size() == inputs_.size() &&
        samePrefix(inputs, inputs_.size())) {
        // Same geometry, new targets (the re-weighted per-interval
        // reconstruction): reuse the factor, re-solve only.
        SATORI_OBS_SPAN("gp.fit.refresh");
        SATORI_OBS_METRIC(gp_refresh_solves.inc());
        y_raw_ = targets;
        enforceWindow();
        standardizeAndSolve();
        if (scaleDrifted())
            refreshFactorization();
        return;
    }
    if (fitted_ && inputs.size() == inputs_.size() + 1 &&
        samePrefix(inputs, inputs_.size())) {
        const bool extended = tryExtendFactor(inputs.back());
        y_raw_ = targets;
        if (!extended) {
            refreshFactorization();
            enforceWindow();
            return;
        }
        SATORI_OBS_SPAN("gp.fit.incremental");
        SATORI_OBS_METRIC(gp_incremental_updates.inc());
        SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
            chol_->jitter(), chol_->conditionEstimate(), inputs_.size(),
            __FILE__, __LINE__));
        enforceWindow();
        standardizeAndSolve();
        if (scaleDrifted())
            refreshFactorization();
        return;
    }
    if (fitted_ && windowed() && sameShifted(inputs)) {
        // A slid full window: old[1..n) == new[0..n-1) plus one fresh
        // sample at the end. Evict-then-append keeps the whole
        // reconstruction O(n^2) - this is the sliding-window steady
        // state at 10x the historical sample count.
        SATORI_OBS_SPAN("gp.fit.window_slide");
        evictOldest();
        const bool extended = tryExtendFactor(inputs.back());
        y_raw_ = targets;
        if (!extended) {
            refreshFactorization();
            return;
        }
        SATORI_OBS_METRIC(gp_incremental_updates.inc());
        SATORI_AUDIT_HOOK(analysis::globalAuditor().checkCholesky(
            chol_->jitter(), chol_->conditionEstimate(), inputs_.size(),
            __FILE__, __LINE__));
        standardizeAndSolve();
        if (scaleDrifted())
            refreshFactorization();
        return;
    }
    fit(inputs, targets);
}

GpPrediction
GaussianProcess::predict(const RealVec& x) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t n = inputs_.size();
    std::vector<double> kstar(n);
    kernel_->covarianceRow(x, inputs_, kstar.data());

    GpPrediction pred;
    pred.mean = y_mean_ + y_scale_ * linalg::dot(kstar, alpha_);

    const std::vector<double> v = chol_->solveLower(kstar);
    const double var_std =
        kernel_->variance() - linalg::dot(v, v);
    SATORI_AUDIT_HOOK(analysis::globalAuditor().checkPosteriorVariance(
        var_std, kernel_->variance(), __FILE__, __LINE__));
    pred.variance = std::max(var_std, 0.0) * y_scale_ * y_scale_;
    return pred;
}

void
GaussianProcess::predictRangeInto(const std::vector<RealVec>& xs,
                                  std::size_t begin, std::size_t end,
                                  GpPrediction* out,
                                  BatchScratch& scratch,
                                  bool with_variance) const
{
    SATORI_ASSERT(fitted_);
    SATORI_ASSERT(begin <= end && end <= xs.size());
    const std::size_t n = inputs_.size();
    for (std::size_t b0 = begin; b0 < end; b0 += kPredictBlock) {
        const std::size_t b1 = std::min(end, b0 + kPredictBlock);
        const std::size_t bsz = b1 - b0;
        scratch.pts.assign(xs, b0, b1);
        if (scratch.kstar_t.rows() != n || scratch.kstar_t.cols() != bsz)
            scratch.kstar_t = linalg::Matrix(n, bsz);
        // Cross-covariance block, training-sample-major: row i holds
        // k(inputs_[i], candidate c) for the whole block. Every
        // element is bit-identical to the candidate-major row the
        // per-point path computes (see Kernel::covarianceCross), the
        // layout just turns the downstream GEMV and multi-solve into
        // contiguous lane-parallel row sweeps.
        for (std::size_t i = 0; i < n; ++i)
            kernel_->covarianceCross(scratch.pts, inputs_[i],
                                     scratch.kstar_t.rowPtr(i));
        // mean_std[c] accumulates alpha_[i] * k* in ascending i - the
        // exact linalg::dot order predict() uses, one lane per
        // candidate.
        scratch.means.assign(bsz, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            linalg::simd::fmaAccum(scratch.means.data(),
                                   scratch.kstar_t.rowPtr(i), alpha_[i],
                                   bsz);
        GpPrediction* o = out + (b0 - begin);
        if (!with_variance) {
            for (std::size_t c = 0; c < bsz; ++c) {
                o[c].mean = y_mean_ + y_scale_ * scratch.means[c];
                o[c].variance = 0.0;
            }
            continue;
        }
        chol_->solveLowerMultiTransposedInto(scratch.kstar_t,
                                             scratch.v);
        // ||v||^2 row by row: contiguous inner loop, each candidate
        // still sums in ascending i.
        scratch.vv.assign(bsz, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            linalg::simd::accumSquare(scratch.vv.data(),
                                      scratch.v.rowPtr(i), bsz);
        for (std::size_t c = 0; c < bsz; ++c) {
            o[c].mean = y_mean_ + y_scale_ * scratch.means[c];
            const double var_std = kernel_->variance() - scratch.vv[c];
            SATORI_AUDIT_HOOK(
                analysis::globalAuditor().checkPosteriorVariance(
                    var_std, kernel_->variance(), __FILE__, __LINE__));
            o[c].variance =
                std::max(var_std, 0.0) * y_scale_ * y_scale_;
        }
    }
}

void
GaussianProcess::predictBatchInto(const std::vector<RealVec>& xs,
                                  std::vector<GpPrediction>& out) const
{
    out.resize(xs.size());
    predictRangeInto(xs, 0, xs.size(), out.data(), scratch_, true);
}

void
GaussianProcess::predictMeansInto(const std::vector<RealVec>& xs,
                                  std::vector<double>& out) const
{
    SATORI_ASSERT(fitted_);
    const std::size_t n = inputs_.size();
    out.resize(xs.size());
    for (std::size_t b0 = 0; b0 < xs.size(); b0 += kPredictBlock) {
        const std::size_t b1 =
            std::min(xs.size(), b0 + kPredictBlock);
        const std::size_t bsz = b1 - b0;
        scratch_.pts.assign(xs, b0, b1);
        if (scratch_.kstar_t.rows() != n ||
            scratch_.kstar_t.cols() != bsz)
            scratch_.kstar_t = linalg::Matrix(n, bsz);
        for (std::size_t i = 0; i < n; ++i)
            kernel_->covarianceCross(scratch_.pts, inputs_[i],
                                     scratch_.kstar_t.rowPtr(i));
        scratch_.means.assign(bsz, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            linalg::simd::fmaAccum(scratch_.means.data(),
                                   scratch_.kstar_t.rowPtr(i),
                                   alpha_[i], bsz);
        for (std::size_t c = 0; c < bsz; ++c)
            out[b0 + c] = y_mean_ + y_scale_ * scratch_.means[c];
    }
}

double
GaussianProcess::maxStddev() const
{
    SATORI_ASSERT(fitted_);
    // var_std <= kernel variance holds in floating point (it is the
    // prior minus a nonnegative, and fl(a - b) <= a for b >= 0 with a
    // representable), and every downstream step of stddev() is
    // monotone, so evaluating the prior through the same expression
    // shape bounds every candidate's stddev including rounding.
    return std::sqrt(kernel_->variance() * y_scale_ * y_scale_);
}

std::vector<GpPrediction>
GaussianProcess::predictBatch(const std::vector<RealVec>& xs) const
{
    std::vector<GpPrediction> out;
    predictBatchInto(xs, out);
    return out;
}

double
GaussianProcess::logMarginalLikelihood() const
{
    SATORI_ASSERT(fitted_);
    return log_marginal_;
}

void
GaussianProcess::fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                        const std::vector<double>& targets,
                                        const std::vector<double>& grid)
{
    SATORI_ASSERT(!grid.empty());
    // Keep the best candidate's full fitted state as the grid runs so
    // the winner can be restored directly instead of paying an extra
    // O(n^3) refit at the end.
    double best_lml = -std::numeric_limits<double>::infinity();
    std::unique_ptr<Kernel> best_kernel;
    std::unique_ptr<linalg::Cholesky> best_chol;
    std::vector<double> best_alpha;
    std::vector<double> best_y_std;
    double best_y_mean = 0.0;
    double best_y_scale = 1.0;
    double best_anchor = 1.0;
    linalg::Matrix best_cache;
    for (double ls : grid) {
        kernel_ = kernel_->withLengthScale(ls);
        fit(inputs, targets);
        if (log_marginal_ > best_lml) {
            best_lml = log_marginal_;
            best_kernel = kernel_->clone();
            best_chol = std::make_unique<linalg::Cholesky>(*chol_);
            best_alpha = alpha_;
            best_y_std = y_std_;
            best_y_mean = y_mean_;
            best_y_scale = y_scale_;
            best_anchor = anchor_scale_;
            best_cache = k_cache_;
        }
    }
    kernel_ = std::move(best_kernel);
    chol_ = std::move(best_chol);
    alpha_ = std::move(best_alpha);
    y_std_ = std::move(best_y_std);
    y_mean_ = best_y_mean;
    y_scale_ = best_y_scale;
    anchor_scale_ = best_anchor;
    k_cache_ = std::move(best_cache);
    log_marginal_ = best_lml;
}

} // namespace bo
} // namespace satori
