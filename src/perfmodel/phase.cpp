#include "satori/perfmodel/phase.hpp"

#include "satori/common/logging.hpp"

namespace satori {
namespace perfmodel {

PhaseSequence::PhaseSequence(std::vector<PhaseParams> phases)
    : phases_(std::move(phases))
{
    if (phases_.empty())
        SATORI_FATAL("a workload needs at least one phase");
    for (const auto& p : phases_)
        if (p.length <= 0)
            SATORI_FATAL("phase length must be positive");
}

const PhaseParams&
PhaseSequence::current() const
{
    return phases_[index_];
}

void
PhaseSequence::advance(Instructions instructions)
{
    SATORI_ASSERT(instructions >= 0);
    progress_ += instructions;
    while (progress_ >= phases_[index_].length) {
        progress_ -= phases_[index_].length;
        index_ = (index_ + 1) % phases_.size();
    }
}

const PhaseParams&
PhaseSequence::phase(std::size_t i) const
{
    SATORI_ASSERT(i < phases_.size());
    return phases_[i];
}

void
PhaseSequence::reset()
{
    index_ = 0;
    progress_ = 0;
}

void
PhaseSequence::seek(std::size_t index, Instructions progress)
{
    if (index >= phases_.size())
        SATORI_FATAL("phase seek out of range");
    if (progress < 0 || progress >= phases_[index].length)
        SATORI_FATAL("phase seek progress out of range");
    index_ = index;
    progress_ = progress;
}

} // namespace perfmodel
} // namespace satori
