#include "satori/perfmodel/perf.hpp"

#include <algorithm>
#include <cmath>

#include "satori/common/logging.hpp"

namespace satori {
namespace perfmodel {

double
amdahlSpeedup(double p, int cores)
{
    SATORI_ASSERT(p >= 0.0 && p <= 1.0 && cores >= 1);
    return 1.0 / ((1.0 - p) + p / static_cast<double>(cores));
}

PerfResult
evaluatePhase(const PhaseParams& phase, const MachineParams& machine,
              const AllocationView& alloc)
{
    SATORI_ASSERT(alloc.cores >= 1);
    SATORI_ASSERT(alloc.llc_ways >= 1);
    SATORI_ASSERT(alloc.bw_fraction > 0.0 && alloc.bw_fraction <= 1.0);
    SATORI_ASSERT(alloc.power_fraction > 0.0);

    PerfResult out;
    // Correlated utility: more active cores -> more threads competing
    // for the same ways -> fewer effective ways per thread.
    const double eff_ways = std::max(
        1.0, static_cast<double>(alloc.llc_ways) /
                 (1.0 + phase.cache_pressure *
                            (static_cast<double>(alloc.cores) - 1.0)));
    out.mpki = phase.mrc.mpkiAt(eff_ways);
    const double miss_per_instr = out.mpki / 1000.0;

    // CPI stack: base pipeline CPI plus exposed memory stalls.
    const double cpi =
        1.0 / phase.base_ipc + miss_per_instr * phase.miss_penalty_cycles;
    out.ipc_per_core = 1.0 / cpi;

    // Power capping scales sustained frequency sub-linearly (DVFS-like);
    // a job at (or above) its fair power share runs at full clock.
    const double power_scale =
        std::pow(std::min(alloc.power_fraction, 1.0),
                 machine.power_exponent);

    const double freq_hz = machine.freq_ghz * 1e9 * power_scale;
    const double core_speedup =
        amdahlSpeedup(phase.parallel_fraction, alloc.cores);
    const double ips_core = freq_hz * out.ipc_per_core * core_speedup;

    // Bandwidth roofline: the MBA cap throttles IPS proportionally when
    // the phase's traffic exceeds its allocated share of peak bandwidth.
    out.bw_demand_gbps =
        ips_core * miss_per_instr * phase.bytes_per_miss / 1e9;
    const double bw_cap_gbps = machine.peak_bw_gbps * alloc.bw_fraction;
    if (out.bw_demand_gbps > bw_cap_gbps && out.bw_demand_gbps > 0.0) {
        out.bw_limited = true;
        out.ips = ips_core * bw_cap_gbps / out.bw_demand_gbps;
        out.bw_used_gbps = bw_cap_gbps;
    } else {
        out.ips = ips_core;
        out.bw_used_gbps = out.bw_demand_gbps;
    }
    return out;
}

} // namespace perfmodel
} // namespace satori
