#include "satori/perfmodel/mrc.hpp"

#include <algorithm>
#include <cmath>

#include "satori/common/logging.hpp"

namespace satori {
namespace perfmodel {

MissRatioCurve
MissRatioCurve::exponential(double mpki_one, double mpki_floor,
                            double decay_ways)
{
    SATORI_ASSERT(mpki_one >= mpki_floor && mpki_floor >= 0.0);
    SATORI_ASSERT(decay_ways > 0.0);
    MissRatioCurve c;
    c.mpki_one_ = mpki_one;
    c.mpki_floor_ = mpki_floor;
    c.decay_ways_ = decay_ways;
    return c;
}

MissRatioCurve
MissRatioCurve::table(std::vector<double> mpki_by_way)
{
    SATORI_ASSERT(!mpki_by_way.empty());
    for (std::size_t i = 0; i < mpki_by_way.size(); ++i) {
        SATORI_ASSERT(mpki_by_way[i] >= 0.0);
        if (i > 0)
            SATORI_ASSERT(mpki_by_way[i] <= mpki_by_way[i - 1]);
    }
    MissRatioCurve c;
    c.table_ = std::move(mpki_by_way);
    c.mpki_floor_ = c.table_.back();
    return c;
}

MissRatioCurve
MissRatioCurve::sCurve(double mpki_one, double mpki_floor,
                       double knee_ways, double width)
{
    SATORI_ASSERT(mpki_one >= mpki_floor && mpki_floor >= 0.0);
    SATORI_ASSERT(knee_ways >= 1.0 && width > 0.0);
    // Build a table over a generous way range; normalize so one way
    // yields mpki_one exactly.
    const int max_ways = static_cast<int>(knee_ways + 6.0 * width) + 4;
    auto logistic = [&](double w) {
        return 1.0 / (1.0 + std::exp(-(knee_ways - w) / width));
    };
    const double at_one = logistic(1.0);
    SATORI_ASSERT(at_one > 0.0);
    std::vector<double> t(static_cast<std::size_t>(max_ways));
    for (int w = 1; w <= max_ways; ++w) {
        const double frac =
            std::min(logistic(static_cast<double>(w)) / at_one, 1.0);
        t[static_cast<std::size_t>(w - 1)] =
            mpki_floor + (mpki_one - mpki_floor) * frac;
    }
    for (std::size_t i = 1; i < t.size(); ++i)
        t[i] = std::min(t[i], t[i - 1]);
    return table(std::move(t));
}

MissRatioCurve
MissRatioCurve::fromStackDistances(double mpki_one, double ws_ways,
                                   double reuse_decay, int max_ways)
{
    SATORI_ASSERT(mpki_one >= 0.0 && ws_ways > 0.0);
    SATORI_ASSERT(reuse_decay > 0.0 && reuse_decay < 1.0);
    SATORI_ASSERT(max_ways >= 1);
    // Synthetic stack-distance mass: P(distance <= w ways) follows a
    // truncated geometric CDF over the working set; misses are the
    // un-captured mass. Normalized so mpki(1) == mpki_one.
    std::vector<double> t(static_cast<std::size_t>(max_ways));
    auto captured = [&](double w) {
        const double frac = std::min(w / ws_ways, 1.0);
        // Geometric reuse decay: early ways capture the hottest lines.
        return (1.0 - std::pow(reuse_decay, frac * 8.0)) /
               (1.0 - std::pow(reuse_decay, 8.0));
    };
    const double miss_at_one = 1.0 - captured(1.0);
    SATORI_ASSERT(miss_at_one > 0.0);
    for (int w = 1; w <= max_ways; ++w) {
        const double miss = 1.0 - captured(static_cast<double>(w));
        t[static_cast<std::size_t>(w - 1)] =
            mpki_one * std::max(miss, 0.0) / miss_at_one;
    }
    // Enforce monotone non-increasing despite float rounding.
    for (std::size_t i = 1; i < t.size(); ++i)
        t[i] = std::min(t[i], t[i - 1]);
    return table(std::move(t));
}

double
MissRatioCurve::mpki(int ways) const
{
    return mpkiAt(static_cast<double>(ways));
}

double
MissRatioCurve::mpkiAt(double ways) const
{
    SATORI_ASSERT(ways >= 1.0);
    if (!table_.empty()) {
        const double pos =
            std::min(ways - 1.0,
                     static_cast<double>(table_.size()) - 1.0);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, table_.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return table_[lo] + frac * (table_[hi] - table_[lo]);
    }
    return mpki_floor_ +
           (mpki_one_ - mpki_floor_) *
               std::exp(-(ways - 1.0) / decay_ways_);
}

double
MissRatioCurve::floorMpki() const
{
    return mpki_floor_;
}

} // namespace perfmodel
} // namespace satori
