#include "satori/persist/snapshot.hpp"

#include "satori/common/logging.hpp"
#include "satori/persist/io.hpp"

namespace satori {
namespace persist {

namespace {

constexpr std::string_view kMagic = "SATSNP01";

} // namespace

StateWriter&
SnapshotWriter::section(const std::string& tag)
{
    for (const auto& [existing, writer] : sections_) {
        (void)writer;
        if (existing == tag)
            SATORI_PANIC("duplicate snapshot section tag: " + tag);
    }
    sections_.emplace_back(tag, StateWriter{});
    return sections_.back().second;
}

std::size_t
SnapshotWriter::payloadBytes() const
{
    std::size_t total = 0;
    for (const auto& [tag, writer] : sections_) {
        (void)tag;
        total += writer.bytes().size();
    }
    return total;
}

void
SnapshotWriter::writeTo(const std::string& path,
                        std::uint32_t fingerprint_crc,
                        std::uint64_t step) const
{
    // The header is hand-rolled (no length-prefixed strings) so the
    // first 8 bytes are the bare magic a hexdump can identify.
    StateWriter file;
    for (const char c : kMagic)
        file.putU8(static_cast<std::uint8_t>(c));
    file.putU32(kSnapshotFormatVersion);
    file.putU32(fingerprint_crc);
    file.putU64(step);
    file.putU32(static_cast<std::uint32_t>(sections_.size()));
    file.putU32(crc32(file.bytes()));
    for (const auto& [tag, writer] : sections_) {
        file.putU32(static_cast<std::uint32_t>(tag.size()));
        for (const char c : tag)
            file.putU8(static_cast<std::uint8_t>(c));
        file.putU32(static_cast<std::uint32_t>(writer.bytes().size()));
        file.putU32(crc32(writer.bytes()));
        for (const char c : writer.bytes())
            file.putU8(static_cast<std::uint8_t>(c));
    }
    // No fsync on the hot path: the WAL (flushed per record) can
    // always rebuild what a lost snapshot held; the rename still
    // guarantees readers never see a half-written file.
    atomicWriteFile(path, file.bytes(), /*sync=*/false);
}

SnapshotReader::SnapshotReader(const std::string& path,
                               std::uint32_t fingerprint_crc)
    : path_(path), data_(readFile(path))
{
    StateReader r(data_, path_);
    if (data_.size() < 32)
        SATORI_FATAL(path_ + ": too short for a snapshot header (" +
                     std::to_string(data_.size()) + " bytes)");
    if (std::string_view(data_).substr(0, 8) != kMagic)
        SATORI_FATAL(path_ + ": bad magic at offset 0 (not a SATORI "
                     "snapshot)");
    const std::uint32_t header_crc = crc32(std::string_view(data_).substr(0, 28));
    for (int i = 0; i < 8; ++i)
        (void)r.getU8();
    const std::uint32_t version = r.getU32();
    if (version != kSnapshotFormatVersion)
        SATORI_FATAL(path_ + ": snapshot format version " +
                     std::to_string(version) + " at offset 8, expected " +
                     std::to_string(kSnapshotFormatVersion) +
                     " (re-run without --resume to regenerate)");
    const std::uint32_t fp = r.getU32();
    if (fp != fingerprint_crc)
        SATORI_FATAL(path_ + ": fingerprint mismatch at offset 12 "
                     "(snapshot belongs to a different run "
                     "configuration)");
    step_ = r.getU64();
    const std::uint32_t count = r.getU32();
    const std::uint32_t stored_crc = r.getU32();
    if (stored_crc != header_crc)
        SATORI_FATAL(path_ + ": header CRC mismatch at offset 28 "
                     "(stored " + std::to_string(stored_crc) +
                     ", computed " + std::to_string(header_crc) + ")");
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::size_t record_offset = r.offset();
        const std::uint32_t tag_len = r.getU32();
        if (tag_len > 64)
            SATORI_FATAL(path_ + ": implausible section tag length " +
                         std::to_string(tag_len) + " at offset " +
                         std::to_string(record_offset));
        std::string tag;
        for (std::uint32_t k = 0; k < tag_len; ++k)
            tag.push_back(static_cast<char>(r.getU8()));
        const std::uint32_t payload_len = r.getU32();
        const std::uint32_t payload_crc = r.getU32();
        const std::size_t payload_offset = r.offset();
        if (data_.size() - payload_offset < payload_len)
            SATORI_FATAL(path_ + ": section '" + tag +
                         "' truncated at offset " +
                         std::to_string(payload_offset) + ": need " +
                         std::to_string(payload_len) + " bytes, have " +
                         std::to_string(data_.size() - payload_offset));
        const std::string_view payload =
            std::string_view(data_).substr(payload_offset, payload_len);
        const std::uint32_t computed = crc32(payload);
        if (computed != payload_crc)
            SATORI_FATAL(path_ + ": section '" + tag +
                         "' CRC mismatch at offset " +
                         std::to_string(payload_offset) + " (stored " +
                         std::to_string(payload_crc) + ", computed " +
                         std::to_string(computed) + ")");
        sections_.emplace_back(
            tag, std::make_pair(payload_offset,
                                static_cast<std::size_t>(payload_len)));
        for (std::uint32_t k = 0; k < payload_len; ++k)
            (void)r.getU8();
    }
    r.expectEnd();
}

bool
SnapshotReader::hasSection(const std::string& tag) const
{
    for (const auto& [existing, span] : sections_) {
        (void)span;
        if (existing == tag)
            return true;
    }
    return false;
}

StateReader
SnapshotReader::section(const std::string& tag) const
{
    for (const auto& [existing, span] : sections_) {
        if (existing == tag)
            return StateReader(
                std::string_view(data_).substr(span.first, span.second),
                path_ + "[" + tag + "]");
    }
    SATORI_FATAL(path_ + ": missing snapshot section '" + tag + "'");
}

} // namespace persist
} // namespace satori
