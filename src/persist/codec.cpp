#include "satori/persist/codec.hpp"

#include <array>
#include <bit>
#include <limits>

#include "satori/common/logging.hpp"

namespace satori {
namespace persist {

namespace {

/** CRC-32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320). */
std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256>&
crcTable()
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    return table;
}

} // namespace

std::uint32_t
crc32(std::string_view data, std::uint32_t seed)
{
    const auto& table = crcTable();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (const char ch : data)
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
StateWriter::putU8(std::uint8_t v)
{
    buf_.push_back(static_cast<char>(v));
}

void
StateWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void
StateWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void
StateWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
StateWriter::putBool(bool v)
{
    putU8(v ? 1 : 0);
}

void
StateWriter::putDouble(double v)
{
    putU64(std::bit_cast<std::uint64_t>(v));
}

void
StateWriter::putSize(std::size_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
StateWriter::putString(std::string_view v)
{
    putU64(v.size());
    buf_.append(v.data(), v.size());
}

void
StateWriter::putDoubleVec(const std::vector<double>& v)
{
    putU64(v.size());
    for (const double x : v)
        putDouble(x);
}

void
StateWriter::putIntVec(const std::vector<int>& v)
{
    putU64(v.size());
    for (const int x : v)
        putI64(x);
}

StateReader::StateReader(std::string_view data, std::string context)
    : data_(data), context_(std::move(context))
{
}

void
StateReader::need(std::size_t n, const char* what) const
{
    if (data_.size() - pos_ < n)
        SATORI_FATAL(context_ + ": truncated at offset " +
                     std::to_string(pos_) + ": need " + std::to_string(n) +
                     " bytes for " + what + ", have " +
                     std::to_string(data_.size() - pos_));
}

std::uint8_t
StateReader::getU8()
{
    need(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t
StateReader::getU32()
{
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
StateReader::getU64()
{
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

std::int64_t
StateReader::getI64()
{
    return static_cast<std::int64_t>(getU64());
}

bool
StateReader::getBool()
{
    const std::uint8_t v = getU8();
    if (v > 1)
        SATORI_FATAL(context_ + ": invalid bool value " +
                     std::to_string(v) + " at offset " +
                     std::to_string(pos_ - 1));
    return v == 1;
}

double
StateReader::getDouble()
{
    return std::bit_cast<double>(getU64());
}

std::size_t
StateReader::getSize()
{
    const std::uint64_t v = getU64();
    if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
        if (v > std::numeric_limits<std::size_t>::max())
            SATORI_FATAL(context_ + ": size value overflows size_t");
    }
    return static_cast<std::size_t>(v);
}

std::string
StateReader::getString()
{
    const std::size_t n = getSize();
    need(n, "string payload");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
}

std::vector<double>
StateReader::getDoubleVec()
{
    const std::size_t n = getSize();
    need(n * 8, "double vector payload");
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(getDouble());
    return v;
}

std::vector<int>
StateReader::getIntVec()
{
    const std::size_t n = getSize();
    need(n * 8, "int vector payload");
    std::vector<int> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t x = getI64();
        if (x < std::numeric_limits<int>::min() ||
            x > std::numeric_limits<int>::max())
            SATORI_FATAL(context_ + ": int value " + std::to_string(x) +
                         " out of range at offset " +
                         std::to_string(pos_ - 8));
        v.push_back(static_cast<int>(x));
    }
    return v;
}

void
StateReader::expectEnd() const
{
    if (pos_ != data_.size())
        SATORI_FATAL(context_ + ": " + std::to_string(data_.size() - pos_) +
                     " trailing bytes after offset " + std::to_string(pos_) +
                     " (format version skew?)");
}

} // namespace persist
} // namespace satori
