#include "satori/persist/state.hpp"

namespace satori {
namespace persist {

void
putConfiguration(StateWriter& w, const Configuration& config)
{
    w.putU64(config.numResources());
    for (std::size_t r = 0; r < config.numResources(); ++r)
        w.putIntVec(config.resourceRow(r));
}

Configuration
getConfiguration(StateReader& r)
{
    const std::size_t num_resources = r.getSize();
    if (num_resources == 0)
        return Configuration{};
    std::vector<std::vector<int>> alloc;
    alloc.reserve(num_resources);
    for (std::size_t i = 0; i < num_resources; ++i)
        alloc.push_back(r.getIntVec());
    return Configuration(std::move(alloc));
}

} // namespace persist
} // namespace satori
