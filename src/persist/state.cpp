#include "satori/persist/state.hpp"

#include "satori/common/rng.hpp"
#include "satori/common/stats.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace persist {

void
putConfiguration(StateWriter& w, const Configuration& config)
{
    w.putU64(config.numResources());
    for (std::size_t r = 0; r < config.numResources(); ++r)
        w.putIntVec(config.resourceRow(r));
}

Configuration
getConfiguration(StateReader& r)
{
    const std::size_t num_resources = r.getSize();
    if (num_resources == 0)
        return Configuration{};
    std::vector<std::vector<int>> alloc;
    alloc.reserve(num_resources);
    for (std::size_t i = 0; i < num_resources; ++i)
        alloc.push_back(r.getIntVec());
    return Configuration(std::move(alloc));
}

} // namespace persist

// The common-layer value types (Rng, OnlineStats, TimeSeries) declare
// saveState/restoreState against forward-declared codec types; the
// definitions live here so common never includes persist headers and
// the architecture DAG stays acyclic (persist -> common only).

void
Rng::saveState(persist::StateWriter& w) const
{
    for (const std::uint64_t word : state_)
        w.putU64(word);
    w.putBool(hasSpare_);
    w.putDouble(spare_);
}

void
Rng::restoreState(persist::StateReader& r)
{
    for (auto& word : state_)
        word = r.getU64();
    hasSpare_ = r.getBool();
    spare_ = r.getDouble();
}

void
OnlineStats::saveState(persist::StateWriter& w) const
{
    w.putSize(n_);
    w.putDouble(mean_);
    w.putDouble(m2_);
    // min_/max_ are uninitialized until the first add(); write zeros
    // so an empty accumulator still has a fixed encoding.
    w.putDouble(n_ > 0 ? min_ : 0.0);
    w.putDouble(n_ > 0 ? max_ : 0.0);
}

void
OnlineStats::restoreState(persist::StateReader& r)
{
    n_ = r.getSize();
    mean_ = r.getDouble();
    m2_ = r.getDouble();
    const double mn = r.getDouble();
    const double mx = r.getDouble();
    if (n_ > 0) {
        min_ = mn;
        max_ = mx;
    }
}

void
TimeSeries::saveState(persist::StateWriter& w) const
{
    w.putDoubleVec(times_);
    w.putDoubleVec(values_);
}

void
TimeSeries::restoreState(persist::StateReader& r)
{
    times_ = r.getDoubleVec();
    values_ = r.getDoubleVec();
}

} // namespace satori
