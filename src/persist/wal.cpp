#include "satori/persist/wal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "satori/common/logging.hpp"
#include "satori/persist/io.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace persist {

namespace {

constexpr std::string_view kMagic = "SATWAL01";
constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kFrameHeaderBytes = 8; ///< u32 len + u32 crc.

[[nodiscard]] std::string
errnoText()
{
    return std::strerror(errno);
}

[[nodiscard]] std::string
encodeHeader(std::uint32_t fingerprint_crc)
{
    StateWriter w;
    for (const char c : kMagic)
        w.putU8(static_cast<std::uint8_t>(c));
    w.putU32(kWalFormatVersion);
    w.putU32(fingerprint_crc);
    w.putU32(crc32(w.bytes()));
    return w.takeBytes();
}

[[nodiscard]] std::string
encodeFrame(const IntervalRecord& record)
{
    StateWriter payload;
    record.encode(payload);
    StateWriter frame;
    frame.putU32(static_cast<std::uint32_t>(payload.bytes().size()));
    frame.putU32(crc32(payload.bytes()));
    std::string out = frame.takeBytes();
    out += payload.bytes();
    return out;
}

} // namespace

void
IntervalRecord::encode(StateWriter& w) const
{
    w.putU64(interval);
    w.putDouble(time);
    putConfiguration(w, config);
    w.putDoubleVec(ips);
    w.putDoubleVec(speedups);
    w.putDouble(throughput);
    w.putDouble(fairness);
    w.putString(faults);
    putConfiguration(w, decision);
}

IntervalRecord
IntervalRecord::decode(StateReader& r)
{
    IntervalRecord rec;
    rec.interval = r.getU64();
    rec.time = r.getDouble();
    rec.config = getConfiguration(r);
    rec.ips = r.getDoubleVec();
    rec.speedups = r.getDoubleVec();
    rec.throughput = r.getDouble();
    rec.fairness = r.getDouble();
    rec.faults = r.getString();
    rec.decision = getConfiguration(r);
    return rec;
}

WalReadResult
readWal(const std::string& path, std::uint32_t fingerprint_crc)
{
    const std::string data = readFile(path);
    WalReadResult result;
    if (data.size() < kHeaderBytes)
        SATORI_FATAL(path + ": too short for a WAL header (" +
                     std::to_string(data.size()) + " bytes)");
    if (std::string_view(data).substr(0, 8) != kMagic)
        SATORI_FATAL(path + ": bad magic at offset 0 (not a SATORI WAL)");
    StateReader header(std::string_view(data).substr(0, kHeaderBytes),
                       path);
    for (int i = 0; i < 8; ++i)
        (void)header.getU8();
    const std::uint32_t version = header.getU32();
    if (version != kWalFormatVersion)
        SATORI_FATAL(path + ": WAL format version " +
                     std::to_string(version) + " at offset 8, expected " +
                     std::to_string(kWalFormatVersion) +
                     " (re-run without --resume to regenerate)");
    const std::uint32_t fp = header.getU32();
    if (fp != fingerprint_crc)
        SATORI_FATAL(path + ": fingerprint mismatch at offset 12 (WAL "
                     "belongs to a different run configuration)");
    const std::uint32_t stored_crc = header.getU32();
    const std::uint32_t computed_crc =
        crc32(std::string_view(data).substr(0, kHeaderBytes - 4));
    if (stored_crc != computed_crc)
        SATORI_FATAL(path + ": header CRC mismatch at offset 16 (stored " +
                     std::to_string(stored_crc) + ", computed " +
                     std::to_string(computed_crc) + ")");

    std::size_t pos = kHeaderBytes;
    while (pos < data.size()) {
        if (data.size() - pos < kFrameHeaderBytes) {
            result.torn_tail = true; // frame header cut off mid-write
            break;
        }
        StateReader frame(
            std::string_view(data).substr(pos, kFrameHeaderBytes), path);
        const std::uint32_t len = frame.getU32();
        const std::uint32_t payload_crc = frame.getU32();
        if (data.size() - pos - kFrameHeaderBytes < len) {
            result.torn_tail = true; // payload cut off mid-write
            break;
        }
        const std::string_view payload = std::string_view(data).substr(
            pos + kFrameHeaderBytes, len);
        const std::uint32_t computed = crc32(payload);
        if (computed != payload_crc)
            SATORI_FATAL(path + ": record " +
                         std::to_string(result.records.size()) +
                         " CRC mismatch at offset " +
                         std::to_string(pos + kFrameHeaderBytes) +
                         " (stored " + std::to_string(payload_crc) +
                         ", computed " + std::to_string(computed) +
                         "): WAL is corrupt, not merely torn");
        StateReader r(payload,
                      path + "[record " +
                          std::to_string(result.records.size()) + "]");
        result.records.push_back(IntervalRecord::decode(r));
        r.expectEnd();
        pos += kFrameHeaderBytes + len;
    }
    result.valid_bytes = pos;
    return result;
}

WalWriter::WalWriter(std::FILE* file, std::string path,
                     std::uint64_t bytes)
    : file_(file), path_(std::move(path)), bytes_(bytes)
{
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)),
      bytes_(other.bytes_)
{
    other.file_ = nullptr;
}

WalWriter::~WalWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

WalWriter
WalWriter::create(const std::string& path, std::uint32_t fingerprint_crc)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        SATORI_FATAL("cannot create WAL: " + path + ": " + errnoText());
    const std::string header = encodeHeader(fingerprint_crc);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
        std::fclose(f);
        SATORI_FATAL("cannot write WAL header: " + path + ": " +
                     errnoText());
    }
    return WalWriter(f, path, header.size());
}

WalWriter
WalWriter::resume(const std::string& path, std::uint64_t valid_bytes)
{
    std::error_code ec;
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec)
        SATORI_FATAL("cannot truncate WAL torn tail: " + path + ": " +
                     ec.message());
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr)
        SATORI_FATAL("cannot reopen WAL: " + path + ": " + errnoText());
    return WalWriter(f, path, valid_bytes);
}

void
WalWriter::append(const IntervalRecord& record)
{
    const std::string frame = encodeFrame(record);
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
            frame.size() ||
        std::fflush(file_) != 0)
        SATORI_FATAL("WAL append failed: " + path_ + ": " + errnoText());
    bytes_ += frame.size();
}

void
WalWriter::appendTorn(const IntervalRecord& record)
{
    const std::string frame = encodeFrame(record);
    const std::size_t cut = frame.size() / 2;
    if (std::fwrite(frame.data(), 1, cut, file_) != cut ||
        std::fflush(file_) != 0)
        SATORI_FATAL("WAL torn append failed: " + path_ + ": " +
                     errnoText());
    bytes_ += cut;
}

} // namespace persist
} // namespace satori
