#include "satori/persist/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/io.hpp"

namespace satori {
namespace persist {

namespace {

constexpr std::string_view kManifestMagic = "SATMAN01";
constexpr std::uint32_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kWalName = "wal.bin";

[[nodiscard]] std::string
encodeManifest(const std::string& fingerprint)
{
    StateWriter w;
    for (const char c : kManifestMagic)
        w.putU8(static_cast<std::uint8_t>(c));
    w.putU32(kManifestVersion);
    w.putString(fingerprint);
    w.putU32(crc32(w.bytes()));
    return w.takeBytes();
}

[[nodiscard]] std::string
decodeManifest(const std::string& path)
{
    const std::string data = readFile(path);
    if (data.size() < 16 ||
        std::string_view(data).substr(0, 8) != kManifestMagic)
        SATORI_FATAL(path + ": bad magic at offset 0 (not a SATORI "
                     "checkpoint manifest)");
    const std::uint32_t stored_crc =
        crc32(std::string_view(data).substr(0, data.size() - 4));
    StateReader r(std::string_view(data).substr(8), path);
    const std::uint32_t version = r.getU32();
    if (version != kManifestVersion)
        SATORI_FATAL(path + ": manifest version " +
                     std::to_string(version) + " at offset 8, expected " +
                     std::to_string(kManifestVersion));
    std::string fingerprint = r.getString();
    const std::uint32_t crc = r.getU32();
    if (crc != stored_crc)
        SATORI_FATAL(path + ": manifest CRC mismatch at offset " +
                     std::to_string(data.size() - 4));
    r.expectEnd();
    return fingerprint;
}

} // namespace

Checkpointer::Checkpointer(CheckpointOptions options,
                           std::string fingerprint)
    : options_(std::move(options)), fingerprint_(std::move(fingerprint)),
      fingerprint_crc_(crc32(fingerprint_))
{
    SATORI_ASSERT(!options_.dir.empty());
}

std::string
Checkpointer::snapshotPath(std::uint64_t step) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "snap.%010llu.bin",
                  static_cast<unsigned long long>(step));
    return options_.dir + "/" + name;
}

void
Checkpointer::prepare()
{
    SATORI_ASSERT(!prepared_);
    if (options_.resume)
        prepareResume();
    else
        prepareFresh();
    prepared_ = true;
}

void
Checkpointer::prepareFresh()
{
    validateOutputDir("--checkpoint-dir", options_.dir);
    // A fresh run owns the directory: drop any previous run's state
    // so a later --resume cannot mix two histories.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name == kManifestName || name == kWalName ||
            name.rfind("snap.", 0) == 0)
            std::filesystem::remove(entry.path(), ec);
    }
    atomicWriteFile(options_.dir + "/" + kManifestName,
                    encodeManifest(fingerprint_));
    wal_ = std::make_unique<WalWriter>(
        WalWriter::create(options_.dir + "/" + kWalName,
                          fingerprint_crc_));
}

void
Checkpointer::prepareResume()
{
    SATORI_OBS_SPAN("persist.recover");
    const std::string manifest_path = options_.dir + "/" + kManifestName;
    if (!pathExists(manifest_path))
        SATORI_FATAL("--resume: nothing to resume: no MANIFEST in '" +
                     options_.dir + "'");
    const std::string stored = decodeManifest(manifest_path);
    if (stored != fingerprint_)
        SATORI_FATAL(manifest_path + ": fingerprint mismatch:\n"
                     "  checkpoint: " + stored + "\n"
                     "  this run:   " + fingerprint_ + "\n"
                     "resume must use the same mix/policy/seed/platform/"
                     "fault arguments as the original run");

    const std::string wal_path = options_.dir + "/" + kWalName;
    std::uint64_t valid_bytes = 0;
    if (pathExists(wal_path)) {
        WalReadResult wal = readWal(wal_path, fingerprint_crc_);
        wal_records_ = std::move(wal.records);
        valid_bytes = wal.valid_bytes;
        if (wal.torn_tail)
            std::fprintf(stderr,
                         "satori-persist: %s: torn tail after %llu valid "
                         "bytes (%zu records) - expected after a crash "
                         "mid-append; truncating\n",
                         wal_path.c_str(),
                         static_cast<unsigned long long>(valid_bytes),
                         wal_records_.size());
        wal_ = std::make_unique<WalWriter>(
            WalWriter::resume(wal_path, valid_bytes));
    } else {
        // Killed between MANIFEST install and WAL creation: nothing
        // was logged, so the run simply starts over from interval 0.
        wal_ = std::make_unique<WalWriter>(
            WalWriter::create(wal_path, fingerprint_crc_));
    }

    // Newest snapshot wins; an invalid newest snapshot is a hard
    // error (corruption is never silently skipped).
    std::uint64_t best_step = 0;
    bool found = false;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("snap.", 0) != 0 || name.size() < 10 ||
            name.substr(name.size() - 4) != ".bin")
            continue;
        const std::string digits =
            name.substr(5, name.size() - 5 - 4);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        const std::uint64_t step =
            std::strtoull(digits.c_str(), nullptr, 10);
        if (!found || step > best_step) {
            best_step = step;
            found = true;
        }
    }
    if (found) {
        snapshot_ = std::make_unique<SnapshotReader>(
            snapshotPath(best_step), fingerprint_crc_);
        if (snapshot_->step() != best_step)
            SATORI_FATAL(snapshot_->path() + ": header step " +
                         std::to_string(snapshot_->step()) +
                         " disagrees with the file name");
        if (snapshot_->step() > wal_records_.size())
            SATORI_FATAL(snapshot_->path() + ": snapshot step " +
                         std::to_string(snapshot_->step()) +
                         " exceeds the " +
                         std::to_string(wal_records_.size()) +
                         " WAL records - WAL and snapshots are "
                         "inconsistent");
        resume_step_ = static_cast<std::size_t>(snapshot_->step());
    }
}

const SnapshotReader&
Checkpointer::snapshot() const
{
    SATORI_ASSERT(snapshot_ != nullptr);
    return *snapshot_;
}

void
Checkpointer::pruneSnapshots() const
{
    std::vector<std::uint64_t> steps;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("snap.", 0) != 0 ||
            name.size() < 10 || name.substr(name.size() - 4) != ".bin")
            continue;
        const std::string digits = name.substr(5, name.size() - 5 - 4);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        steps.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    if (steps.size() <= options_.keep_snapshots)
        return;
    std::sort(steps.begin(), steps.end());
    const std::size_t drop = steps.size() - options_.keep_snapshots;
    for (std::size_t i = 0; i < drop; ++i)
        std::filesystem::remove(snapshotPath(steps[i]), ec);
}

void
Checkpointer::onIntervalEnd(
    std::size_t step, const IntervalRecord& record,
    const std::function<void(SnapshotWriter&)>& save_state)
{
    SATORI_ASSERT(prepared_);
    const bool new_ground = step >= wal_records_.size();
    if (new_ground) {
        SATORI_OBS_SPAN("persist.wal.append");
        if (step == options_.kill_at && options_.kill_torn) {
            wal_->appendTorn(record);
            std::_Exit(137); // simulated SIGKILL mid-append
        }
        wal_->append(record);
        SATORI_OBS_METRIC(persist_wal_records.inc());
    }
    if (step == options_.kill_at)
        std::_Exit(137); // simulated SIGKILL after the append
    const std::size_t completed = step + 1;
    if (new_ground && options_.every > 0 &&
        completed % options_.every == 0) {
        SATORI_OBS_SPAN("persist.snapshot");
        SnapshotWriter snap;
        save_state(snap);
        snap.writeTo(snapshotPath(completed), fingerprint_crc_,
                     completed);
        SATORI_OBS_METRIC(persist_snapshots.inc());
        SATORI_OBS_METRIC(persist_snapshot_bytes.inc(
            static_cast<std::uint64_t>(snap.payloadBytes())));
        pruneSnapshots();
    }
}

} // namespace persist
} // namespace satori
