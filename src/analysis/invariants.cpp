#include "satori/analysis/invariants.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "satori/common/logging.hpp"
#include "satori/linalg/cholesky.hpp"

namespace satori {
namespace analysis {

const char*
checkIdName(CheckId id)
{
    switch (id) {
      case CheckId::AllocationShape:
        return "allocation-shape";
      case CheckId::AllocationSum:
        return "allocation-sum";
      case CheckId::AllocationMinUnit:
        return "allocation-min-unit";
      case CheckId::ObjectiveFinite:
        return "objective-finite";
      case CheckId::ObjectiveGoalRange:
        return "objective-goal-range";
      case CheckId::ObjectiveWeightNorm:
        return "objective-weight-norm";
      case CheckId::BoPosteriorVariance:
        return "bo-posterior-variance";
      case CheckId::BoCholeskyJitter:
        return "bo-cholesky-jitter";
      case CheckId::BoKernelNotSpd:
        return "bo-kernel-not-spd";
      case CheckId::BoTrainingSet:
        return "bo-training-set";
      case CheckId::MonitorSizeMismatch:
        return "monitor-size-mismatch";
      case CheckId::MonitorIpsSane:
        return "monitor-ips-sane";
      case CheckId::MonitorBaselinePositive:
        return "monitor-baseline-positive";
      case CheckId::MonitorTimeOrder:
        return "monitor-time-order";
    }
    SATORI_PANIC("unknown CheckId");
}

namespace {

std::string
site(const char* file, int line)
{
    return std::string(file) + ":" + std::to_string(line);
}

std::string
num(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // namespace

void
Auditor::recordViolation(CheckId id, const char* file, int line,
                         double magnitude, const std::string& detail)
{
    common::MutexLock guard(mutex_);
    ViolationStats& s = stats_[static_cast<std::size_t>(id)];
    ++violation_count_;
    if (s.count == 0) {
        s.first_site = site(file, line);
        s.first_detail = detail;
    }
    if (s.count == 0 || std::abs(magnitude) > std::abs(s.worst_magnitude)) {
        s.worst_magnitude = magnitude;
        s.worst_site = site(file, line);
        s.worst_detail = detail;
    }
    ++s.count;
}

void
Auditor::checkAllocation(const PlatformSpec& platform, std::size_t num_jobs,
                         const Configuration& config, const char* file,
                         int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    if (config.numResources() != platform.numResources() ||
        config.numJobs() != num_jobs) {
        recordViolation(
            CheckId::AllocationShape, file, line,
            static_cast<double>(config.numResources()),
            "configuration is " + std::to_string(config.numResources()) +
                "x" + std::to_string(config.numJobs()) + ", platform wants " +
                std::to_string(platform.numResources()) + "x" +
                std::to_string(num_jobs));
        return; // unit checks would index out of bounds
    }
    for (std::size_t r = 0; r < platform.numResources(); ++r) {
        const int capacity = platform.units(r);
        const int assigned = config.totalUnits(r);
        if (assigned != capacity) {
            recordViolation(
                CheckId::AllocationSum, file, line,
                static_cast<double>(assigned - capacity),
                resourceKindName(platform.resource(r).kind) + ": assigned " +
                    std::to_string(assigned) + " of " +
                    std::to_string(capacity) + " units in " +
                    config.toString());
        }
        for (std::size_t j = 0; j < num_jobs; ++j) {
            const int units = config.units(r, j);
            if (units < 1) {
                recordViolation(
                    CheckId::AllocationMinUnit, file, line,
                    static_cast<double>(1 - units),
                    "job " + std::to_string(j) + " holds " +
                        std::to_string(units) + " units of " +
                        resourceKindName(platform.resource(r).kind));
            }
        }
    }
}

void
Auditor::checkObjective(const std::vector<double>& goals,
                        const std::vector<double>& weights,
                        bool jain_fairness, const char* file, int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    constexpr double kEps = 1e-9;
    if (goals.size() != weights.size()) {
        recordViolation(CheckId::ObjectiveWeightNorm, file, line,
                        static_cast<double>(goals.size()) -
                            static_cast<double>(weights.size()),
                        std::to_string(goals.size()) + " goals vs " +
                            std::to_string(weights.size()) + " weights");
        return;
    }
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < goals.size(); ++i) {
        const double g = goals[i];
        const double w = weights[i];
        if (!std::isfinite(g) || !std::isfinite(w)) {
            recordViolation(CheckId::ObjectiveFinite, file, line, 0.0,
                            "goal " + std::to_string(i) + ": value " +
                                num(g) + ", weight " + num(w));
            continue;
        }
        if (g < -kEps || g > 1.0 + kEps) {
            recordViolation(CheckId::ObjectiveGoalRange, file, line,
                            g < 0.0 ? g : g - 1.0,
                            "goal " + std::to_string(i) + " = " + num(g) +
                                " outside [0, 1]");
        } else if (jain_fairness && i == 1 && g <= 0.0) {
            recordViolation(CheckId::ObjectiveGoalRange, file, line, g,
                            "Jain fairness index = " + num(g) +
                                " outside (0, 1]");
        }
        if (w < -kEps || w > 1.0 + kEps) {
            recordViolation(CheckId::ObjectiveWeightNorm, file, line,
                            w < 0.0 ? w : w - 1.0,
                            "weight " + std::to_string(i) + " = " + num(w) +
                                " outside [0, 1]");
        }
        weight_sum += w;
    }
    if (std::isfinite(weight_sum) && std::abs(weight_sum - 1.0) > 1e-6) {
        recordViolation(CheckId::ObjectiveWeightNorm, file, line,
                        weight_sum - 1.0,
                        "weights sum to " + num(weight_sum) + ", not 1");
    }
}

void
Auditor::checkPosteriorVariance(double variance, double scale,
                                const char* file, int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    const double eps = 1e-6 * std::max(std::abs(scale), 1.0);
    if (!std::isfinite(variance) || variance < -eps) {
        recordViolation(CheckId::BoPosteriorVariance, file, line, variance,
                        "posterior variance " + num(variance) +
                            " below -" + num(eps) +
                            " (prior scale " + num(scale) + ")");
    }
}

void
Auditor::checkCholesky(double jitter, double condition, std::size_t n,
                       const char* file, int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    constexpr double kJitterTolerance = 1e-6;
    if (jitter > kJitterTolerance) {
        recordViolation(CheckId::BoCholeskyJitter, file, line, jitter,
                        "factorizing a " + std::to_string(n) + "x" +
                            std::to_string(n) + " kernel matrix needed " +
                            num(jitter) + " diagonal jitter (condition ~" +
                            num(condition) + ")");
    }
}

void
Auditor::checkKernelMatrix(const linalg::Matrix& k, const char* file,
                           int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    const std::size_t n = k.rows();
    if (n != k.cols()) {
        recordViolation(CheckId::BoKernelNotSpd, file, line,
                        static_cast<double>(n),
                        "kernel matrix is " + std::to_string(n) + "x" +
                            std::to_string(k.cols()) + ", not square");
        return;
    }
    // Symmetry, with diagonal range and Gershgorin eigenvalue bounds
    // as the condition diagnostics reported on failure.
    double max_asym = 0.0;
    double min_diag = std::numeric_limits<double>::infinity();
    double max_diag = -std::numeric_limits<double>::infinity();
    double gershgorin_lo = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        min_diag = std::min(min_diag, k(i, i));
        max_diag = std::max(max_diag, k(i, i));
        double off = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i)
                off += std::abs(k(i, j));
            max_asym = std::max(max_asym, std::abs(k(i, j) - k(j, i)));
        }
        gershgorin_lo = std::min(gershgorin_lo, k(i, i) - off);
    }
    const double scale = std::max(std::abs(max_diag), 1.0);
    if (max_asym > 1e-9 * scale) {
        recordViolation(CheckId::BoKernelNotSpd, file, line, max_asym,
                        "kernel matrix asymmetric: max |K_ij - K_ji| = " +
                            num(max_asym));
        return;
    }
    try {
        const linalg::Cholesky chol(k);
        if (chol.jitter() > 1e-6) {
            recordViolation(
                CheckId::BoCholeskyJitter, file, line, chol.jitter(),
                "kernel matrix nearly singular: factorization took " +
                    num(chol.jitter()) + " jitter (diag in [" +
                    num(min_diag) + ", " + num(max_diag) +
                    "], Gershgorin lower bound " + num(gershgorin_lo) + ")");
        }
    } catch (const PanicError&) {
        recordViolation(
            CheckId::BoKernelNotSpd, file, line, gershgorin_lo,
            "kernel matrix not SPD: factorization failed under maximum "
            "jitter (diag in [" +
                num(min_diag) + ", " + num(max_diag) +
                "], Gershgorin lower eigenvalue bound " +
                num(gershgorin_lo) + ", condition unbounded)");
    }
}

void
Auditor::checkTrainingSet(const std::vector<RealVec>& inputs,
                          const std::vector<double>& targets,
                          const char* file, int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    if (inputs.size() != targets.size()) {
        recordViolation(CheckId::BoTrainingSet, file, line,
                        static_cast<double>(inputs.size()) -
                            static_cast<double>(targets.size()),
                        std::to_string(inputs.size()) + " inputs vs " +
                            std::to_string(targets.size()) + " targets");
        return;
    }
    const std::size_t dim = inputs.empty() ? 0 : inputs.front().size();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].size() != dim) {
            recordViolation(CheckId::BoTrainingSet, file, line,
                            static_cast<double>(inputs[i].size()) -
                                static_cast<double>(dim),
                            "input " + std::to_string(i) + " has dimension " +
                                std::to_string(inputs[i].size()) +
                                ", expected " + std::to_string(dim));
        }
        if (!std::isfinite(targets[i])) {
            recordViolation(CheckId::BoTrainingSet, file, line, 0.0,
                            "target " + std::to_string(i) +
                                " is non-finite (" + num(targets[i]) + ")");
        }
    }
}

void
Auditor::checkMeasuredIps(const std::vector<Ips>& ips, const char* file,
                          int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    for (std::size_t j = 0; j < ips.size(); ++j) {
        if (!std::isfinite(ips[j]) || ips[j] <= 0.0) {
            recordViolation(CheckId::MonitorIpsSane, file, line, ips[j],
                            "job " + std::to_string(j) + " measured IPS " +
                                num(ips[j]));
        }
    }
}

void
Auditor::checkObservation(const std::vector<Ips>& ips,
                          const std::vector<Ips>& isolation_ips,
                          std::size_t expected_jobs, Seconds time,
                          Seconds prev_time, const char* file, int line)
{
    {
        common::MutexLock guard(mutex_);
        ++checks_run_;
    }
    if (ips.size() != expected_jobs || isolation_ips.size() != expected_jobs) {
        recordViolation(CheckId::MonitorSizeMismatch, file, line,
                        static_cast<double>(ips.size()) -
                            static_cast<double>(expected_jobs),
                        std::to_string(ips.size()) + " IPS / " +
                            std::to_string(isolation_ips.size()) +
                            " baseline entries for " +
                            std::to_string(expected_jobs) + " jobs");
        return;
    }
    for (std::size_t j = 0; j < expected_jobs; ++j) {
        if (!std::isfinite(isolation_ips[j]) || isolation_ips[j] <= 0.0) {
            recordViolation(CheckId::MonitorBaselinePositive, file, line,
                            isolation_ips[j],
                            "job " + std::to_string(j) +
                                " isolation baseline " +
                                num(isolation_ips[j]));
        }
    }
    if (!(time > prev_time)) {
        recordViolation(CheckId::MonitorTimeOrder, file, line,
                        time - prev_time,
                        "observation time " + num(time) +
                            " did not advance past " + num(prev_time));
    }
}

std::size_t
Auditor::checksRun() const
{
    common::MutexLock guard(mutex_);
    return checks_run_;
}

std::size_t
Auditor::violationCount() const
{
    common::MutexLock guard(mutex_);
    return violation_count_;
}

ViolationStats
Auditor::violations(CheckId id) const
{
    common::MutexLock guard(mutex_);
    return stats_[static_cast<std::size_t>(id)];
}

std::string
Auditor::renderReport() const
{
    common::MutexLock guard(mutex_);
    std::ostringstream out;
    std::size_t violated_ids = 0;
    for (const auto& s : stats_)
        if (s.count > 0)
            ++violated_ids;
    out << "satori-audit: " << checks_run_ << " checks, " << violated_ids
        << " violated check ids, " << violation_count_
        << " total violations\n";
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        const ViolationStats& s = stats_[i];
        if (s.count == 0)
            continue;
        out << "  [" << checkIdName(static_cast<CheckId>(i))
            << "] count=" << s.count << "\n"
            << "      first: " << s.first_site << " " << s.first_detail
            << "\n"
            << "      worst: |magnitude|=" << std::abs(s.worst_magnitude)
            << " at " << s.worst_site << " " << s.worst_detail << "\n";
    }
    return out.str();
}

void
Auditor::clear()
{
    common::MutexLock guard(mutex_);
    checks_run_ = 0;
    violation_count_ = 0;
    stats_ = {};
}

namespace {

#if defined(SATORI_AUDIT_ENABLED) && SATORI_AUDIT_ENABLED
void
printGlobalSummary()
{
    const std::string report = globalAuditor().renderReport();
    std::fputs(report.c_str(), stderr);
}
#endif

} // namespace

Auditor&
globalAuditor()
{
    // Meyers singleton; the Auditor serializes access internally.
    // satori-analyzer: allow(conc-global-mutable)
    static Auditor auditor;
#if defined(SATORI_AUDIT_ENABLED) && SATORI_AUDIT_ENABLED
    // Registered after the static's construction, so the handler runs
    // before its destruction; prints the end-of-run audit summary.
    static const bool registered = [] {
        std::atexit(printGlobalSummary);
        return true;
    }();
    (void)registered;
#endif
    return auditor;
}

} // namespace analysis
} // namespace satori
