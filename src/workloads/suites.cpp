#include "satori/workloads/suites.hpp"

#include "satori/common/logging.hpp"

namespace satori {
namespace workloads {
namespace {

/// Shorthand: phases are (label, ipc, par_frac, mpki1, mpki_floor,
/// decay, penalty, bytes/miss, length).
/// Phase-length multiplier: the per-phase instruction counts below are
/// specified at a readable scale; scaling them up gives phase residence
/// times of roughly 10-30 s under co-location, matching the cadence at
/// which the paper's Fig. 1 optimal configuration drifts.
constexpr double kPhaseLengthScale = 4.0;

WorkloadProfile
profile(std::string name, std::string suite, std::string description,
        double cache_pressure,
        std::vector<perfmodel::PhaseParams> phases,
        Instructions fixed_work = 3e11)
{
    WorkloadProfile w;
    w.name = std::move(name);
    w.suite = std::move(suite);
    w.description = std::move(description);
    w.phases = std::move(phases);
    for (auto& p : w.phases) {
        p.length *= kPhaseLengthScale;
        p.cache_pressure = cache_pressure;
    }
    w.fixed_work = fixed_work;
    return w;
}

} // namespace

std::vector<WorkloadProfile>
parsecSuite()
{
    std::vector<WorkloadProfile> suite;

    // Streaming option pricer: high IPC, embarrassingly parallel, a
    // high MPKI floor that cache ways cannot remove -> it contends for
    // memory bandwidth no matter the LLC partition (Sec. V: job mix 3).
    suite.push_back(profile(
        "blackscholes", "parsec",
        "Option pricing with Black-Scholes PDE (bandwidth-heavy stream)",
        0.05,
        {
            makePhase("pde-sweep", 1.8, 0.95, 12.0, 8.0, 2.0, 110.0,
                      96.0, 1.6e10),
            makePhase("reprice", 2.0, 0.93, 8.0, 5.0, 2.0, 110.0, 92.0,
                      1.0e10),
        }));

    // Simulated annealing over a chip netlist: pointer chasing with a
    // large working set; strongly LLC-way sensitive, weakly parallel.
    suite.push_back(profile(
        "canneal", "parsec",
        "Simulated cache-aware annealing to optimize chip design",
        0.45,
        {
            makeCliffPhase("anneal-hot", 0.8, 0.60, 30.0, 2.0, 6.0,
                      0.9, 170.0, 72.0, 8e9),
            makeCliffPhase("anneal-cool", 1.0, 0.62, 18.0, 2.0, 4.0,
                      0.9, 160.0, 72.0, 1.2e10),
            makeCliffPhase("swap-burst", 0.7, 0.65, 34.0, 3.0, 7.0,
                      1.0, 180.0, 76.0, 6e9),
        }));

    // Fluid dynamics: the paper's example of a strongly core-count-
    // sensitive workload (Sec. V: replacing freqmine with fluidanimate
    // lowers the gain because it wants cores above all).
    suite.push_back(profile(
        "fluidanimate", "parsec",
        "Fluid dynamics for animation with SPH (core-sensitive)",
        0.10,
        {
            makePhase("advect", 1.4, 0.98, 8.0, 3.0, 3.0, 130.0, 80.0,
                      1.4e10),
            makePhase("collide", 1.3, 0.97, 10.0, 4.0, 3.0, 130.0, 80.0,
                      9e9),
        }));

    // Frequent itemset mining: tree walks with good locality once the
    // hot prefix fits; medium everything.
    suite.push_back(profile(
        "freqmine", "parsec", "Frequent itemset mining",
        0.30,
        {
            makeCliffPhase("build-fptree", 1.1, 0.80, 18.0, 4.0, 4.0,
                      0.8, 150.0, 78.0, 7e9),
            makeCliffPhase("mine", 1.3, 0.88, 12.0, 3.0, 3.0,
                      0.8, 140.0, 76.0, 1.5e10),
        }));

    // Online clustering of a stream: both cache-way hungry and
    // bandwidth hungry (it re-reads the candidate set continuously).
    suite.push_back(profile(
        "streamcluster", "parsec",
        "Online clustering of an input stream (cache+bandwidth hungry)",
        0.35,
        {
            makeCliffPhase("assign", 1.0, 0.92, 25.0, 10.0, 5.0,
                      0.8, 150.0, 100.0, 1.1e10),
            makeCliffPhase("recenter", 1.1, 0.90, 20.0, 8.0, 4.0,
                      0.8, 150.0, 100.0, 8e9),
        }));

    // Monte-Carlo swaption pricing: tiny working set, compute bound.
    suite.push_back(profile(
        "swaptions", "parsec",
        "Pricing of a portfolio of swaptions (compute-bound)",
        0.05,
        {
            makePhase("simulate", 2.0, 0.96, 2.0, 0.5, 2.0, 100.0, 70.0,
                      1.8e10),
            makePhase("reduce", 1.8, 0.90, 3.0, 0.8, 2.0, 100.0, 70.0,
                      6e9),
        }));

    // Image processing pipeline: balanced sensitivities.
    suite.push_back(profile(
        "vips", "parsec", "Image processing pipeline (balanced)",
        0.25,
        {
            makePhase("decode", 1.5, 0.85, 12.0, 3.5, 3.0, 130.0, 84.0,
                      8e9),
            makePhase("convolve", 1.6, 0.90, 9.0, 3.0, 3.0, 125.0, 84.0,
                      1.2e10),
            makePhase("encode", 1.4, 0.82, 11.0, 4.0, 3.0, 130.0, 84.0,
                      7e9),
        }));

    return suite;
}

std::vector<WorkloadProfile>
cloudSuite()
{
    std::vector<WorkloadProfile> suite;

    suite.push_back(profile(
        "data_analytics", "cloudsuite",
        "Naive Bayes classifier on Wikipedia entries",
        0.25,
        {
            makePhase("tokenize", 1.1, 0.85, 18.0, 6.0, 4.0, 145.0, 90.0,
                      1.0e10),
            makePhase("classify", 1.2, 0.88, 14.0, 5.0, 4.0, 140.0, 88.0,
                      1.3e10),
        }));

    suite.push_back(profile(
        "graph_analytics", "cloudsuite", "Page ranking on Twitter data",
        0.45,
        {
            makeCliffPhase("gather", 0.6, 0.75, 35.0, 8.0, 7.0,
                      1.2, 185.0, 82.0, 9e9),
            makeCliffPhase("apply", 0.7, 0.80, 28.0, 7.0, 6.0,
                      1.1, 180.0, 80.0, 7e9),
            makeCliffPhase("scatter", 0.6, 0.72, 32.0, 9.0, 7.0,
                      1.2, 185.0, 84.0, 8e9),
        }));

    suite.push_back(profile(
        "in_memory_analytics", "cloudsuite",
        "In-memory filtering of movie ratings",
        0.30,
        {
            makeCliffPhase("scan", 1.2, 0.90, 20.0, 10.0, 4.0,
                      0.9, 140.0, 100.0, 1.2e10),
            makeCliffPhase("aggregate", 1.3, 0.87, 16.0, 8.0, 4.0,
                      0.9, 140.0, 96.0, 9e9),
        }));

    suite.push_back(profile(
        "media_streaming", "cloudsuite", "Nginx server to stream videos",
        0.15,
        {
            makePhase("serve", 1.6, 0.50, 14.0, 9.0, 2.0, 120.0, 110.0,
                      1.4e10),
            makePhase("transcode", 1.5, 0.60, 12.0, 8.0, 2.0, 120.0,
                      105.0, 8e9),
        }));

    suite.push_back(profile(
        "web_search", "cloudsuite", "Web search algorithm implementation",
        0.35,
        {
            makeCliffPhase("index-probe", 1.3, 0.92, 22.0, 3.0, 5.0,
                      0.9, 155.0, 80.0, 1.0e10),
            makeCliffPhase("rank", 1.4, 0.90, 17.0, 2.5, 5.0,
                      0.9, 150.0, 78.0, 1.1e10),
        }));

    return suite;
}

std::vector<WorkloadProfile>
ecpSuite()
{
    std::vector<WorkloadProfile> suite;

    // High IPC and FLOP rate with a large LLC appetite (the paper's
    // explanation for the difficult miniFE+SWFFT mix).
    suite.push_back(profile(
        "minife", "ecp", "Unstructured finite element solver",
        0.35,
        {
            makeCliffPhase("assemble", 2.2, 0.93, 25.0, 4.0, 5.0,
                      0.9, 150.0, 86.0, 1.0e10),
            makeCliffPhase("cg-solve", 2.0, 0.94, 22.0, 4.0, 5.0,
                      0.9, 150.0, 88.0, 1.4e10),
        }));

    suite.push_back(profile(
        "xsbench", "ecp", "Computational kernel of Monte Carlo neutronics",
        0.40,
        {
            makeCliffPhase("xs-lookup", 0.5, 0.90, 40.0, 20.0, 6.0,
                      1.4, 200.0, 84.0, 8e9),
            makeCliffPhase("tally", 0.6, 0.88, 34.0, 18.0, 6.0,
                      1.4, 195.0, 82.0, 6e9),
        }));

    // FFT for HACC: equally LLC-hungry as miniFE plus heavy traffic.
    suite.push_back(profile(
        "swfft", "ecp", "Fast Fourier transform for HACC (cosmology)",
        0.40,
        {
            makeCliffPhase("transpose", 1.4, 0.90, 28.0, 6.0, 5.0,
                      0.9, 160.0, 100.0, 9e9),
            makeCliffPhase("butterfly", 1.5, 0.92, 24.0, 5.0, 5.0,
                      0.9, 155.0, 96.0, 1.1e10),
        }));

    // AMG and Hypre are deliberately near-identical (the paper's
    // easiest-to-navigate mix 9 pairs them).
    suite.push_back(profile(
        "amg", "ecp", "Parallel algebraic multigrid solver",
        0.25,
        {
            makePhase("smooth", 1.0, 0.88, 22.0, 12.0, 3.0, 145.0, 95.0,
                      1.0e10),
            makePhase("restrict", 1.1, 0.86, 20.0, 11.0, 3.0, 145.0, 94.0,
                      8e9),
        }));

    suite.push_back(profile(
        "hypre", "ecp", "Scalable linear solvers and multigrid methods",
        0.25,
        {
            makePhase("smooth", 1.05, 0.87, 21.0, 11.0, 3.0, 145.0, 92.0,
                      1.0e10),
            makePhase("restrict", 1.1, 0.85, 19.0, 10.5, 3.0, 145.0, 92.0,
                      9e9),
        }));

    return suite;
}

std::vector<WorkloadProfile>
suiteByName(const std::string& name)
{
    if (name == "parsec")
        return parsecSuite();
    if (name == "cloudsuite")
        return cloudSuite();
    if (name == "ecp")
        return ecpSuite();
    SATORI_FATAL("unknown suite: " + name);
}

WorkloadProfile
workloadByName(const std::string& name)
{
    for (const auto* suite_name : {"parsec", "cloudsuite", "ecp"}) {
        for (auto& w : suiteByName(suite_name)) {
            if (w.name == name)
                return w;
        }
    }
    SATORI_FATAL("unknown workload: " + name);
}

} // namespace workloads
} // namespace satori
