#include "satori/workloads/loader.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace workloads {
namespace {

/** Mutable parse state for one phase under construction. */
struct PhaseBuilder
{
    perfmodel::PhaseParams params;
    // The MRC needs three values that may arrive in any order, so the
    // curve is materialized when the phase closes.
    double mpki_one = 10.0;
    double mpki_floor = 2.0;
    enum class MrcKind { Exponential, Cliff } mrc_kind =
        MrcKind::Exponential;
    double mrc_a = 3.0; ///< decay (exponential) or knee (cliff).
    double mrc_b = 1.0; ///< unused (exponential) or width (cliff).

    perfmodel::PhaseParams
    finish(const std::string& source, int line) const
    {
        perfmodel::PhaseParams p = params;
        if (mpki_one < mpki_floor)
            SATORI_FATAL("workload definition " + source + " line " +
                         std::to_string(line) +
                         ": mpki_one must be >= mpki_floor");
        switch (mrc_kind) {
          case MrcKind::Exponential:
            p.mrc = perfmodel::MissRatioCurve::exponential(
                mpki_one, mpki_floor, mrc_a);
            break;
          case MrcKind::Cliff:
            p.mrc = perfmodel::MissRatioCurve::sCurve(
                mpki_one, mpki_floor, mrc_a, mrc_b);
            break;
        }
        return p;
    }
};

[[noreturn]] void
fail(const std::string& source, int line, const std::string& msg)
{
    SATORI_FATAL("workload definition " + source + " line " +
                 std::to_string(line) + ": " + msg);
}

double
parseNumber(const std::string& token, const std::string& source,
            int line)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size())
            fail(source, line,
                 "trailing characters in number '" + token + "'");
        if (!std::isfinite(v))
            fail(source, line,
                 "non-finite value '" + token + "' is not allowed");
        return v;
    } catch (const FatalError&) {
        throw;
    } catch (const std::exception&) {
        fail(source, line, "expected a number, got '" + token + "'");
    }
}

} // namespace

std::vector<WorkloadProfile>
parseWorkloadText(const std::string& text, const std::string& source)
{
    std::vector<WorkloadProfile> out;
    WorkloadProfile* current = nullptr;
    bool phase_open = false;
    PhaseBuilder phase;
    int phase_line = 0;

    auto close_phase = [&](int line) {
        if (phase_open) {
            SATORI_ASSERT(current != nullptr);
            current->phases.push_back(phase.finish(source, phase_line));
            phase_open = false;
        }
        (void)line;
    };

    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments and whitespace.
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        std::string key;
        if (!(ls >> key))
            continue; // blank line

        auto rest_of_line = [&]() {
            std::string rest;
            std::getline(ls, rest);
            const std::size_t start = rest.find_first_not_of(" \t");
            return start == std::string::npos ? std::string()
                                              : rest.substr(start);
        };
        auto next_token = [&](const char* what) {
            std::string tok;
            if (!(ls >> tok))
                fail(source, line_no,
                     std::string("missing value for ") + what);
            return tok;
        };
        auto number = [&](const char* what) {
            return parseNumber(next_token(what), source, line_no);
        };

        if (key == "workload") {
            close_phase(line_no);
            WorkloadProfile w;
            w.name = next_token("workload");
            w.suite = "custom";
            out.push_back(std::move(w));
            current = &out.back();
        } else if (current == nullptr) {
            fail(source, line_no, "'" + key + "' before any 'workload'");
        } else if (key == "suite") {
            current->suite = next_token("suite");
        } else if (key == "description") {
            current->description = rest_of_line();
        } else if (key == "fixed_work") {
            current->fixed_work = number("fixed_work");
            if (current->fixed_work <= 0)
                fail(source, line_no, "fixed_work must be positive");
        } else if (key == "phase") {
            close_phase(line_no);
            phase = PhaseBuilder{};
            phase.params.label = next_token("phase");
            phase_open = true;
            phase_line = line_no;
        } else if (!phase_open) {
            fail(source, line_no, "'" + key + "' outside a phase");
        } else if (key == "base_ipc") {
            phase.params.base_ipc = number(key.c_str());
            if (phase.params.base_ipc <= 0.0 ||
                phase.params.base_ipc > 16.0)
                fail(source, line_no, "base_ipc must be in (0, 16]");
        } else if (key == "parallel_fraction") {
            phase.params.parallel_fraction = number(key.c_str());
            if (phase.params.parallel_fraction < 0.0 ||
                phase.params.parallel_fraction > 1.0)
                fail(source, line_no,
                     "parallel_fraction must be in [0, 1]");
        } else if (key == "mpki_one") {
            phase.mpki_one = number(key.c_str());
            if (phase.mpki_one < 0.0 || phase.mpki_one > 1000.0)
                fail(source, line_no, "mpki_one must be in [0, 1000]");
        } else if (key == "mpki_floor") {
            phase.mpki_floor = number(key.c_str());
            if (phase.mpki_floor < 0.0 || phase.mpki_floor > 1000.0)
                fail(source, line_no,
                     "mpki_floor must be in [0, 1000]");
        } else if (key == "mrc") {
            const std::string kind = next_token("mrc kind");
            if (kind == "exponential") {
                phase.mrc_kind = PhaseBuilder::MrcKind::Exponential;
                phase.mrc_a = number("decay_ways");
                if (phase.mrc_a <= 0.0)
                    fail(source, line_no,
                         "mrc exponential decay must be positive");
            } else if (kind == "cliff") {
                phase.mrc_kind = PhaseBuilder::MrcKind::Cliff;
                phase.mrc_a = number("knee");
                phase.mrc_b = number("width");
                if (phase.mrc_a <= 0.0 || phase.mrc_b <= 0.0)
                    fail(source, line_no,
                         "mrc cliff knee/width must be positive");
            } else {
                fail(source, line_no,
                     "unknown mrc kind '" + kind +
                         "' (exponential | cliff)");
            }
        } else if (key == "miss_penalty") {
            phase.params.miss_penalty_cycles = number(key.c_str());
            if (phase.params.miss_penalty_cycles <= 0.0 ||
                phase.params.miss_penalty_cycles > 10000.0)
                fail(source, line_no,
                     "miss_penalty must be in (0, 10000] cycles");
        } else if (key == "bytes_per_miss") {
            phase.params.bytes_per_miss = number(key.c_str());
            if (phase.params.bytes_per_miss <= 0.0 ||
                phase.params.bytes_per_miss > 4096.0)
                fail(source, line_no,
                     "bytes_per_miss must be in (0, 4096]");
        } else if (key == "cache_pressure") {
            phase.params.cache_pressure = number(key.c_str());
            if (phase.params.cache_pressure < 0.0 ||
                phase.params.cache_pressure > 1.0)
                fail(source, line_no,
                     "cache_pressure must be in [0, 1]");
        } else if (key == "length") {
            phase.params.length = number(key.c_str());
            if (phase.params.length <= 0)
                fail(source, line_no, "length must be positive");
        } else {
            fail(source, line_no, "unknown directive '" + key + "'");
        }
    }
    close_phase(line_no);

    for (const auto& w : out)
        if (w.phases.empty())
            SATORI_FATAL("workload definition " + source +
                         ": workload '" + w.name + "' has no phases");
    if (out.empty())
        SATORI_FATAL("workload definition " + source +
                     ": no workload definitions found");
    return out;
}

std::vector<WorkloadProfile>
loadWorkloadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in.good())
        SATORI_FATAL("cannot open workload file: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseWorkloadText(buffer.str(), path);
}

std::string
formatWorkloads(const std::vector<WorkloadProfile>& profiles)
{
    std::ostringstream os;
    os.precision(10);
    for (const auto& w : profiles) {
        os << "workload " << w.name << "\n";
        os << "  suite " << w.suite << "\n";
        if (!w.description.empty())
            os << "  description " << w.description << "\n";
        os << "  fixed_work " << w.fixed_work << "\n";
        for (const auto& p : w.phases) {
            os << "  phase " << p.label << "\n";
            os << "    base_ipc " << p.base_ipc << "\n";
            os << "    parallel_fraction " << p.parallel_fraction
               << "\n";
            os << "    mpki_one " << p.mrc.mpki(1) << "\n";
            os << "    mpki_floor " << p.mrc.floorMpki() << "\n";
            // Exponential export approximates arbitrary curves by
            // their 1-way/floor endpoints and the half-way decay.
            double decay = 3.0;
            const double one = p.mrc.mpki(1);
            const double floor_v = p.mrc.floorMpki();
            if (one > floor_v + 1e-12) {
                // Find ways where half the excess is gone.
                for (int w_i = 1; w_i <= 32; ++w_i) {
                    if (p.mrc.mpki(w_i) <=
                        floor_v + 0.5 * (one - floor_v)) {
                        decay = std::max(
                            0.5, (static_cast<double>(w_i) - 1.0) /
                                     0.6931);
                        break;
                    }
                }
            }
            os << "    mrc exponential " << decay << "\n";
            os << "    miss_penalty " << p.miss_penalty_cycles << "\n";
            os << "    bytes_per_miss " << p.bytes_per_miss << "\n";
            os << "    cache_pressure " << p.cache_pressure << "\n";
            os << "    length " << p.length << "\n";
        }
    }
    return os.str();
}

} // namespace workloads
} // namespace satori
