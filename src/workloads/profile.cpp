#include "satori/workloads/profile.hpp"

namespace satori {
namespace workloads {

Instructions
WorkloadProfile::cycleLength() const
{
    Instructions total = 0;
    for (const auto& p : phases)
        total += p.length;
    return total;
}

perfmodel::PhaseParams
makePhase(std::string label, double base_ipc, double parallel_fraction,
          double mpki_one, double mpki_floor, double mrc_decay_ways,
          double miss_penalty_cycles, double bytes_per_miss,
          Instructions length)
{
    perfmodel::PhaseParams p;
    p.label = std::move(label);
    p.base_ipc = base_ipc;
    p.parallel_fraction = parallel_fraction;
    p.mrc = perfmodel::MissRatioCurve::exponential(mpki_one, mpki_floor,
                                                   mrc_decay_ways);
    p.miss_penalty_cycles = miss_penalty_cycles;
    p.bytes_per_miss = bytes_per_miss;
    p.length = length;
    return p;
}

perfmodel::PhaseParams
makeCliffPhase(std::string label, double base_ipc,
               double parallel_fraction, double mpki_one,
               double mpki_floor, double knee_ways, double cliff_width,
               double miss_penalty_cycles, double bytes_per_miss,
               Instructions length)
{
    perfmodel::PhaseParams p;
    p.label = std::move(label);
    p.base_ipc = base_ipc;
    p.parallel_fraction = parallel_fraction;
    p.mrc = perfmodel::MissRatioCurve::sCurve(mpki_one, mpki_floor,
                                              knee_ways, cliff_width);
    p.miss_penalty_cycles = miss_penalty_cycles;
    p.bytes_per_miss = bytes_per_miss;
    p.length = length;
    return p;
}

} // namespace workloads
} // namespace satori
