#include "satori/workloads/mixes.hpp"

#include "satori/common/logging.hpp"
#include "satori/workloads/suites.hpp"

namespace satori {
namespace workloads {

std::vector<std::vector<std::size_t>>
combinations(std::size_t n, std::size_t k)
{
    SATORI_ASSERT(k >= 1 && k <= n);
    std::vector<std::vector<std::size_t>> out;
    std::vector<std::size_t> current(k);
    for (std::size_t i = 0; i < k; ++i)
        current[i] = i;
    while (true) {
        out.push_back(current);
        // Find the rightmost element that can still be advanced.
        std::size_t i = k;
        while (i-- > 0) {
            if (current[i] < n - k + i)
                break;
            if (i == 0)
                return out;
        }
        if (current[i] >= n - k + i)
            return out;
        ++current[i];
        for (std::size_t j = i + 1; j < k; ++j)
            current[j] = current[j - 1] + 1;
    }
}

std::vector<JobMix>
allMixes(const std::vector<WorkloadProfile>& suite, std::size_t k)
{
    std::vector<JobMix> out;
    for (const auto& combo : combinations(suite.size(), k)) {
        JobMix mix;
        for (std::size_t idx : combo) {
            if (!mix.label.empty())
                mix.label += "+";
            mix.label += suite[idx].name;
            mix.jobs.push_back(suite[idx]);
        }
        out.push_back(std::move(mix));
    }
    return out;
}

JobMix
mixOf(const std::vector<std::string>& names)
{
    JobMix mix;
    for (const auto& name : names) {
        if (!mix.label.empty())
            mix.label += "+";
        mix.label += name;
        mix.jobs.push_back(workloadByName(name));
    }
    return mix;
}

} // namespace workloads
} // namespace satori
