#include "satori/faults/injector.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "satori/common/logging.hpp"
#include "satori/obs/obs.hpp"
#include "satori/persist/codec.hpp"
#include "satori/persist/state.hpp"

namespace satori {
namespace faults {

std::size_t
FaultStats::total() const
{
    return samples_dropped + samples_nan + samples_frozen +
           samples_spiked + actuations_dropped + actuations_delayed +
           actuations_partial + offline_intervals + crashes;
}

std::string
FaultStats::toString() const
{
    std::ostringstream os;
    os << "drop=" << samples_dropped << " nan=" << samples_nan
       << " freeze=" << samples_frozen << " spike=" << samples_spiked
       << " noact=" << actuations_dropped
       << " delayed=" << actuations_delayed
       << " partial=" << actuations_partial
       << " offline=" << offline_intervals << " crash=" << crashes;
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed)
{
}

void
FaultInjector::flag(const std::string& token)
{
    SATORI_OBS_METRIC(faults_injected.inc());
    if (!flags_.empty())
        flags_ += "|";
    flags_ += token;
}

bool
FaultInjector::beginInterval(sim::SimulatedServer& server)
{
    flags_.clear();
    bool churn = false;

    // Core offlining is recomputed from scratch every interval so a
    // window's end restores full speed without extra bookkeeping.
    std::vector<double> throttle(server.numJobs(), 1.0);

    for (const FaultEvent* e : plan_.activeAt(interval_)) {
        switch (e->kind) {
          case FaultKind::JobCrash: {
            if (rng_.uniform() >= e->probability)
                break;
            const std::size_t j =
                e->job >= 0
                    ? static_cast<std::size_t>(e->job) % server.numJobs()
                    : static_cast<std::size_t>(
                          rng_.uniformInt(server.numJobs()));
            server.replaceJob(j, server.job(j).profile());
            ++stats_.crashes;
            flag("crash(j" + std::to_string(j) + ")");
            churn = true;
            break;
          }
          case FaultKind::CoreOffline: {
            const std::size_t j =
                e->job >= 0
                    ? static_cast<std::size_t>(e->job) % server.numJobs()
                    : 0;
            throttle[j] = std::min(throttle[j], e->magnitude);
            ++stats_.offline_intervals;
            flag("offline(j" + std::to_string(j) + ")");
            break;
          }
          default:
            break; // telemetry/actuation faults handled elsewhere
        }
    }
    server.setExternalThrottle(throttle);
    return churn;
}

sim::IntervalObservation
FaultInjector::perturbObservation(const sim::IntervalObservation& truth)
{
    sim::IntervalObservation obs = truth;
    for (const FaultEvent* e : plan_.activeAt(interval_)) {
        const bool telemetry = e->kind == FaultKind::DropSample ||
                               e->kind == FaultKind::NanSample ||
                               e->kind == FaultKind::FreezeSample ||
                               e->kind == FaultKind::SpikeSample;
        if (!telemetry)
            continue;
        for (std::size_t j = 0; j < obs.ips.size(); ++j) {
            if (e->job >= 0 && static_cast<std::size_t>(e->job) != j)
                continue;
            if (rng_.uniform() >= e->probability)
                continue;
            switch (e->kind) {
              case FaultKind::DropSample:
                obs.ips[j] = 0.0;
                ++stats_.samples_dropped;
                flag("drop(j" + std::to_string(j) + ")");
                break;
              case FaultKind::NanSample:
                obs.ips[j] = std::numeric_limits<double>::quiet_NaN();
                ++stats_.samples_nan;
                flag("nan(j" + std::to_string(j) + ")");
                break;
              case FaultKind::FreezeSample:
                if (j < last_delivered_.size()) {
                    obs.ips[j] = last_delivered_[j];
                    ++stats_.samples_frozen;
                    flag("freeze(j" + std::to_string(j) + ")");
                }
                break;
              case FaultKind::SpikeSample:
                obs.ips[j] *= e->magnitude;
                ++stats_.samples_spiked;
                flag("spike(j" + std::to_string(j) + ")");
                break;
              default:
                break;
            }
        }
    }
    last_delivered_ = obs.ips;
    return obs;
}

const Configuration&
FaultInjector::actuate(sim::SimulatedServer& server,
                       const Configuration& requested)
{
    // Delayed actuations that have come due land first (oldest
    // first), exactly like a lagging management daemon draining its
    // queue.
    for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (it->due_interval <= interval_) {
            server.setConfiguration(it->config);
            it = delayed_.erase(it);
        } else {
            ++it;
        }
    }

    // Precedence: a dropped actuation beats a delayed one beats a
    // partial application; at most one fate per request.
    const FaultEvent* drop = nullptr;
    const FaultEvent* delay = nullptr;
    const FaultEvent* partial = nullptr;
    for (const FaultEvent* e : plan_.activeAt(interval_)) {
        if (e->kind == FaultKind::DropActuation && !drop &&
            rng_.uniform() < e->probability)
            drop = e;
        else if (e->kind == FaultKind::DelayActuation && !delay &&
                 rng_.uniform() < e->probability)
            delay = e;
        else if (e->kind == FaultKind::PartialActuation && !partial &&
                 rng_.uniform() < e->probability)
            partial = e;
    }

    if (drop != nullptr) {
        ++stats_.actuations_dropped;
        flag("noact");
    } else if (delay != nullptr) {
        delayed_.push_back(
            {requested, interval_ + delay->delay_intervals});
        ++stats_.actuations_delayed;
        flag("delayed(k" + std::to_string(delay->delay_intervals) + ")");
    } else if (partial != nullptr) {
        // Apply the requested row for a random subset of resources;
        // the rest keep their current allocation. Each resource row
        // individually sums to capacity, so the mix stays feasible.
        Configuration mixed = server.configuration();
        bool any = false;
        for (std::size_t r = 0; r < mixed.numResources(); ++r) {
            if (rng_.uniform() < 0.5) {
                for (std::size_t j = 0; j < mixed.numJobs(); ++j)
                    mixed.units(r, j) = requested.units(r, j);
                any = true;
            }
        }
        if (any)
            server.setConfiguration(mixed);
        ++stats_.actuations_partial;
        flag("partial");
    } else {
        server.setConfiguration(requested);
    }

    ++interval_;
    return server.configuration();
}

void
FaultInjector::saveState(persist::StateWriter& w) const
{
    rng_.saveState(w);
    w.putSize(interval_);
    w.putDoubleVec(last_delivered_);
    w.putSize(delayed_.size());
    for (const DelayedActuation& d : delayed_) {
        persist::putConfiguration(w, d.config);
        w.putSize(d.due_interval);
    }
    w.putSize(stats_.samples_dropped);
    w.putSize(stats_.samples_nan);
    w.putSize(stats_.samples_frozen);
    w.putSize(stats_.samples_spiked);
    w.putSize(stats_.actuations_dropped);
    w.putSize(stats_.actuations_delayed);
    w.putSize(stats_.actuations_partial);
    w.putSize(stats_.offline_intervals);
    w.putSize(stats_.crashes);
    w.putString(flags_);
}

void
FaultInjector::restoreState(persist::StateReader& r)
{
    rng_.restoreState(r);
    interval_ = r.getSize();
    last_delivered_ = r.getDoubleVec();
    const std::size_t n = r.getSize();
    delayed_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        DelayedActuation d;
        d.config = persist::getConfiguration(r);
        d.due_interval = r.getSize();
        delayed_.push_back(std::move(d));
    }
    stats_.samples_dropped = r.getSize();
    stats_.samples_nan = r.getSize();
    stats_.samples_frozen = r.getSize();
    stats_.samples_spiked = r.getSize();
    stats_.actuations_dropped = r.getSize();
    stats_.actuations_delayed = r.getSize();
    stats_.actuations_partial = r.getSize();
    stats_.offline_intervals = r.getSize();
    stats_.crashes = r.getSize();
    flags_ = r.getString();
}

} // namespace faults
} // namespace satori
