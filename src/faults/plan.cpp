#include "satori/faults/plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "satori/common/logging.hpp"

namespace satori {
namespace faults {
namespace {

struct KindName
{
    FaultKind kind;
    const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::DropSample, "drop"},
    {FaultKind::NanSample, "nan"},
    {FaultKind::FreezeSample, "freeze"},
    {FaultKind::SpikeSample, "spike"},
    {FaultKind::DropActuation, "noact"},
    {FaultKind::DelayActuation, "delay"},
    {FaultKind::PartialActuation, "partial"},
    {FaultKind::CoreOffline, "offline"},
    {FaultKind::JobCrash, "crash"},
};

[[noreturn]] void
fail(const std::string& source, int line, const std::string& msg)
{
    SATORI_FATAL("fault script " + source + " line " +
                 std::to_string(line) + ": " + msg);
}

double
parseNumber(const std::string& token, const std::string& source, int line)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size() || !std::isfinite(v))
            fail(source, line, "bad number '" + token + "'");
        return v;
    } catch (const FatalError&) {
        throw;
    } catch (const std::exception&) {
        fail(source, line, "expected a number, got '" + token + "'");
    }
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    for (const auto& kn : kKindNames)
        if (kn.kind == kind)
            return kn.name;
    SATORI_PANIC("unknown FaultKind");
}

std::string
FaultEvent::toString() const
{
    std::ostringstream os;
    os << faultKindName(kind) << " " << start_interval << ".."
       << end_interval;
    if (job >= 0)
        os << " job=" << job;
    if (probability < 1.0)
        os << " p=" << probability;
    if (kind == FaultKind::SpikeSample || kind == FaultKind::CoreOffline)
        os << " x=" << magnitude;
    if (kind == FaultKind::DelayActuation)
        os << " k=" << delay_intervals;
    return os.str();
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
}

FaultPlan&
FaultPlan::add(const FaultEvent& event)
{
    events_.push_back(event);
    return *this;
}

std::vector<const FaultEvent*>
FaultPlan::activeAt(std::size_t interval) const
{
    std::vector<const FaultEvent*> out;
    for (const auto& e : events_)
        if (interval >= e.start_interval && interval < e.end_interval)
            out.push_back(&e);
    return out;
}

std::size_t
FaultPlan::horizon() const
{
    std::size_t h = 0;
    for (const auto& e : events_)
        h = std::max(h, e.end_interval);
    return h;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    for (const auto& e : events_) {
        out += e.toString();
        out += "\n";
    }
    return out;
}

FaultPlan
FaultPlan::parse(const std::string& text, const std::string& source)
{
    std::vector<FaultEvent> events;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        std::string kind_tok;
        if (!(ls >> kind_tok))
            continue; // blank line

        FaultEvent e;
        bool known = false;
        for (const auto& kn : kKindNames) {
            if (kind_tok == kn.name) {
                e.kind = kn.kind;
                known = true;
                break;
            }
        }
        if (!known)
            fail(source, line_no,
                 "unknown fault kind '" + kind_tok +
                     "' (drop | nan | freeze | spike | noact | delay "
                     "| partial | offline | crash)");

        std::string window;
        if (!(ls >> window))
            fail(source, line_no, "missing interval window");
        const std::size_t dots = window.find("..");
        if (dots == std::string::npos) {
            // Single interval: "crash 120" means [120, 121).
            const double v = parseNumber(window, source, line_no);
            if (v < 0)
                fail(source, line_no, "interval must be >= 0");
            e.start_interval = static_cast<std::size_t>(v);
            e.end_interval = e.start_interval + 1;
        } else {
            const double lo =
                parseNumber(window.substr(0, dots), source, line_no);
            const double hi =
                parseNumber(window.substr(dots + 2), source, line_no);
            if (lo < 0 || hi < 0)
                fail(source, line_no, "intervals must be >= 0");
            e.start_interval = static_cast<std::size_t>(lo);
            e.end_interval = static_cast<std::size_t>(hi);
            if (e.end_interval <= e.start_interval)
                fail(source, line_no,
                     "empty window " + window +
                         " (end must exceed start; it is exclusive)");
        }

        // Defaults that make sense per kind.
        if (e.kind == FaultKind::SpikeSample)
            e.magnitude = 8.0;
        else if (e.kind == FaultKind::CoreOffline)
            e.magnitude = 0.5;

        std::string opt;
        while (ls >> opt) {
            const std::size_t eq = opt.find('=');
            if (eq == std::string::npos)
                fail(source, line_no,
                     "expected key=value, got '" + opt + "'");
            const std::string key = opt.substr(0, eq);
            const std::string val = opt.substr(eq + 1);
            if (key == "job") {
                if (val == "*") {
                    e.job = -1;
                } else {
                    const double j = parseNumber(val, source, line_no);
                    // Integrality test, not a tolerance compare.
                    // satori-analyzer: allow(num-float-eq)
                    if (j < 0 || j != std::floor(j))
                        fail(source, line_no,
                             "job must be a non-negative integer or *");
                    e.job = static_cast<int>(j);
                }
            } else if (key == "p") {
                e.probability = parseNumber(val, source, line_no);
                if (e.probability <= 0.0 || e.probability > 1.0)
                    fail(source, line_no, "p must be in (0, 1]");
            } else if (key == "x") {
                e.magnitude = parseNumber(val, source, line_no);
                if (e.magnitude < 0.0)
                    fail(source, line_no, "x must be >= 0");
            } else if (key == "k") {
                const double k = parseNumber(val, source, line_no);
                // Integrality test, not a tolerance compare.
                // satori-analyzer: allow(num-float-eq)
                if (k < 1 || k != std::floor(k))
                    fail(source, line_no, "k must be a positive integer");
                e.delay_intervals = static_cast<std::size_t>(k);
            } else {
                fail(source, line_no, "unknown option '" + key + "'");
            }
        }
        events.push_back(e);
    }
    return FaultPlan(std::move(events));
}

FaultPlan
FaultPlan::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in.good())
        SATORI_FATAL("cannot open fault script: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), path);
}

FaultPlan
FaultPlan::escalating(std::size_t num_jobs, std::size_t horizon)
{
    // Four escalation phases over the first ~2/3 of the run, then a
    // clean tail so recovery behavior is part of what is measured.
    // Interval boundaries are fractions of the horizon so the same
    // shape applies to short test runs and paper-scale benches.
    auto at = [&](double f) {
        return static_cast<std::size_t>(
            std::llround(f * static_cast<double>(horizon)));
    };
    FaultPlan plan;

    // Phase 1: telemetry spikes on a rotating single job.
    FaultEvent spike;
    spike.kind = FaultKind::SpikeSample;
    spike.start_interval = at(0.05);
    spike.end_interval = at(0.18);
    spike.job = 0;
    spike.probability = 0.35;
    spike.magnitude = 8.0;
    plan.add(spike);
    spike.job = num_jobs > 1 ? 1 : 0;
    spike.magnitude = 0.1;
    plan.add(spike);

    // Phase 2: dropped and frozen samples across all jobs.
    FaultEvent drop;
    drop.kind = FaultKind::DropSample;
    drop.start_interval = at(0.2);
    drop.end_interval = at(0.32);
    drop.job = -1;
    drop.probability = 0.25;
    plan.add(drop);
    FaultEvent freeze;
    freeze.kind = FaultKind::FreezeSample;
    freeze.start_interval = at(0.32);
    freeze.end_interval = at(0.42);
    freeze.job = static_cast<int>(num_jobs / 2);
    freeze.probability = 1.0;
    plan.add(freeze);

    // Phase 3: the actuation path degrades - drops, delays, partial
    // applications.
    FaultEvent noact;
    noact.kind = FaultKind::DropActuation;
    noact.start_interval = at(0.44);
    noact.end_interval = at(0.54);
    noact.probability = 0.5;
    plan.add(noact);
    FaultEvent delay;
    delay.kind = FaultKind::DelayActuation;
    delay.start_interval = at(0.54);
    delay.end_interval = at(0.6);
    delay.probability = 0.5;
    delay.delay_intervals = 4;
    plan.add(delay);
    FaultEvent partial;
    partial.kind = FaultKind::PartialActuation;
    partial.start_interval = at(0.6);
    partial.end_interval = at(0.66);
    partial.probability = 0.6;
    plan.add(partial);

    // Phase 4: platform churn - one job crashes and restarts, and a
    // short transient core offline slows another.
    FaultEvent crash;
    crash.kind = FaultKind::JobCrash;
    crash.start_interval = at(0.68);
    crash.end_interval = at(0.68) + 1;
    crash.job = num_jobs > 2 ? 2 : 0;
    plan.add(crash);
    FaultEvent offline;
    offline.kind = FaultKind::CoreOffline;
    offline.start_interval = at(0.7);
    offline.end_interval = at(0.76);
    offline.job = num_jobs > 3 ? 3 : 0;
    offline.magnitude = 0.5;
    plan.add(offline);

    return plan;
}

} // namespace faults
} // namespace satori
