#include "satori/policies/random_policy.hpp"

namespace satori {
namespace policies {

RandomPolicy::RandomPolicy(const PlatformSpec& platform,
                           std::size_t num_jobs, std::uint64_t seed)
    : space_(platform, num_jobs), seed_(seed), rng_(seed)
{
}

Configuration
RandomPolicy::decide(const sim::IntervalObservation&)
{
    return space_.sample(rng_);
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
}

} // namespace policies
} // namespace satori
