#include "satori/policies/restricted_policy.hpp"

#include "satori/common/logging.hpp"

namespace satori {
namespace policies {

RestrictedPolicy::RestrictedPolicy(
    const PlatformSpec& full_platform, std::size_t num_jobs,
    const std::vector<ResourceKind>& managed, const InnerFactory& factory)
    : full_(full_platform),
      restricted_(full_platform.restrictedTo(managed)),
      num_jobs_(num_jobs)
{
    if (restricted_.numResources() == 0)
        SATORI_FATAL("restricted policy manages no resources");
    for (std::size_t r = 0; r < restricted_.numResources(); ++r) {
        const int idx = full_.indexOf(restricted_.resource(r).kind);
        SATORI_ASSERT(idx >= 0);
        managed_indices_.push_back(static_cast<std::size_t>(idx));
    }
    inner_ = factory(restricted_, num_jobs_);
    SATORI_ASSERT(inner_ != nullptr);
}

std::string
RestrictedPolicy::name() const
{
    std::string suffix;
    for (std::size_t r = 0; r < restricted_.numResources(); ++r) {
        suffix += r ? "+" : "[";
        suffix += resourceKindName(restricted_.resource(r).kind);
    }
    return inner_->name() + suffix + "]";
}

Configuration
RestrictedPolicy::project(const Configuration& full) const
{
    std::vector<std::vector<int>> alloc;
    for (std::size_t idx : managed_indices_)
        alloc.push_back(full.resourceRow(idx));
    return Configuration(std::move(alloc));
}

Configuration
RestrictedPolicy::embed(const Configuration& restricted) const
{
    Configuration out = Configuration::equalPartition(full_, num_jobs_);
    for (std::size_t r = 0; r < managed_indices_.size(); ++r)
        for (JobIndex j = 0; j < num_jobs_; ++j)
            out.units(managed_indices_[r], j) = restricted.units(r, j);
    SATORI_ASSERT(out.isValidFor(full_, num_jobs_));
    return out;
}

Configuration
RestrictedPolicy::decide(const sim::IntervalObservation& obs)
{
    sim::IntervalObservation restricted_obs = obs;
    restricted_obs.config = project(obs.config);
    return embed(inner_->decide(restricted_obs));
}

void
RestrictedPolicy::reset()
{
    inner_->reset();
}

} // namespace policies
} // namespace satori
