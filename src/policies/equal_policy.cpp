#include "satori/policies/equal_policy.hpp"

namespace satori {
namespace policies {

EqualPartitionPolicy::EqualPartitionPolicy(const PlatformSpec& platform,
                                           std::size_t num_jobs)
    : config_(Configuration::equalPartition(platform, num_jobs))
{
}

Configuration
EqualPartitionPolicy::decide(const sim::IntervalObservation&)
{
    return config_;
}

} // namespace policies
} // namespace satori
