#include "satori/policies/dcat_policy.hpp"

#include <numeric>

#include "satori/common/logging.hpp"
#include "satori/metrics/metrics.hpp"

namespace satori {
namespace policies {

DCatPolicy::DCatPolicy(const PlatformSpec& platform, std::size_t num_jobs,
                       Options options)
    : platform_(platform), num_jobs_(num_jobs), options_(options),
      llc_index_(platform.indexOf(ResourceKind::LlcWays)),
      current_(Configuration::equalPartition(platform, num_jobs))
{
    if (llc_index_ < 0)
        SATORI_FATAL("dCAT requires an LLC-ways resource");
}

double
DCatPolicy::sumIps(const std::vector<Ips>& ips) const
{
    return std::accumulate(ips.begin(), ips.end(), 0.0);
}

Configuration
DCatPolicy::decide(const sim::IntervalObservation& obs)
{
    // Accumulate epoch-averaged signals; act only at epoch boundaries
    // (the published system's native decision cadence).
    if (acc_ips_.empty()) {
        acc_ips_.assign(obs.ips.size(), 0.0);
        acc_iso_.assign(obs.ips.size(), 0.0);
    }
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        acc_ips_[j] += obs.ips[j];
        acc_iso_[j] += obs.isolation_ips[j];
    }
    if (++acc_n_ < options_.period_intervals)
        return current_;
    std::vector<double> avg_ips(obs.ips.size());
    std::vector<double> avg_iso(obs.ips.size());
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        avg_ips[j] = acc_ips_[j] / acc_n_;
        avg_iso[j] = acc_iso_[j] / acc_n_;
    }
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;

    ++iteration_;
    const double observed = sumIps(avg_ips);
    const auto r = static_cast<ResourceIndex>(llc_index_);

    if (trial_pending_) {
        trial_pending_ = false;
        const double gain =
            (observed - pre_trial_ips_) / std::max(pre_trial_ips_, 1e-9);
        if (gain < options_.accept_epsilon) {
            // Transfer hurt (or didn't help): revert and back off.
            current_ = pre_trial_config_;
            blocked_until_[{trial_from_, trial_to_}] =
                iteration_ + options_.backoff_intervals;
            return current_;
        }
        // Keep the transfer; fall through to try extending the trend.
    }

    // Receiver: the most slowed-down job (likely cache starved);
    // donor: the least slowed-down job with ways to spare. This is
    // dCAT's utility intuition driven purely by measurements.
    const std::vector<double> spd = speedups(avg_ips, avg_iso);
    JobIndex receiver = 0, donor = 0;
    double worst = 2.0, best = -1.0;
    bool found_receiver = false, found_donor = false;
    for (JobIndex j = 0; j < num_jobs_; ++j) {
        if (spd[j] < worst) {
            worst = spd[j];
            receiver = j;
            found_receiver = true;
        }
    }
    for (JobIndex j = 0; j < num_jobs_; ++j) {
        if (j == receiver || current_.units(r, j) <= 1)
            continue;
        const auto it = blocked_until_.find({j, receiver});
        if (it != blocked_until_.end() && it->second > iteration_)
            continue;
        if (spd[j] > best) {
            best = spd[j];
            donor = j;
            found_donor = true;
        }
    }
    if (!found_receiver || !found_donor)
        return current_;

    pre_trial_config_ = current_;
    pre_trial_ips_ = observed;
    if (current_.transferUnit(r, donor, receiver)) {
        trial_pending_ = true;
        trial_from_ = donor;
        trial_to_ = receiver;
    }
    return current_;
}

void
DCatPolicy::reset()
{
    current_ = Configuration::equalPartition(platform_, num_jobs_);
    trial_pending_ = false;
    blocked_until_.clear();
    iteration_ = 0;
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;
}

} // namespace policies
} // namespace satori
