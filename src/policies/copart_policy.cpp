#include "satori/policies/copart_policy.hpp"

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/metrics/metrics.hpp"

namespace satori {
namespace policies {

CoPartPolicy::CoPartPolicy(const PlatformSpec& platform,
                           std::size_t num_jobs, Options options)
    : platform_(platform), num_jobs_(num_jobs), options_(options),
      current_(Configuration::equalPartition(platform, num_jobs))
{
    const int llc = platform.indexOf(ResourceKind::LlcWays);
    const int mb = platform.indexOf(ResourceKind::MemBandwidth);
    if (llc >= 0)
        managed_.push_back(static_cast<ResourceIndex>(llc));
    if (mb >= 0)
        managed_.push_back(static_cast<ResourceIndex>(mb));
    if (managed_.empty())
        SATORI_FATAL("CoPart requires an LLC-ways or memory-bandwidth "
                     "resource");
}

void
CoPartPolicy::stepFsm(ResourceIndex r, const std::vector<double>& speedup)
{
    const double avg = mean(speedup);
    // Classify: jobs suffering disproportionately take, jobs doing
    // disproportionately well give. Hysteresis avoids oscillation.
    JobIndex take = 0, give = 0;
    double worst = 2.0, best = -1.0;
    bool has_take = false, has_give = false;
    for (JobIndex j = 0; j < num_jobs_; ++j) {
        const State s =
            speedup[j] < avg * (1.0 - options_.hysteresis) ? State::Take
            : speedup[j] > avg * (1.0 + options_.hysteresis)
                ? State::Give
                : State::Hold;
        if (s == State::Take && speedup[j] < worst) {
            worst = speedup[j];
            take = j;
            has_take = true;
        }
        if (s == State::Give && speedup[j] > best &&
            current_.units(r, j) > 1) {
            best = speedup[j];
            give = j;
            has_give = true;
        }
    }
    if (has_take && has_give)
        current_.transferUnit(r, give, take);
}

Configuration
CoPartPolicy::decide(const sim::IntervalObservation& obs)
{
    // Accumulate epoch-averaged signals; act only at epoch boundaries
    // (the published system's native decision cadence).
    if (acc_ips_.empty()) {
        acc_ips_.assign(obs.ips.size(), 0.0);
        acc_iso_.assign(obs.ips.size(), 0.0);
    }
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        acc_ips_[j] += obs.ips[j];
        acc_iso_[j] += obs.isolation_ips[j];
    }
    if (++acc_n_ < options_.period_intervals)
        return current_;
    std::vector<double> avg_ips(obs.ips.size());
    std::vector<double> avg_iso(obs.ips.size());
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        avg_ips[j] = acc_ips_[j] / acc_n_;
        avg_iso[j] = acc_iso_[j] / acc_n_;
    }
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;

    const std::vector<double> spd = speedups(avg_ips, avg_iso);
    // The two FSMs act on alternating epochs, staying aware of each
    // other's latest allocation without acting jointly.
    stepFsm(managed_[turn_ % managed_.size()], spd);
    ++turn_;
    return current_;
}

void
CoPartPolicy::reset()
{
    current_ = Configuration::equalPartition(platform_, num_jobs_);
    turn_ = 0;
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;
}

} // namespace policies
} // namespace satori
