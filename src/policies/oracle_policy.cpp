#include "satori/policies/oracle_policy.hpp"

#include "satori/common/logging.hpp"

namespace satori {
namespace policies {

std::string
oracleKindName(OracleKind kind)
{
    switch (kind) {
      case OracleKind::Throughput:
        return "Throughput-Oracle";
      case OracleKind::Fairness:
        return "Fairness-Oracle";
      case OracleKind::Balanced:
        return "Balanced-Oracle";
    }
    SATORI_PANIC("unknown OracleKind");
}

OraclePolicy::OraclePolicy(const sim::SimulatedServer& server,
                           OracleKind kind,
                           harness::OfflineEvaluator::Options options)
    : server_(server), kind_(kind),
      evaluator_(std::make_unique<harness::OfflineEvaluator>(server,
                                                             options))
{
    switch (kind_) {
      case OracleKind::Throughput:
        w_t_ = 1.0;
        w_f_ = 0.0;
        break;
      case OracleKind::Fairness:
        w_t_ = 0.0;
        w_f_ = 1.0;
        break;
      case OracleKind::Balanced:
        w_t_ = 0.5;
        w_f_ = 0.5;
        break;
    }
}

std::string
OraclePolicy::name() const
{
    return oracleKindName(kind_);
}

Configuration
OraclePolicy::decide(const sim::IntervalObservation&)
{
    // Recomputed every interval; the evaluator memoizes per phase
    // signature, so work is only done when a job changes phase.
    return evaluator_->bestFor(server_.phaseSignature(), w_t_, w_f_)
        .config;
}

} // namespace policies
} // namespace satori
