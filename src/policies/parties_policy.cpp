#include "satori/policies/parties_policy.hpp"

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {
namespace policies {

PartiesPolicy::PartiesPolicy(const PlatformSpec& platform,
                             std::size_t num_jobs, Options options)
    : platform_(platform), num_jobs_(num_jobs), options_(options),
      current_(Configuration::equalPartition(platform, num_jobs))
{
}

double
PartiesPolicy::objective(const sim::IntervalObservation& obs) const
{
    const double t = normalizedThroughput(options_.tmetric, obs.ips,
                                          obs.isolation_ips);
    const double f = normalizedFairness(
        options_.fmetric, speedups(obs.ips, obs.isolation_ips));
    return options_.w_t * t + options_.w_f * f;
}

Configuration
PartiesPolicy::decide(const sim::IntervalObservation& obs)
{
    // Accumulate epoch-averaged signals; act only at epoch boundaries
    // (the published system's native decision cadence).
    if (acc_ips_.empty()) {
        acc_ips_.assign(obs.ips.size(), 0.0);
        acc_iso_.assign(obs.ips.size(), 0.0);
    }
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        acc_ips_[j] += obs.ips[j];
        acc_iso_[j] += obs.isolation_ips[j];
    }
    if (++acc_n_ < options_.period_intervals)
        return current_;
    std::vector<double> avg_ips(obs.ips.size());
    std::vector<double> avg_iso(obs.ips.size());
    for (std::size_t j = 0; j < obs.ips.size(); ++j) {
        avg_ips[j] = acc_ips_[j] / acc_n_;
        avg_iso[j] = acc_iso_[j] / acc_n_;
    }
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;

    const double observed =
        options_.w_t * normalizedThroughput(options_.tmetric, avg_ips,
                                            avg_iso) +
        options_.w_f * normalizedFairness(options_.fmetric,
                                          speedups(avg_ips, avg_iso));

    if (trial_pending_) {
        trial_pending_ = false;
        if (observed < pre_trial_objective_ + options_.accept_epsilon) {
            // Move did not help: undo it and count a failure in this
            // dimension; after enough failures rotate to the next
            // resource (the gradient-descent "one dimension at a
            // time" sweep).
            current_ = pre_trial_config_;
            if (++failures_in_dimension_ >= 2) {
                failures_in_dimension_ = 0;
                dimension_ = (dimension_ + 1) % platform_.numResources();
            }
            return current_;
        }
        failures_in_dimension_ = 0;
        // Accepted: keep walking this dimension from the new point.
    }

    // PARTIES iterates per-application FSMs: each adjustment step
    // considers the next application in round-robin order. An app
    // performing below the mean is upsized in the current dimension
    // (taking from the best-performing app); one above the mean is
    // downsized (giving to the worst-performing app). The measured
    // accept test below keeps only moves that improve the combined
    // objective.
    const std::vector<double> spd = speedups(avg_ips, avg_iso);
    const double avg = mean(spd);
    const JobIndex subject = next_app_ % num_jobs_;
    ++next_app_;
    JobIndex target, donor;
    if (spd[subject] <= avg) {
        target = subject;
        donor = subject;
        double best = -1.0;
        for (JobIndex j = 0; j < num_jobs_; ++j) {
            if (j == subject || current_.units(dimension_, j) <= 1)
                continue;
            if (spd[j] > best) {
                best = spd[j];
                donor = j;
            }
        }
    } else {
        donor = subject;
        target = subject;
        double worst = 2.0;
        for (JobIndex j = 0; j < num_jobs_; ++j) {
            if (j == subject)
                continue;
            if (spd[j] < worst) {
                worst = spd[j];
                target = j;
            }
        }
        if (current_.units(dimension_, donor) <= 1)
            target = donor; // nothing to give
    }
    const bool has_donor = donor != target;
    if (!has_donor) {
        // Dimension exhausted for this direction; rotate.
        dimension_ = (dimension_ + 1) % platform_.numResources();
        return current_;
    }

    pre_trial_config_ = current_;
    pre_trial_objective_ = observed;
    if (current_.transferUnit(dimension_, donor, target))
        trial_pending_ = true;
    return current_;
}

void
PartiesPolicy::reset()
{
    current_ = Configuration::equalPartition(platform_, num_jobs_);
    trial_pending_ = false;
    dimension_ = 0;
    failures_in_dimension_ = 0;
    next_app_ = 0;
    acc_ips_.clear();
    acc_iso_.clear();
    acc_n_ = 0;
}

} // namespace policies
} // namespace satori
