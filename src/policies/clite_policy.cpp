#include "satori/policies/clite_policy.hpp"

#include <algorithm>

#include "satori/common/logging.hpp"

namespace satori {
namespace policies {

ClitePolicy::ClitePolicy(const PlatformSpec& platform,
                         std::size_t num_jobs, CliteOptions options)
    : options_(options), space_(platform, num_jobs),
      candgen_(space_,
               [] {
                   bo::CandidateOptions c;
                   // CLITE explores with uniform candidates only -
                   // no structured seeds or concentration sets.
                   c.include_seeds = false;
                   c.include_concentrated = false;
                   return c;
               }()),
      rng_(options.seed), init_left_(options.init_samples)
{
}

double
ClitePolicy::objective(const sim::IntervalObservation& obs) const
{
    const double t = normalizedThroughput(options_.tmetric, obs.ips,
                                          obs.isolation_ips);
    const double f = normalizedFairness(
        options_.fmetric, speedups(obs.ips, obs.isolation_ips));
    return options_.w_t * t + options_.w_f * f;
}

Configuration
ClitePolicy::decide(const sim::IntervalObservation& obs)
{
    const double y = objective(obs);

    // Traditional BO bookkeeping: one scalar per evaluated config.
    configs_.push_back(obs.config);
    xs_.push_back(obs.config.normalizedVector());
    ys_.push_back(y);
    if (xs_.size() > options_.window) {
        configs_.erase(configs_.begin());
        xs_.erase(xs_.begin());
        ys_.erase(ys_.begin());
    }

    if (holding_) {
        // Resume sampling only if performance degrades noticeably.
        if (hold_reference_ < 0.0) {
            if (obs.config == hold_config_)
                hold_reference_ = y;
        } else if (y < hold_reference_ *
                           (1.0 - options_.reactivate_threshold)) {
            if (++strikes_ >= 2) {
                holding_ = false;
                strikes_ = 0;
                best_seen_ = -1.0;
                stall_ = 0;
                hold_reference_ = -1.0;
            }
        } else {
            strikes_ = 0;
        }
        if (holding_)
            return hold_config_;
    }

    // Convergence tracking.
    if (y > best_seen_ + 1e-3) {
        best_seen_ = y;
        stall_ = 0;
    } else {
        ++stall_;
    }

    // Random initialization phase (CLITE seeds its GP randomly).
    if (init_left_ > 0) {
        --init_left_;
        return space_.sample(rng_);
    }

    engine_.setSamples(xs_, ys_);

    if (stall_ >= options_.stall_intervals) {
        // Hold the best *observed* configuration (CLITE's decision
        // once sampling stops).
        std::size_t best_i = 0;
        for (std::size_t i = 1; i < ys_.size(); ++i)
            if (ys_[i] > ys_[best_i])
                best_i = i;
        holding_ = true;
        hold_config_ = configs_[best_i];
        hold_reference_ = -1.0;
        return hold_config_;
    }

    const Configuration& incumbent =
        configs_[static_cast<std::size_t>(
            std::max_element(ys_.begin(), ys_.end()) - ys_.begin())];
    std::vector<Configuration> candidates =
        candgen_.generate(incumbent, rng_);
    std::vector<RealVec> cx;
    cx.reserve(candidates.size());
    for (const auto& c : candidates)
        cx.push_back(c.normalizedVector());
    return candidates[engine_.suggestIndex(cx)];
}

void
ClitePolicy::reset()
{
    configs_.clear();
    xs_.clear();
    ys_.clear();
    init_left_ = options_.init_samples;
    best_seen_ = -1.0;
    stall_ = 0;
    holding_ = false;
    hold_reference_ = -1.0;
    strikes_ = 0;
    engine_ = bo::BoEngine();
    rng_ = Rng(options_.seed);
}

} // namespace policies
} // namespace satori
