#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

PartitioningPolicy::~PartitioningPolicy() = default;

} // namespace policies
} // namespace satori
