/**
 * @file
 * Private shared pieces of the SIMD kernel implementations: the
 * exp(-z) approximation constants, the scalar per-element helper
 * (used by simd::ref and by the vector TU's remainder loop, so both
 * run literally the same operations), and the declarations of the
 * AVX2 kernels defined in simd_avx2.cpp.
 *
 * This header is private to src/linalg/ - the analyzer's arch pack
 * keeps SIMD code confined there.
 */

#ifndef SATORI_SRC_LINALG_SIMD_KERNELS_HPP
#define SATORI_SRC_LINALG_SIMD_KERNELS_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace satori {
namespace linalg {
namespace simd {
namespace detail {

// exp(-z) approximation: Cody-Waite reduction against a split ln 2,
// then a degree-9 Taylor polynomial on r in [-ln2/2, ln2/2]
// (remainder < 1e-11 relative), then scaling by 2^k assembled from
// exponent bits. The constants and operation order are shared by the
// scalar and vector implementations so the two are bit-identical.
inline constexpr double kLog2E = 1.4426950408889634;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
/** 1.5 * 2^52: adding it forces round-to-nearest-integer in a double. */
inline constexpr double kShifter = 6755399441055744.0;
/** exp(-z) underflows to 0 beyond this; also bounds the 2^k exponent. */
inline constexpr double kZMax = 708.0;
inline constexpr double kExpC9 = 1.0 / 362880.0;
inline constexpr double kExpC8 = 1.0 / 40320.0;
inline constexpr double kExpC7 = 1.0 / 5040.0;
inline constexpr double kExpC6 = 1.0 / 720.0;
inline constexpr double kExpC5 = 1.0 / 120.0;
inline constexpr double kExpC4 = 1.0 / 24.0;
inline constexpr double kExpC3 = 1.0 / 6.0;
inline constexpr double kExpC2 = 0.5;

/** One element of fastExpNegInto: approximate exp(-z) for z >= 0. */
[[nodiscard]] inline double
expNegOne(double z)
{
    const double zc = z > kZMax ? kZMax : z;
    const double t = -zc;
    const double kd = t * kLog2E + kShifter;
    const double kf = kd - kShifter;
    const double r_hi = t - kf * kLn2Hi;
    const double r = r_hi - kf * kLn2Lo;
    double p = kExpC9;
    p = p * r + kExpC8;
    p = p * r + kExpC7;
    p = p * r + kExpC6;
    p = p * r + kExpC5;
    p = p * r + kExpC4;
    p = p * r + kExpC3;
    p = p * r + kExpC2;
    p = p * r + 1.0;
    p = p * r + 1.0;
    const auto ki = static_cast<std::int64_t>(kf);
    const std::uint64_t scale_bits =
        static_cast<std::uint64_t>(ki + 1023) << 52;
    double scale = 0.0;
    std::memcpy(&scale, &scale_bits, sizeof scale);
    const double out = p * scale;
    return z > kZMax ? 0.0 : out;
}

/** 1/3 as a multiplier so the Matern-5/2 polynomial needs no
 * per-element division; shared by scalar and vector paths. */
inline constexpr double kThird = 1.0 / 3.0;

/**
 * One element of matern52FromSqDistInto: the full Matern-5/2
 * covariance from a squared distance. The operation order here is
 * the contract the vector lanes replicate: z from sqrt then one
 * multiply, the polynomial as (1 + z) + (z*z)*(1/3), then two
 * multiplies against the exp approximation.
 */
[[nodiscard]] inline double
matern52One(double d2, double scaled_inv_ls, double signal_variance)
{
    const double z = std::sqrt(d2) * scaled_inv_ls;
    const double poly = (1.0 + z) + (z * z) * kThird;
    return (signal_variance * poly) * expNegOne(z);
}

} // namespace detail

#if defined(SATORI_SIMD_AVX2)
/** AVX2 implementations (src/linalg/simd_avx2.cpp; compiled with
 * -mavx2 and FP contraction off so lanes match the scalar ops). */
namespace avx2 {

void subScaled(double* y, const double* x, double a, std::size_t n);
void subScaled4(double* y, const double* x0, double a0,
                const double* x1, double a1, const double* x2,
                double a2, const double* x3, double a3, std::size_t n);
void divScalar(double* y, double d, std::size_t n);
void accumSqDiff(double* acc, const double* xs, double q, std::size_t n);
void sqDistInto(double* out, const double* const* xs, const double* q,
                std::size_t dims, std::size_t n);
void fmaAccum(double* acc, const double* xs, double a, std::size_t n);
void accumSquare(double* acc, const double* xs, std::size_t n);
void fastExpNegInto(double* out, const double* z, std::size_t n);
void matern52FromSqDistInto(double* out, const double* d2,
                            double scaled_inv_ls,
                            double signal_variance, std::size_t n);

} // namespace avx2
#endif // SATORI_SIMD_AVX2

} // namespace simd
} // namespace linalg
} // namespace satori

#endif // SATORI_SRC_LINALG_SIMD_KERNELS_HPP
