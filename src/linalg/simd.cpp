/**
 * @file
 * Scalar reference kernels and the runtime dispatch layer for
 * satori::linalg::simd. The dispatch decision (scalar vs AVX2) is
 * made once, at static-initialization time, from a build-time flag
 * (SATORI_SIMD_AVX2, set by CMake when SATORI_SIMD=ON and the
 * compiler accepts -mavx2) and a runtime CPUID check - so a binary
 * built with SIMD on still runs correctly, on the scalar path, on a
 * machine without AVX2.
 */

#include "satori/linalg/simd.hpp"

#include "simd_kernels.hpp"

namespace satori {
namespace linalg {
namespace simd {

namespace ref {

void
subScaled(double* y, const double* x, double a, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] -= a * x[i];
}

void
subScaled4(double* y, const double* x0, double a0, const double* x1,
           double a1, const double* x2, double a2, const double* x3,
           double a3, std::size_t n)
{
    // Element-for-element the sequence of four subScaled calls; only
    // the y traffic is fused.
    for (std::size_t i = 0; i < n; ++i) {
        double v = y[i];
        v -= a0 * x0[i];
        v -= a1 * x1[i];
        v -= a2 * x2[i];
        v -= a3 * x3[i];
        y[i] = v;
    }
}

void
divScalar(double* y, double d, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] /= d;
}

void
accumSqDiff(double* acc, const double* xs, double q, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double d = xs[i] - q;
        acc[i] += d * d;
    }
}

void
sqDistInto(double* out, const double* const* xs, const double* q,
           std::size_t dims, std::size_t n)
{
    // Per element: zero then ascending-d accumSqDiff, fused.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
            const double diff = xs[d][i] - q[d];
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

void
fmaAccum(double* acc, const double* xs, double a, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += a * xs[i];
}

void
accumSquare(double* acc, const double* xs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += xs[i] * xs[i];
}

void
fastExpNegInto(double* out, const double* z, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = detail::expNegOne(z[i]);
}

void
matern52FromSqDistInto(double* out, const double* d2,
                       double scaled_inv_ls, double signal_variance,
                       std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] =
            detail::matern52One(d2[i], scaled_inv_ls, signal_variance);
}

} // namespace ref

namespace {

bool
detectVectorized()
{
#if defined(SATORI_SIMD_AVX2)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

// Resolved once; every kernel branches on this predictable bool.
const bool kVectorized = detectVectorized();

} // namespace

bool
vectorized()
{
    return kVectorized;
}

#if defined(SATORI_SIMD_AVX2)

void
subScaled(double* y, const double* x, double a, std::size_t n)
{
    if (kVectorized)
        avx2::subScaled(y, x, a, n);
    else
        ref::subScaled(y, x, a, n);
}

void
subScaled4(double* y, const double* x0, double a0, const double* x1,
           double a1, const double* x2, double a2, const double* x3,
           double a3, std::size_t n)
{
    if (kVectorized)
        avx2::subScaled4(y, x0, a0, x1, a1, x2, a2, x3, a3, n);
    else
        ref::subScaled4(y, x0, a0, x1, a1, x2, a2, x3, a3, n);
}

void
divScalar(double* y, double d, std::size_t n)
{
    if (kVectorized)
        avx2::divScalar(y, d, n);
    else
        ref::divScalar(y, d, n);
}

void
accumSqDiff(double* acc, const double* xs, double q, std::size_t n)
{
    if (kVectorized)
        avx2::accumSqDiff(acc, xs, q, n);
    else
        ref::accumSqDiff(acc, xs, q, n);
}

void
sqDistInto(double* out, const double* const* xs, const double* q,
           std::size_t dims, std::size_t n)
{
    if (kVectorized)
        avx2::sqDistInto(out, xs, q, dims, n);
    else
        ref::sqDistInto(out, xs, q, dims, n);
}

void
fmaAccum(double* acc, const double* xs, double a, std::size_t n)
{
    if (kVectorized)
        avx2::fmaAccum(acc, xs, a, n);
    else
        ref::fmaAccum(acc, xs, a, n);
}

void
accumSquare(double* acc, const double* xs, std::size_t n)
{
    if (kVectorized)
        avx2::accumSquare(acc, xs, n);
    else
        ref::accumSquare(acc, xs, n);
}

void
fastExpNegInto(double* out, const double* z, std::size_t n)
{
    if (kVectorized)
        avx2::fastExpNegInto(out, z, n);
    else
        ref::fastExpNegInto(out, z, n);
}

void
matern52FromSqDistInto(double* out, const double* d2,
                       double scaled_inv_ls, double signal_variance,
                       std::size_t n)
{
    if (kVectorized)
        avx2::matern52FromSqDistInto(out, d2, scaled_inv_ls,
                                     signal_variance, n);
    else
        ref::matern52FromSqDistInto(out, d2, scaled_inv_ls,
                                    signal_variance, n);
}

#else // !SATORI_SIMD_AVX2

void
subScaled(double* y, const double* x, double a, std::size_t n)
{
    ref::subScaled(y, x, a, n);
}

void
subScaled4(double* y, const double* x0, double a0, const double* x1,
           double a1, const double* x2, double a2, const double* x3,
           double a3, std::size_t n)
{
    ref::subScaled4(y, x0, a0, x1, a1, x2, a2, x3, a3, n);
}

void
divScalar(double* y, double d, std::size_t n)
{
    ref::divScalar(y, d, n);
}

void
accumSqDiff(double* acc, const double* xs, double q, std::size_t n)
{
    ref::accumSqDiff(acc, xs, q, n);
}

void
sqDistInto(double* out, const double* const* xs, const double* q,
           std::size_t dims, std::size_t n)
{
    ref::sqDistInto(out, xs, q, dims, n);
}

void
fmaAccum(double* acc, const double* xs, double a, std::size_t n)
{
    ref::fmaAccum(acc, xs, a, n);
}

void
accumSquare(double* acc, const double* xs, std::size_t n)
{
    ref::accumSquare(acc, xs, n);
}

void
fastExpNegInto(double* out, const double* z, std::size_t n)
{
    ref::fastExpNegInto(out, z, n);
}

void
matern52FromSqDistInto(double* out, const double* d2,
                       double scaled_inv_ls, double signal_variance,
                       std::size_t n)
{
    ref::matern52FromSqDistInto(out, d2, scaled_inv_ls,
                                signal_variance, n);
}

#endif // SATORI_SIMD_AVX2

} // namespace simd
} // namespace linalg
} // namespace satori
