#include "satori/linalg/matrix.hpp"

#include "satori/common/logging.hpp"

#include <cmath>

namespace satori {
namespace linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

std::vector<double>
Matrix::multiply(const std::vector<double>& v) const
{
    SATORI_ASSERT(v.size() == cols_);
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c)
            sum += row[c] * v[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::multiply(const Matrix& other) const
{
    SATORI_ASSERT(other.rows_ == cols_);
    Matrix out(rows_, other.cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (std::abs(a) == 0.0)
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out(r, c) += a * other(k, c);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

void
Matrix::addDiagonal(double v)
{
    SATORI_ASSERT(rows_ == cols_);
    for (std::size_t i = 0; i < rows_; ++i)
        (*this)(i, i) += v;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    SATORI_ASSERT(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace linalg
} // namespace satori
