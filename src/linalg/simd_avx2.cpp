/**
 * @file
 * AVX2 implementations of the satori::linalg::simd kernels, written
 * with GCC/Clang portable vector extensions (no immintrin intrinsics
 * needed - the compiler maps 4-lane double vectors onto ymm registers
 * under -mavx2).
 *
 * This TU is compiled with `-mavx2 -ffp-contract=off` (see
 * src/CMakeLists.txt); everything else in the tree keeps the default
 * architecture, and the dispatcher in simd.cpp only calls in here
 * after a runtime CPUID check. FP contraction stays OFF because a
 * fused multiply-add rounds once where the scalar reference rounds
 * twice - it would silently break the bit-identical contract.
 *
 * Every loop body below performs, per lane, exactly the operation
 * sequence of the scalar reference in simd.cpp; remainder elements
 * (n % 4) run the very same scalar helpers. simd_test pins the
 * equivalence with memcmp.
 */

#if defined(SATORI_SIMD_AVX2)

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd_kernels.hpp"

namespace satori {
namespace linalg {
namespace simd {
namespace avx2 {

namespace {

using v4d = double __attribute__((vector_size(32)));
using v4i = std::int64_t __attribute__((vector_size(32)));

inline v4d
load4(const double* p)
{
    v4d v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline void
store4(double* p, v4d v)
{
    std::memcpy(p, &v, sizeof v);
}

inline v4d
broadcast(double a)
{
    return v4d{ a, a, a, a };
}

/** IEEE-correctly-rounded lane-wise sqrt (vsqrtpd) - bit-identical
 * to std::sqrt per lane, like the scalar helper. */
inline v4d
sqrt4(v4d v)
{
    return __builtin_ia32_sqrtpd256(v);
}

/**
 * Four lanes of detail::expNegOne - the same constants, the same
 * operation order. Shared by fastExpNegInto and the fused Matern
 * kernel so the exp lanes cannot drift apart.
 */
inline v4d
expNeg4(v4d zv)
{
    const v4d zmax = broadcast(detail::kZMax);
    const v4d log2e = broadcast(detail::kLog2E);
    const v4d shifter = broadcast(detail::kShifter);
    const v4d ln2hi = broadcast(detail::kLn2Hi);
    const v4d ln2lo = broadcast(detail::kLn2Lo);
    const v4d one = broadcast(1.0);
    // big = all-ones lanes where z > kZMax (flushed to 0 at the end)
    const v4i big = (v4i)(zv > zmax);
    const v4d zc = (v4d)(((v4i)zmax & big) | ((v4i)zv & ~big));
    const v4d t = -zc;
    const v4d kd = t * log2e + shifter;
    const v4d kf = kd - shifter;
    const v4d r_hi = t - kf * ln2hi;
    const v4d r = r_hi - kf * ln2lo;
    v4d p = broadcast(detail::kExpC9);
    p = p * r + broadcast(detail::kExpC8);
    p = p * r + broadcast(detail::kExpC7);
    p = p * r + broadcast(detail::kExpC6);
    p = p * r + broadcast(detail::kExpC5);
    p = p * r + broadcast(detail::kExpC4);
    p = p * r + broadcast(detail::kExpC3);
    p = p * r + broadcast(detail::kExpC2);
    p = p * r + one;
    p = p * r + one;
    const v4i ki = __builtin_convertvector(kf, v4i);
    const v4i scale_bits = (ki + 1023) << 52;
    const v4d scale = (v4d)scale_bits;
    const v4d res = p * scale;
    return (v4d)((v4i)res & ~big);
}

} // namespace

void
subScaled(double* y, const double* x, double a, std::size_t n)
{
    const v4d av = broadcast(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        store4(y + i, load4(y + i) - av * load4(x + i));
        store4(y + i + 4, load4(y + i + 4) - av * load4(x + i + 4));
    }
    for (; i + 4 <= n; i += 4)
        store4(y + i, load4(y + i) - av * load4(x + i));
    for (; i < n; ++i)
        y[i] -= a * x[i];
}

void
subScaled4(double* y, const double* x0, double a0, const double* x1,
           double a1, const double* x2, double a2, const double* x3,
           double a3, std::size_t n)
{
    // Per lane the exact sequence of four subScaled calls; y is
    // loaded and stored once per vector instead of four times, which
    // is the entire point - the triangular solves are bound on
    // accumulator-row traffic, not arithmetic.
    const v4d a0v = broadcast(a0);
    const v4d a1v = broadcast(a1);
    const v4d a2v = broadcast(a2);
    const v4d a3v = broadcast(a3);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        v4d v = load4(y + i);
        v = v - a0v * load4(x0 + i);
        v = v - a1v * load4(x1 + i);
        v = v - a2v * load4(x2 + i);
        v = v - a3v * load4(x3 + i);
        store4(y + i, v);
    }
    for (; i < n; ++i) {
        double v = y[i];
        v -= a0 * x0[i];
        v -= a1 * x1[i];
        v -= a2 * x2[i];
        v -= a3 * x3[i];
        y[i] = v;
    }
}

void
divScalar(double* y, double d, std::size_t n)
{
    const v4d dv = broadcast(d);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        store4(y + i, load4(y + i) / dv);
    for (; i < n; ++i)
        y[i] /= d;
}

void
accumSqDiff(double* acc, const double* xs, double q, std::size_t n)
{
    const v4d qv = broadcast(q);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const v4d dvec = load4(xs + i) - qv;
        store4(acc + i, load4(acc + i) + dvec * dvec);
    }
    for (; i < n; ++i) {
        const double d = xs[i] - q;
        acc[i] += d * d;
    }
}

void
sqDistInto(double* out, const double* const* xs, const double* q,
           std::size_t dims, std::size_t n)
{
    // Accumulates across dimensions in registers: per lane the exact
    // zero-then-ascending-d accumSqDiff sequence, with out written
    // once instead of once per dimension.
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        v4d acc = broadcast(0.0);
        for (std::size_t d = 0; d < dims; ++d) {
            const v4d diff = load4(xs[d] + i) - broadcast(q[d]);
            acc = acc + diff * diff;
        }
        store4(out + i, acc);
    }
    for (; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
            const double diff = xs[d][i] - q[d];
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

void
fmaAccum(double* acc, const double* xs, double a, std::size_t n)
{
    const v4d av = broadcast(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        store4(acc + i, load4(acc + i) + av * load4(xs + i));
        store4(acc + i + 4, load4(acc + i + 4) + av * load4(xs + i + 4));
    }
    for (; i + 4 <= n; i += 4)
        store4(acc + i, load4(acc + i) + av * load4(xs + i));
    for (; i < n; ++i)
        acc[i] += a * xs[i];
}

void
accumSquare(double* acc, const double* xs, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const v4d xv = load4(xs + i);
        store4(acc + i, load4(acc + i) + xv * xv);
    }
    for (; i < n; ++i)
        acc[i] += xs[i] * xs[i];
}

void
fastExpNegInto(double* out, const double* z, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        store4(out + i, expNeg4(load4(z + i)));
    for (; i < n; ++i)
        out[i] = detail::expNegOne(z[i]);
}

void
matern52FromSqDistInto(double* out, const double* d2,
                       double scaled_inv_ls, double signal_variance,
                       std::size_t n)
{
    // Vector transcription of detail::matern52One, lane by lane.
    const v4d cv = broadcast(scaled_inv_ls);
    const v4d sv = broadcast(signal_variance);
    const v4d one = broadcast(1.0);
    const v4d third = broadcast(detail::kThird);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const v4d zv = sqrt4(load4(d2 + i)) * cv;
        const v4d poly = (one + zv) + (zv * zv) * third;
        store4(out + i, (sv * poly) * expNeg4(zv));
    }
    for (; i < n; ++i)
        out[i] =
            detail::matern52One(d2[i], scaled_inv_ls, signal_variance);
}

} // namespace avx2
} // namespace simd
} // namespace linalg
} // namespace satori

#endif // SATORI_SIMD_AVX2
