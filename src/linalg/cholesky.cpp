#include "satori/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "satori/common/logging.hpp"

namespace satori {
namespace linalg {

Cholesky::Cholesky(Matrix a, double initial_jitter)
{
    SATORI_ASSERT(a.rows() == a.cols());
    if (tryFactorize(a, 0.0)) {
        jitter_ = 0.0;
        return;
    }
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < 12; ++attempt) {
        if (tryFactorize(a, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    SATORI_PANIC("Cholesky factorization failed even with large jitter; "
                 "matrix is not symmetric positive semi-definite");
}

bool
Cholesky::tryFactorize(const Matrix& a, double jitter)
{
    const std::size_t n = a.rows();
    l_ = Matrix(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (diag <= 0.0 || !std::isfinite(diag))
            return false;
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l_(i, k) * l_(j, k);
            l_(i, j) = sum / ljj;
        }
    }
    return true;
}

bool
Cholesky::update(const std::vector<double>& cross, double diag)
{
    const std::size_t n = l_.rows();
    SATORI_ASSERT(cross.size() == n);
    // The appended row of L is the forward-substitution solve
    // L row = cross - element for element the same recurrence a fresh
    // factorization runs for its last row, in the same order.
    const std::vector<double> row = solveLower(cross);
    // New pivot, accumulated exactly like tryFactorize's diagonal:
    // start from a(n, n) + jitter, subtract squares in column order.
    double pivot = diag + jitter_;
    for (std::size_t k = 0; k < n; ++k)
        pivot -= row[k] * row[k];
    if (pivot <= 0.0 || !std::isfinite(pivot))
        return false;
    Matrix grown(n + 1, n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            grown(i, j) = l_(i, j);
    for (std::size_t k = 0; k < n; ++k)
        grown(n, k) = row[k];
    grown(n, n) = std::sqrt(pivot);
    l_ = std::move(grown);
    return true;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double>& b) const
{
    const std::size_t n = l_.rows();
    SATORI_ASSERT(b.size() == n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l_(i, k) * y[k];
        y[i] = sum / l_(i, i);
    }
    return y;
}

Matrix
Cholesky::solveLowerMulti(const Matrix& b) const
{
    Matrix transposed;
    solveLowerMultiInto(b, transposed);
    return transposed.transposed();
}

void
Cholesky::solveLowerMultiInto(const Matrix& b, Matrix& out) const
{
    const std::size_t n = l_.rows();
    const std::size_t m = b.rows();
    SATORI_ASSERT(b.cols() == n);
    if (out.rows() != n || out.cols() != m)
        out = Matrix(n, m);
    // Row i of `out` holds element i of every solution, so the two
    // inner loops stream contiguously over all m systems at once.
    // Per system this is exactly solveLower(): seed with b, subtract
    // l(i,k) * y[k] in ascending k, divide by the pivot once. The
    // restrict-qualified row pointers (rows of `out` never overlap)
    // are what let the inner loops vectorize across systems.
    for (std::size_t i = 0; i < n; ++i) {
        double* __restrict row_i = out.rowPtr(i);
        for (std::size_t c = 0; c < m; ++c)
            row_i[c] = b(c, i);
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = l_(i, k);
            const double* __restrict row_k = out.rowPtr(k);
            for (std::size_t c = 0; c < m; ++c)
                row_i[c] -= lik * row_k[c];
        }
        const double lii = l_(i, i);
        for (std::size_t c = 0; c < m; ++c)
            row_i[c] /= lii;
    }
}

std::vector<double>
Cholesky::solveUpper(const std::vector<double>& b) const
{
    const std::size_t n = l_.rows();
    SATORI_ASSERT(b.size() == n);
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l_(k, ii) * x[k];
        x[ii] = sum / l_(ii, ii);
    }
    return x;
}

std::vector<double>
Cholesky::solve(const std::vector<double>& b) const
{
    return solveUpper(solveLower(b));
}

double
Cholesky::conditionEstimate() const
{
    if (l_.rows() == 0)
        return 1.0;
    double lo = l_(0, 0);
    double hi = l_(0, 0);
    for (std::size_t i = 1; i < l_.rows(); ++i) {
        lo = std::min(lo, l_(i, i));
        hi = std::max(hi, l_(i, i));
    }
    if (lo <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (hi / lo) * (hi / lo);
}

double
Cholesky::logDet() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        sum += std::log(l_(i, i));
    return 2.0 * sum;
}

} // namespace linalg
} // namespace satori
