#include "satori/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "satori/common/logging.hpp"

namespace satori {
namespace linalg {

Cholesky::Cholesky(Matrix a, double initial_jitter)
{
    SATORI_ASSERT(a.rows() == a.cols());
    if (tryFactorize(a, 0.0)) {
        jitter_ = 0.0;
        return;
    }
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < 12; ++attempt) {
        if (tryFactorize(a, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    SATORI_PANIC("Cholesky factorization failed even with large jitter; "
                 "matrix is not symmetric positive semi-definite");
}

bool
Cholesky::tryFactorize(const Matrix& a, double jitter)
{
    const std::size_t n = a.rows();
    l_ = Matrix(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (diag <= 0.0 || !std::isfinite(diag))
            return false;
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l_(i, k) * l_(j, k);
            l_(i, j) = sum / ljj;
        }
    }
    return true;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double>& b) const
{
    const std::size_t n = l_.rows();
    SATORI_ASSERT(b.size() == n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l_(i, k) * y[k];
        y[i] = sum / l_(i, i);
    }
    return y;
}

std::vector<double>
Cholesky::solveUpper(const std::vector<double>& b) const
{
    const std::size_t n = l_.rows();
    SATORI_ASSERT(b.size() == n);
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l_(k, ii) * x[k];
        x[ii] = sum / l_(ii, ii);
    }
    return x;
}

std::vector<double>
Cholesky::solve(const std::vector<double>& b) const
{
    return solveUpper(solveLower(b));
}

double
Cholesky::conditionEstimate() const
{
    if (l_.rows() == 0)
        return 1.0;
    double lo = l_(0, 0);
    double hi = l_(0, 0);
    for (std::size_t i = 1; i < l_.rows(); ++i) {
        lo = std::min(lo, l_(i, i));
        hi = std::max(hi, l_(i, i));
    }
    if (lo <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (hi / lo) * (hi / lo);
}

double
Cholesky::logDet() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        sum += std::log(l_(i, i));
    return 2.0 * sum;
}

} // namespace linalg
} // namespace satori
