#include "satori/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "satori/common/logging.hpp"
#include "satori/linalg/simd.hpp"

namespace satori {
namespace linalg {

namespace {

/** Packed-triangle length for an n-row factor. */
std::size_t
triSize(std::size_t n)
{
    return n * (n + 1) / 2;
}

/** A freshly produced factor diagonal must be a positive finite
 * number; anything else (0, negative, inf, nan) means the rotation
 * sweep broke down and the whole operation must be rejected. */
bool
diagOk(double d)
{
    return std::isfinite(d) && d > 0.0;
}

} // namespace

Cholesky::Cholesky(Matrix a, double initial_jitter)
{
    // satori-analyzer: allow(num-float-eq) -- integer dimensions
    SATORI_ASSERT(a.rows() == a.cols());
    if (tryFactorize(a, 0.0)) {
        jitter_ = 0.0;
        return;
    }
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < 12; ++attempt) {
        if (tryFactorize(a, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    SATORI_PANIC("Cholesky factorization failed even with large jitter; "
                 "matrix is not symmetric positive semi-definite");
}

bool
Cholesky::tryFactorize(const Matrix& a, double jitter)
{
    // Identical arithmetic, element for element and in the same order,
    // as the historical dense-Matrix implementation - only the storage
    // of L is packed. That keeps every factor (and everything solved
    // through it) bit-identical across the storage change.
    const std::size_t n = a.rows();
    n_ = n;
    tri_.assign(triSize(n), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double* lj = row(j);
        double diag = a(j, j) + jitter;
        for (std::size_t k = 0; k < j; ++k)
            diag -= lj[k] * lj[k];
        if (diag <= 0.0 || !std::isfinite(diag))
            return false;
        const double ljj = std::sqrt(diag);
        lj[j] = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double* li = row(i);
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= li[k] * lj[k];
            li[j] = sum / ljj;
        }
    }
    return true;
}

Matrix
Cholesky::factor() const
{
    Matrix l(n_, n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        const double* li = row(i);
        for (std::size_t j = 0; j <= i; ++j)
            l(i, j) = li[j];
    }
    return l;
}

bool
Cholesky::update(const std::vector<double>& cross, double diag)
{
    const std::size_t n = n_;
    SATORI_ASSERT(cross.size() == n);
    // The appended row of L is the forward-substitution solve
    // L row = cross - element for element the same recurrence a fresh
    // factorization runs for its last row, in the same order.
    const std::vector<double> new_row = solveLower(cross);
    // New pivot, accumulated exactly like tryFactorize's diagonal:
    // start from a(n, n) + jitter, subtract squares in column order.
    double pivot = diag + jitter_;
    for (std::size_t k = 0; k < n; ++k)
        pivot -= new_row[k] * new_row[k];
    if (pivot <= 0.0 || !std::isfinite(pivot))
        return false;
    // Append in O(n): grow the packed buffer by one row. Capacity is
    // grown geometrically by hand - vector::resize past capacity
    // allocates exactly the requested size, which would turn every
    // append into a full O(n^2) copy.
    const std::size_t new_size = triSize(n + 1);
    if (new_size > tri_.capacity())
        tri_.reserve(std::max(new_size, tri_.capacity() * 2));
    tri_.resize(new_size);
    n_ = n + 1;
    double* appended = row(n);
    std::copy(new_row.begin(), new_row.end(), appended);
    appended[n] = std::sqrt(pivot);
    return true;
}

bool
Cholesky::downdate()
{
    const std::size_t n = n_;
    SATORI_ASSERT(n >= 1);
    if (n == 1) {
        tri_.clear();
        n_ = 0;
        return true;
    }

    // Fast path: the evicted sample is uncorrelated with every other
    // (its factor column is exactly zero), so the trailing factor IS
    // the downdated factor and the sweep degenerates to a compaction.
    // Taking it explicitly (rather than rotating with s = 0) is what
    // makes this case bit-identical to a fresh factorization of the
    // trailing block: sqrt(d * d) need not return d bitwise.
    bool zero_column = true;
    for (std::size_t i = 1; i < n; ++i) {
        // satori-analyzer: allow(num-float-eq) -- exact-zero structure test
        if (row(i)[0] != 0.0) {
            zero_column = false;
            break;
        }
    }
    if (zero_column) {
        for (std::size_t i = 1; i < n; ++i) {
            const double* src = row(i);
            // The destination row ends where the source row starts, so
            // the ascending copy never reads clobbered data.
            std::copy(src + 1, src + i + 1, row(i - 1));
        }
        n_ = n - 1;
        tri_.resize(triSize(n_));
        return true;
    }

    // General case: the trailing factor L22 absorbs the evicted
    // column x as a rank-1 update (A22 = L22 L22^T + x x^T) via a
    // sweep of Givens rotations, one per new row. Row i of the old
    // factor becomes row i-1 of the new one: the carried x_i passes
    // through rotations 0..i-2 (parameters produced by earlier rows),
    // then the new diagonal r = sqrt(d^2 + x^2) yields rotation i-1.
    // The sweep writes into scratch and swaps only after every new
    // diagonal validated, so failure leaves the factor untouched.
    const std::size_t m = n - 1;
    sweep_scratch_.resize(triSize(m));
    rot_s_.resize(m);
    rot_ic_.resize(m);
    std::vector<double>& out = sweep_scratch_;
    double* const sb = rot_s_.data();
    double* const ib = rot_ic_.data();
    const auto dstRow = [&out](std::size_t r) {
        return out.data() + r * (r + 1) / 2;
    };

    // Rows run in interleaved blocks of 8: the rotations 0..i-2 shared
    // by the whole block stream in one loop with eight independent
    // carry chains (each rotation is a ~12-cycle serial dependency;
    // interleaving buys ~4x at n = 1000), then each row finishes
    // sequentially, publishing the block's rotation parameters in
    // order.
    std::size_t i = 1;
    for (; i + 8 <= n; i += 8) {
        const double* s0 = row(i);
        const double* s1 = row(i + 1);
        const double* s2 = row(i + 2);
        const double* s3 = row(i + 3);
        const double* s4 = row(i + 4);
        const double* s5 = row(i + 5);
        const double* s6 = row(i + 6);
        const double* s7 = row(i + 7);
        double* d0 = dstRow(i - 1);
        double* d1 = dstRow(i);
        double* d2 = dstRow(i + 1);
        double* d3 = dstRow(i + 2);
        double* d4 = dstRow(i + 3);
        double* d5 = dstRow(i + 4);
        double* d6 = dstRow(i + 5);
        double* d7 = dstRow(i + 6);
        double x0 = s0[0];
        double x1 = s1[0];
        double x2 = s2[0];
        double x3 = s3[0];
        double x4 = s4[0];
        double x5 = s5[0];
        double x6 = s6[0];
        double x7 = s7[0];
        const std::size_t m0 = i - 1;
        for (std::size_t k = 0; k < m0; ++k) {
            const double sk = sb[k];
            const double ik = ib[k];
            const double a0 = s0[k + 1];
            const double a1 = s1[k + 1];
            const double a2 = s2[k + 1];
            const double a3 = s3[k + 1];
            const double a4 = s4[k + 1];
            const double a5 = s5[k + 1];
            const double a6 = s6[k + 1];
            const double a7 = s7[k + 1];
            d0[k] = (a0 + sk * x0) * ik;
            x0 = (x0 - sk * a0) * ik;
            d1[k] = (a1 + sk * x1) * ik;
            x1 = (x1 - sk * a1) * ik;
            d2[k] = (a2 + sk * x2) * ik;
            x2 = (x2 - sk * a2) * ik;
            d3[k] = (a3 + sk * x3) * ik;
            x3 = (x3 - sk * a3) * ik;
            d4[k] = (a4 + sk * x4) * ik;
            x4 = (x4 - sk * a4) * ik;
            d5[k] = (a5 + sk * x5) * ik;
            x5 = (x5 - sk * a5) * ik;
            d6[k] = (a6 + sk * x6) * ik;
            x6 = (x6 - sk * a6) * ik;
            d7[k] = (a7 + sk * x7) * ik;
            x7 = (x7 - sk * a7) * ik;
        }
        const double* srcs[8] = { s0, s1, s2, s3, s4, s5, s6, s7 };
        double* dsts[8] = { d0, d1, d2, d3, d4, d5, d6, d7 };
        const double xs[8] = { x0, x1, x2, x3, x4, x5, x6, x7 };
        for (std::size_t r = 0; r < 8; ++r) {
            const double* src = srcs[r];
            double* dst = dsts[r];
            double xi = xs[r];
            for (std::size_t k = m0; k < m0 + r; ++k) {
                const double a = src[k + 1];
                dst[k] = (a + sb[k] * xi) * ib[k];
                xi = (xi - sb[k] * a) * ib[k];
            }
            const double diag = src[m0 + r + 1];
            const double rr = std::sqrt(diag * diag + xi * xi);
            if (!diagOk(rr))
                return false;
            dst[m0 + r] = rr;
            sb[m0 + r] = xi / diag;
            ib[m0 + r] = diag / rr;
        }
    }
    for (; i < n; ++i) {
        const double* src = row(i);
        double* dst = dstRow(i - 1);
        double xi = src[0];
        const std::size_t mi = i - 1;
        for (std::size_t k = 0; k < mi; ++k) {
            const double a = src[k + 1];
            dst[k] = (a + sb[k] * xi) * ib[k];
            xi = (xi - sb[k] * a) * ib[k];
        }
        const double diag = src[mi + 1];
        const double rr = std::sqrt(diag * diag + xi * xi);
        if (!diagOk(rr))
            return false;
        dst[mi] = rr;
        sb[mi] = xi / diag;
        ib[mi] = diag / rr;
    }

    tri_.swap(sweep_scratch_);
    n_ = m;
    return true;
}

bool
Cholesky::rankOneUpdate(const std::vector<double>& v)
{
    const std::size_t n = n_;
    SATORI_ASSERT(v.size() == n);
    sweep_scratch_.resize(triSize(n));
    rot_s_.resize(n);
    rot_ic_.resize(n);
    std::vector<double>& out = sweep_scratch_;
    double* const sb = rot_s_.data();
    double* const ib = rot_ic_.data();
    // Same rotation sweep as downdate() with x = v and no compaction:
    // r = sqrt(d^2 + x^2) is SPD-unconditional, so this fails only on
    // non-finite intermediates. Scratch + swap keeps failure clean.
    for (std::size_t i = 0; i < n; ++i) {
        const double* src = row(i);
        double* dst = out.data() + i * (i + 1) / 2;
        double xi = v[i];
        for (std::size_t k = 0; k < i; ++k) {
            const double a = src[k];
            dst[k] = (a + sb[k] * xi) * ib[k];
            xi = (xi - sb[k] * a) * ib[k];
        }
        const double diag = src[i];
        const double rr = std::sqrt(diag * diag + xi * xi);
        if (!diagOk(rr))
            return false;
        dst[i] = rr;
        sb[i] = xi / diag;
        ib[i] = diag / rr;
    }
    tri_.swap(sweep_scratch_);
    return true;
}

bool
Cholesky::rankOneDowndate(const std::vector<double>& v)
{
    const std::size_t n = n_;
    SATORI_ASSERT(v.size() == n);
    sweep_scratch_.resize(triSize(n));
    rot_s_.resize(n);
    rot_ic_.resize(n);
    std::vector<double>& out = sweep_scratch_;
    double* const sb = rot_s_.data();
    double* const ib = rot_ic_.data();
    // Hyperbolic sweep: rotation i zeroes the carried x_i against the
    // diagonal with s = x/d, c = sqrt(1 - s^2). A - v v^T losing
    // positive definiteness shows up as |s| >= 1, which is refused
    // here before it can turn into a nan diagonal.
    for (std::size_t i = 0; i < n; ++i) {
        const double* src = row(i);
        double* dst = out.data() + i * (i + 1) / 2;
        double xi = v[i];
        for (std::size_t k = 0; k < i; ++k) {
            const double a = src[k];
            dst[k] = (a - sb[k] * xi) * ib[k];
            xi = (xi - sb[k] * a) * ib[k];
        }
        const double diag = src[i];
        const double s = xi / diag;
        if (!std::isfinite(s) || std::fabs(s) >= 1.0)
            return false;
        const double c = std::sqrt((1.0 - s) * (1.0 + s));
        const double nd = diag * c;
        if (!diagOk(nd))
            return false;
        dst[i] = nd;
        sb[i] = s;
        ib[i] = 1.0 / c;
    }
    tri_.swap(sweep_scratch_);
    return true;
}

std::vector<double>
Cholesky::solveLower(const std::vector<double>& b) const
{
    const std::size_t n = n_;
    SATORI_ASSERT(b.size() == n);
    std::vector<double> y(n);
    // Interleaved blocks of 8 rows: one pass over y[k] feeds eight
    // independent accumulator chains, then the in-block triangle
    // finishes sequentially. Every row still subtracts l(i,k) * y[k]
    // in ascending k and divides once - bit-identical to the naive
    // forward substitution, ~2x faster at n = 1000.
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const double* r0 = row(i);
        const double* r1 = row(i + 1);
        const double* r2 = row(i + 2);
        const double* r3 = row(i + 3);
        const double* r4 = row(i + 4);
        const double* r5 = row(i + 5);
        const double* r6 = row(i + 6);
        const double* r7 = row(i + 7);
        double s0 = b[i];
        double s1 = b[i + 1];
        double s2 = b[i + 2];
        double s3 = b[i + 3];
        double s4 = b[i + 4];
        double s5 = b[i + 5];
        double s6 = b[i + 6];
        double s7 = b[i + 7];
        for (std::size_t k = 0; k < i; ++k) {
            const double yk = y[k];
            s0 -= r0[k] * yk;
            s1 -= r1[k] * yk;
            s2 -= r2[k] * yk;
            s3 -= r3[k] * yk;
            s4 -= r4[k] * yk;
            s5 -= r5[k] * yk;
            s6 -= r6[k] * yk;
            s7 -= r7[k] * yk;
        }
        const double* rows8[8] = { r0, r1, r2, r3, r4, r5, r6, r7 };
        const double sums[8] = { s0, s1, s2, s3, s4, s5, s6, s7 };
        for (std::size_t r = 0; r < 8; ++r) {
            double sum = sums[r];
            const double* lr = rows8[r];
            for (std::size_t k = i; k < i + r; ++k)
                sum -= lr[k] * y[k];
            y[i + r] = sum / lr[i + r];
        }
    }
    for (; i < n; ++i) {
        const double* li = row(i);
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= li[k] * y[k];
        y[i] = sum / li[i];
    }
    return y;
}

Matrix
Cholesky::solveLowerMulti(const Matrix& b) const
{
    Matrix transposed;
    solveLowerMultiInto(b, transposed);
    return transposed.transposed();
}

void
Cholesky::solveLowerMultiInto(const Matrix& b, Matrix& out) const
{
    const std::size_t n = n_;
    const std::size_t m = b.rows();
    SATORI_ASSERT(b.cols() == n);
    if (out.rows() != n || out.cols() != m)
        out = Matrix(n, m);
    // Row i of `out` holds element i of every solution, so the two
    // inner loops stream contiguously over all m systems at once.
    // Per system this is exactly solveLower(): seed with b, subtract
    // l(i,k) * y[k] in ascending k, divide by the pivot once. The
    // simd kernels are lane-parallel with identical per-element ops,
    // so the result stays bit-identical to m scalar solves.
    for (std::size_t i = 0; i < n; ++i) {
        const double* li = row(i);
        double* row_i = out.rowPtr(i);
        for (std::size_t c = 0; c < m; ++c)
            row_i[c] = b(c, i);
        // k-unrolled by 4 via the fused axpy: per element the same
        // ascending-k sequence, so results are unchanged bit-for-bit
        // while row_i round-trips to memory 4x less often.
        std::size_t k = 0;
        for (; k + 4 <= i; k += 4)
            simd::subScaled4(row_i, out.rowPtr(k), li[k],
                             out.rowPtr(k + 1), li[k + 1],
                             out.rowPtr(k + 2), li[k + 2],
                             out.rowPtr(k + 3), li[k + 3], m);
        for (; k < i; ++k)
            simd::subScaled(row_i, out.rowPtr(k), li[k], m);
        simd::divScalar(row_i, li[i], m);
    }
}

void
Cholesky::solveLowerMultiTransposedInto(const Matrix& bt, Matrix& out) const
{
    const std::size_t n = n_;
    SATORI_ASSERT(bt.rows() == n);
    const std::size_t m = bt.cols();
    if (out.rows() != n || out.cols() != m)
        out = Matrix(n, m);
    // Same substitution as solveLowerMultiInto; the right-hand sides
    // already sit element-major, so seeding row i is a straight copy
    // of bt's row i instead of a strided gather.
    for (std::size_t i = 0; i < n; ++i) {
        const double* li = row(i);
        double* row_i = out.rowPtr(i);
        const double* bt_i = bt.rowPtr(i);
        std::copy(bt_i, bt_i + m, row_i);
        // Same 4-way k-unroll as solveLowerMultiInto: bit-identical
        // per element, 4x fewer row_i round-trips.
        std::size_t k = 0;
        for (; k + 4 <= i; k += 4)
            simd::subScaled4(row_i, out.rowPtr(k), li[k],
                             out.rowPtr(k + 1), li[k + 1],
                             out.rowPtr(k + 2), li[k + 2],
                             out.rowPtr(k + 3), li[k + 3], m);
        for (; k < i; ++k)
            simd::subScaled(row_i, out.rowPtr(k), li[k], m);
        simd::divScalar(row_i, li[i], m);
    }
}

std::vector<double>
Cholesky::solveUpper(const std::vector<double>& b) const
{
    const std::size_t n = n_;
    SATORI_ASSERT(b.size() == n);
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= row(k)[ii] * x[k];
        x[ii] = sum / row(ii)[ii];
    }
    return x;
}

std::vector<double>
Cholesky::solveUpperBlocked(const std::vector<double>& b) const
{
    const std::size_t n = n_;
    SATORI_ASSERT(b.size() == n);
    std::vector<double> x(n);
    // Deterministic reassociated order (NOT solveUpper's): columns in
    // blocks of 4, descending. Each column's accumulator is seeded
    // with b, the block's shared tail (k past the block) streams once
    // in ascending k into all four accumulators - four adjacent
    // column entries per factor row, so the packed triangle is read
    // once per block instead of once per column - and the in-block
    // triangle finishes descending. ~3x faster than solveUpper at
    // n = 1000; bit-stable across runs, not bit-equal to solveUpper.
    std::size_t ii = n;
    while (ii >= 4) {
        const std::size_t j = ii - 4;
        double s0 = b[j];
        double s1 = b[j + 1];
        double s2 = b[j + 2];
        double s3 = b[j + 3];
        for (std::size_t k = ii; k < n; ++k) {
            const double* rk = row(k) + j;
            const double xk = x[k];
            s0 -= rk[0] * xk;
            s1 -= rk[1] * xk;
            s2 -= rk[2] * xk;
            s3 -= rk[3] * xk;
        }
        const double* r3 = row(j + 3);
        x[j + 3] = s3 / r3[j + 3];
        s2 -= r3[j + 2] * x[j + 3];
        s1 -= r3[j + 1] * x[j + 3];
        s0 -= r3[j] * x[j + 3];
        const double* r2 = row(j + 2);
        x[j + 2] = s2 / r2[j + 2];
        s1 -= r2[j + 1] * x[j + 2];
        s0 -= r2[j] * x[j + 2];
        const double* r1 = row(j + 1);
        x[j + 1] = s1 / r1[j + 1];
        s0 -= r1[j] * x[j + 1];
        x[j] = s0 / row(j)[j];
        ii = j;
    }
    while (ii-- > 0) {
        double sum = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= row(k)[ii] * x[k];
        x[ii] = sum / row(ii)[ii];
    }
    return x;
}

std::vector<double>
Cholesky::solve(const std::vector<double>& b) const
{
    return solveUpper(solveLower(b));
}

std::vector<double>
Cholesky::solveBlocked(const std::vector<double>& b) const
{
    return solveUpperBlocked(solveLower(b));
}

double
Cholesky::conditionEstimate() const
{
    if (n_ == 0)
        return 1.0;
    double lo = row(0)[0];
    double hi = row(0)[0];
    for (std::size_t i = 1; i < n_; ++i) {
        const double d = row(i)[i];
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    if (lo <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (hi / lo) * (hi / lo);
}

double
Cholesky::logDet() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        sum += std::log(row(i)[i]);
    return 2.0 * sum;
}

} // namespace linalg
} // namespace satori
