#include "satori/metrics/metrics.hpp"

#include <numeric>

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"

namespace satori {

std::vector<double>
speedups(const std::vector<Ips>& ips, const std::vector<Ips>& isolation_ips)
{
    SATORI_ASSERT(ips.size() == isolation_ips.size());
    std::vector<double> out(ips.size());
    for (std::size_t i = 0; i < ips.size(); ++i) {
        SATORI_ASSERT(isolation_ips[i] > 0.0);
        out[i] = ips[i] / isolation_ips[i];
    }
    return out;
}

double
jainFairnessIndex(const std::vector<double>& speedup)
{
    if (speedup.size() < 2)
        return 1.0; // a single job is trivially treated fairly
    const double cov = coefficientOfVariation(speedup);
    return 1.0 / (1.0 + cov * cov);
}

double
oneMinusCovFairness(const std::vector<double>& speedup)
{
    if (speedup.size() < 2)
        return 1.0;
    return 1.0 - coefficientOfVariation(speedup);
}

double
fairness(FairnessMetric metric, const std::vector<double>& speedup)
{
    switch (metric) {
      case FairnessMetric::JainIndex:
        return jainFairnessIndex(speedup);
      case FairnessMetric::OneMinusCov:
        return oneMinusCovFairness(speedup);
    }
    SATORI_PANIC("unknown FairnessMetric");
}

double
throughput(ThroughputMetric metric, const std::vector<Ips>& ips,
           const std::vector<Ips>& isolation_ips)
{
    switch (metric) {
      case ThroughputMetric::SumIps:
        return std::accumulate(ips.begin(), ips.end(), 0.0);
      case ThroughputMetric::GeomeanSpeedup:
        return geomean(speedups(ips, isolation_ips));
      case ThroughputMetric::HarmonicSpeedup:
        return harmonicMean(speedups(ips, isolation_ips));
    }
    SATORI_PANIC("unknown ThroughputMetric");
}

double
colocationThroughputScale(std::size_t num_jobs)
{
    SATORI_ASSERT(num_jobs >= 1);
    return std::min(1.0, 2.0 / static_cast<double>(num_jobs) + 0.2);
}

double
normalizedThroughput(ThroughputMetric metric, const std::vector<Ips>& ips,
                     const std::vector<Ips>& isolation_ips)
{
    switch (metric) {
      case ThroughputMetric::SumIps: {
        const double total = std::accumulate(ips.begin(), ips.end(), 0.0);
        const double iso_total = std::accumulate(isolation_ips.begin(),
                                                 isolation_ips.end(), 0.0);
        SATORI_ASSERT(iso_total > 0.0);
        const double scale = colocationThroughputScale(ips.size());
        return clamp(total / iso_total / scale, 0.0, 1.0);
      }
      case ThroughputMetric::GeomeanSpeedup:
      case ThroughputMetric::HarmonicSpeedup: {
        const double scale = colocationThroughputScale(ips.size());
        return clamp(throughput(metric, ips, isolation_ips) / scale, 0.0,
                     1.0);
      }
    }
    SATORI_PANIC("unknown ThroughputMetric");
}

double
normalizedFairness(FairnessMetric metric, const std::vector<double>& speedup)
{
    return clamp(fairness(metric, speedup), 0.0, 1.0);
}

} // namespace satori
