/**
 * @file
 * The per-interval observation record shared by the whole control
 * plane: everything a partitioning policy may base decisions on.
 *
 * The type lives in the config layer (pure data over Configuration
 * and the common scalar types) so that core, policies, and sim can
 * all speak it without any of them including the others — the
 * architecture DAG forbids core → sim, and this record is exactly
 * the seam that edge used to smuggle through.
 */

#ifndef SATORI_CONFIG_OBSERVATION_HPP
#define SATORI_CONFIG_OBSERVATION_HPP

#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"

namespace satori {

/**
 * Everything a partitioning policy sees about one controller
 * interval. Policies must base decisions only on these observables
 * (the oracle, which peeks at the model, is constructed with
 * privileged access instead).
 */
struct IntervalObservation
{
    /** Simulated time at the *end* of the interval. */
    Seconds time = 0.0;

    /** Interval length. */
    Seconds dt = kDefaultIntervalSeconds;

    /** The configuration that was in force during the interval. */
    Configuration config;

    /** Measured per-job IPS over the interval. */
    std::vector<Ips> ips;

    /** Isolation-baseline IPS per job (last recorded baseline). */
    std::vector<Ips> isolation_ips;
};

// The record predates the layering split, when it lived next to
// PerfMonitor in sim/monitor.hpp; sim-side and policy code still
// name it sim::IntervalObservation.
namespace sim {
using satori::IntervalObservation;
} // namespace sim

} // namespace satori

#endif // SATORI_CONFIG_OBSERVATION_HPP
