/**
 * @file
 * A resource-partitioning configuration: how many units of every
 * shared resource each co-located job receives (Sec. II).
 */

#ifndef SATORI_CONFIG_CONFIGURATION_HPP
#define SATORI_CONFIG_CONFIGURATION_HPP

#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/platform.hpp"

namespace satori {

/**
 * One permutation of resource allocation of all available resources
 * to all co-located jobs. Every job receives at least one unit of
 * every resource and the units of each resource are fully assigned.
 *
 * Stored as allocation[resource][job] in integer units.
 */
class Configuration
{
  public:
    /** An empty configuration (no jobs/resources). */
    Configuration() = default;

    /**
     * Construct from explicit unit assignments.
     *
     * @param alloc alloc[r][j] = units of resource r given to job j.
     */
    explicit Configuration(std::vector<std::vector<int>> alloc);

    /** Number of co-located jobs. */
    [[nodiscard]] std::size_t numJobs() const;

    /** Number of resources. */
    [[nodiscard]] std::size_t numResources() const { return alloc_.size(); }

    /** Units of resource @p r given to job @p j. */
    [[nodiscard]] int units(ResourceIndex r, JobIndex j) const;

    /** Mutable unit count (validity must be restored by the caller). */
    int& units(ResourceIndex r, JobIndex j);

    /** The allocation row for resource @p r (one entry per job). */
    [[nodiscard]] const std::vector<int>& resourceRow(ResourceIndex r) const;

    /** Total units assigned for resource @p r. */
    [[nodiscard]] int totalUnits(ResourceIndex r) const;

    /**
     * True if the configuration is well-formed for @p platform and
     * @p num_jobs: right shape, every job gets >= 1 unit of every
     * resource, all units fully assigned.
     */
    [[nodiscard]] bool isValidFor(const PlatformSpec& platform,
                    std::size_t num_jobs) const;

    /**
     * The S_init configuration: every resource divided as equally as
     * possible among jobs (Algorithm 1); leftovers go to the
     * lowest-indexed jobs.
     */
    [[nodiscard]] static Configuration equalPartition(const PlatformSpec& platform,
                                        std::size_t num_jobs);

    /**
     * Flatten to a share-normalized real vector of dimension
     * numResources x numJobs: element (r * numJobs + j) is job j's
     * fraction of resource r. This is the GP input representation and
     * the space in which the paper's Fig. 15 distances are computed
     * (scaled back to units there).
     */
    [[nodiscard]] RealVec normalizedVector() const;

    /**
     * Euclidean distance between two configurations in *unit* space
     * (the Fig. 15 metric: 15-dimensional vectors of unit counts).
     */
    [[nodiscard]] static double distance(const Configuration& a, const Configuration& b);

    /**
     * L1 (total moved units) distance between two configurations -
     * the natural measure of reconfiguration effort.
     */
    [[nodiscard]] static int l1Distance(const Configuration& a, const Configuration& b);

    /**
     * Transfer one unit of resource @p r from job @p from to job @p to.
     * @return false (and leave the configuration unchanged) if @p from
     * has only one unit left.
     */
    bool transferUnit(ResourceIndex r, JobIndex from, JobIndex to);

    /** Compact human-readable rendering, e.g. "[5,5|6,5|5,5]". */
    [[nodiscard]] std::string toString() const;

    /** Structural equality. */
    bool operator==(const Configuration& other) const;

  private:
    std::vector<std::vector<int>> alloc_;
};

} // namespace satori

#endif // SATORI_CONFIG_CONFIGURATION_HPP
