/**
 * @file
 * Description of the partitionable resources of a CMP server.
 *
 * Mirrors the paper's testbed (Sec. IV): an Intel Xeon Skylake with
 * 10 physical cores (partitioned with taskset), an 11-way shared LLC
 * (partitioned with Intel CAT), and memory bandwidth in 10% steps
 * (partitioned with Intel MBA).
 */

#ifndef SATORI_CONFIG_PLATFORM_HPP
#define SATORI_CONFIG_PLATFORM_HPP

#include <string>
#include <vector>

#include "satori/common/types.hpp"

namespace satori {

/** Kinds of partitionable resources the simulator understands. */
enum class ResourceKind
{
    Cores,          ///< Physical cores (taskset affinity).
    LlcWays,        ///< Last-level cache ways (Intel CAT).
    MemBandwidth,   ///< Memory bandwidth units (Intel MBA, 10% steps).
    PowerCap,       ///< Power budget units (Intel RAPL) - extension.
};

/** Human-readable name of a resource kind. */
[[nodiscard]] std::string resourceKindName(ResourceKind kind);

/** One partitionable resource: a kind and its number of integer units. */
struct ResourceSpec
{
    ResourceKind kind;
    int units;
};

/**
 * The set of partitionable resources on a server.
 *
 * A PlatformSpec defines the shape of the configuration space; the
 * performance semantics of the units (GHz, GB/s, ...) live in
 * perfmodel::MachineParams.
 */
class PlatformSpec
{
  public:
    /** An empty platform (no resources); add with addResource(). */
    PlatformSpec() = default;

    /** Construct from a resource list. */
    explicit PlatformSpec(std::vector<ResourceSpec> resources);

    /** Append one resource. @pre units >= 1. */
    void addResource(ResourceKind kind, int units);

    /** Number of partitionable resources. */
    [[nodiscard]] std::size_t numResources() const { return resources_.size(); }

    /** Resource descriptor by index. */
    [[nodiscard]] const ResourceSpec& resource(ResourceIndex r) const;

    /** Units of resource @p r. */
    [[nodiscard]] int units(ResourceIndex r) const { return resource(r).units; }

    /** All resources. */
    [[nodiscard]] const std::vector<ResourceSpec>& resources() const { return resources_; }

    /**
     * Index of the resource with the given kind, or -1 if absent.
     * Platforms never contain the same kind twice.
     */
    [[nodiscard]] int indexOf(ResourceKind kind) const;

    /**
     * A restricted copy containing only the resources in @p kinds
     * (used for the single/two-resource ablation of Sec. V).
     */
    [[nodiscard]] PlatformSpec restrictedTo(const std::vector<ResourceKind>& kinds) const;

    /**
     * The paper's testbed: 10 cores, 11 LLC ways, 10 memory-bandwidth
     * units (Sec. IV).
     */
    [[nodiscard]] static PlatformSpec paperTestbed();

    /**
     * A smaller platform (8/8/8) used by multi-mix benchmark sweeps to
     * keep exhaustive-oracle runs fast; shape-preserving.
     */
    [[nodiscard]] static PlatformSpec smallTestbed();

    /**
     * The paper's testbed extended with an 8-unit RAPL-style power
     * budget - the fourth knob the conclusion says SATORI can handle.
     */
    [[nodiscard]] static PlatformSpec extendedTestbed();

  private:
    std::vector<ResourceSpec> resources_;
};

} // namespace satori

#endif // SATORI_CONFIG_PLATFORM_HPP
