/**
 * @file
 * Enumeration of the resource-partitioning configuration space.
 *
 * The space of one resource with U units split among M jobs (>= 1 unit
 * each) is the set of compositions of U into M positive parts, of size
 * C(U-1, M-1); the joint space is the Cartesian product over resources
 * (Sec. II: S_conf = prod_r C(U_r - 1, M - 1)).
 */

#ifndef SATORI_CONFIG_ENUMERATION_HPP
#define SATORI_CONFIG_ENUMERATION_HPP

#include <cstdint>
#include <vector>

#include "satori/common/rng.hpp"
#include "satori/config/configuration.hpp"
#include "satori/config/platform.hpp"

namespace satori {

/**
 * Enumerates compositions of @p units into @p parts positive integer
 * parts in lexicographic order, with O(parts) ranking/unranking.
 */
class CompositionSpace
{
  public:
    /** @pre units >= parts >= 1. */
    CompositionSpace(int units, int parts);

    /** Number of compositions: C(units-1, parts-1). */
    [[nodiscard]] std::uint64_t size() const { return size_; }

    /** The @p index-th composition in lexicographic order. */
    [[nodiscard]] std::vector<int> at(std::uint64_t index) const;

    /** Rank of a composition (inverse of at()). */
    [[nodiscard]] std::uint64_t rank(const std::vector<int>& composition) const;

    /** A uniformly random composition. */
    [[nodiscard]] std::vector<int> sample(Rng& rng) const;

    /** Units being split. */
    [[nodiscard]] int units() const { return units_; }

    /** Number of parts. */
    [[nodiscard]] int parts() const { return parts_; }

  private:
    int units_;
    int parts_;
    std::uint64_t size_;
};

/**
 * The joint configuration space over all resources of a platform for
 * a fixed number of co-located jobs. Provides size, index<->config
 * bijection, uniform sampling, and neighborhood generation.
 */
class ConfigurationSpace
{
  public:
    ConfigurationSpace(const PlatformSpec& platform, std::size_t num_jobs);

    /** Total number of valid configurations (Sec. II formula). */
    [[nodiscard]] std::uint64_t size() const { return size_; }

    /** The @p index-th configuration (mixed-radix over resources). */
    [[nodiscard]] Configuration at(std::uint64_t index) const;

    /** Rank of a configuration (inverse of at()). */
    [[nodiscard]] std::uint64_t rank(const Configuration& config) const;

    /** A uniformly random configuration. */
    [[nodiscard]] Configuration sample(Rng& rng) const;

    /**
     * All configurations reachable from @p config by moving exactly
     * one unit of one resource between two jobs (the local moves used
     * by BO candidate refinement and the gradient-descent baseline).
     */
    [[nodiscard]] std::vector<Configuration> neighbors(const Configuration& config) const;

    /** Number of co-located jobs. */
    [[nodiscard]] std::size_t numJobs() const { return num_jobs_; }

    /** The platform this space was built for. */
    [[nodiscard]] const PlatformSpec& platform() const { return platform_; }

    /**
     * Closed-form size of a space without building it, e.g. for the
     * search-space-growth table of Sec. II.
     */
    [[nodiscard]] static std::uint64_t sizeOf(const PlatformSpec& platform,
                                std::size_t num_jobs);

  private:
    PlatformSpec platform_;
    std::size_t num_jobs_;
    std::vector<CompositionSpace> per_resource_;
    std::uint64_t size_;
};

} // namespace satori

#endif // SATORI_CONFIG_ENUMERATION_HPP
