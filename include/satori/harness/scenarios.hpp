/**
 * @file
 * Standard experiment scenarios: server construction and a policy
 * factory covering every technique in the paper's evaluation
 * (Sec. IV: Random, dCAT, CoPart, PARTIES, the three Oracles, and
 * the SATORI variants).
 */

#ifndef SATORI_HARNESS_SCENARIOS_HPP
#define SATORI_HARNESS_SCENARIOS_HPP

#include <memory>
#include <string>
#include <vector>

#include "satori/core/controller.hpp"
#include "satori/policies/policy.hpp"
#include "satori/sim/server.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {

/** Build a server for a mix on a platform with a deterministic seed. */
[[nodiscard]] sim::SimulatedServer makeServer(const PlatformSpec& platform,
                                const workloads::JobMix& mix,
                                std::uint64_t seed = 42,
                                double noise_sigma = 0.04);

/**
 * Construct a policy by name. Recognized names:
 * "Equal", "Random", "dCAT", "CoPart", "PARTIES", "CLITE",
 * "SATORI", "SATORI-vanilla" (resilience layer off),
 * "SATORI-static", "Throughput-SATORI", "Fairness-SATORI",
 * "Balanced-Oracle", "Throughput-Oracle", "Fairness-Oracle".
 *
 * @param server Needed by oracle policies (privileged model access);
 *        must outlive the returned policy. Non-oracle policies only
 *        use its platform/job count.
 * @param satori_options Used for the SATORI variants (mode overridden
 *        to match the requested variant).
 */
std::unique_ptr<policies::PartitioningPolicy> makePolicy(
    const std::string& name, const sim::SimulatedServer& server,
    core::SatoriOptions satori_options = {});

/** The paper's Fig. 7 comparison set, ordered as plotted. */
[[nodiscard]] std::vector<std::string> comparisonPolicyNames();

/** All SATORI variants. */
[[nodiscard]] std::vector<std::string> satoriVariantNames();

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_SCENARIOS_HPP
