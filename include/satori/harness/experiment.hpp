/**
 * @file
 * The experiment runner: drives a (server, policy) pair through the
 * paper's measurement loop - 100 ms controller intervals, isolation
 * baselines re-recorded every reset period (Algorithm 1 line 12) -
 * and aggregates throughput/fairness statistics.
 */

#ifndef SATORI_HARNESS_EXPERIMENT_HPP
#define SATORI_HARNESS_EXPERIMENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "satori/common/stats.hpp"
#include "satori/common/types.hpp"
#include "satori/faults/injector.hpp"
#include "satori/metrics/metrics.hpp"
#include "satori/policies/policy.hpp"
#include "satori/harness/trace.hpp"
#include "satori/sim/monitor.hpp"

namespace satori {

namespace persist {
class Checkpointer;
} // namespace persist

namespace harness {

/** Experiment knobs. */
struct ExperimentOptions
{
    /** Simulated run length. */
    Seconds duration = 20.0;

    /** Controller interval (the paper's 0.1 s). */
    Seconds dt = kDefaultIntervalSeconds;

    /** Isolation-baseline re-record period (paper: T_E = 10 s). */
    Seconds baseline_reset_period = 10.0;

    /** Initial span excluded from aggregates (controller warm-up). */
    Seconds warmup = 2.0;

    ThroughputMetric tmetric = ThroughputMetric::SumIps;
    FairnessMetric fmetric = FairnessMetric::JainIndex;

    /** Retain full per-interval time series in the result. */
    bool record_series = false;

    /**
     * Optional per-interval hook, called after the policy decided
     * (for figure-specific instrumentation).
     */
    std::function<void(const sim::IntervalObservation&, double t_norm,
                       double f_norm)>
        on_interval;

    /**
     * Optional trace sink: when set, every interval is appended as a
     * TraceRecord (time, config, per-job IPS/speedups, metrics). The
     * writer must outlive the run.
     */
    TraceWriter* trace = nullptr;

    /**
     * Optional fault injector: when set, platform faults are applied
     * before each interval, the policy sees the injector's perturbed
     * telemetry, and decisions go through the injector's (possibly
     * failing) actuation path. Scoring always uses the true
     * observation. The injector must outlive the run. Announced job
     * churn re-records the isolation baseline (Algorithm 1 line 12).
     */
    faults::FaultInjector* faults = nullptr;

    /**
     * Optional durability: when set, every interval is appended to
     * the checkpointer's WAL and controller state is snapshotted on
     * its cadence, so a killed run can resume with --resume and
     * produce a byte-identical decision trace. The policy must
     * return supportsPersistence(). On resume, trace rows before the
     * resumed snapshot are regenerated from the WAL (the on_interval
     * hook is not re-invoked for them), and re-executed intervals are
     * verified bitwise against the WAL's records. The checkpointer
     * must outlive the run.
     */
    persist::Checkpointer* checkpoint = nullptr;
};

/** Aggregated outcome of one experiment. */
struct ExperimentResult
{
    std::string policy_name;
    std::string mix_label;

    /** Post-warmup means of normalized throughput / fairness. */
    double mean_throughput = 0.0;
    double mean_fairness = 0.0;

    /** Mean of the balanced objective 0.5 T + 0.5 F. */
    double mean_objective = 0.0;

    /** Per-job mean speedups (vs isolation baseline). */
    std::vector<double> job_mean_speedups;

    /** The worst job's mean speedup (Fig. 9 metric). */
    double worst_job_speedup = 0.0;

    /** Full distributional statistics (post-warmup). */
    OnlineStats throughput_stats;
    OnlineStats fairness_stats;

    /** Time series (only if record_series was set). */
    TimeSeries throughput_series;
    TimeSeries fairness_series;
};

/** Drives policies through simulated co-location runs. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentOptions options = {});

    /**
     * Run @p policy on @p server for the configured duration. The
     * server is mutated (time advances); use a fresh server per run
     * for apples-to-apples policy comparisons.
     */
    [[nodiscard]] ExperimentResult run(sim::SimulatedServer& server,
                         policies::PartitioningPolicy& policy,
                         const std::string& mix_label = "") const;

    /** The options in force. */
    [[nodiscard]] const ExperimentOptions& options() const { return options_; }

  private:
    ExperimentOptions options_;
};

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_EXPERIMENT_HPP
