/**
 * @file
 * Multi-seed repetition: run the same (platform, mix, policy)
 * scenario under several RNG seeds and report means with normal
 * confidence intervals, so policy comparisons can be stated with
 * statistical backing rather than single-run point estimates.
 */

#ifndef SATORI_HARNESS_REPEAT_HPP
#define SATORI_HARNESS_REPEAT_HPP

#include <string>
#include <vector>

#include "satori/core/controller.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {

/** Mean and half-width of a ~95% normal confidence interval. */
struct Estimate
{
    double mean = 0.0;
    double ci95 = 0.0; ///< 1.96 * stderr; 0 with fewer than 2 runs.

    /** "m ± c" rendering with the given precision. */
    [[nodiscard]] std::string toString(int precision = 3) const;
};

/** Aggregated multi-seed outcome of one policy on one scenario. */
struct RepeatedResult
{
    std::string policy;
    std::size_t runs = 0;
    Estimate throughput; ///< Normalized mean throughput per run.
    Estimate fairness;
    Estimate objective;  ///< 0.5 T + 0.5 F.

    /**
     * True when this result's objective is higher than @p other's by
     * more than the sum of both confidence half-widths - a
     * conservative "statistically clearly better" check.
     */
    [[nodiscard]] bool clearlyBeats(const RepeatedResult& other) const;
};

/**
 * Run @p policy_name on the scenario once per seed in
 * [seed0, seed0 + runs) and aggregate.
 *
 * @p threads caps the worker pool for the runs (0 = one worker per
 * hardware thread, or SATORI_THREADS when set). Each run's seed and
 * result slot derive from its index and the per-run statistics are
 * folded in index order afterwards, so the aggregate is bit-identical
 * at every thread count. Runs fall back to serial execution whenever
 * @p options carries shared mutable sinks (trace, faults,
 * on_interval) - those hooks are written for one run at a time.
 */
RepeatedResult repeatPolicy(const PlatformSpec& platform,
                            const workloads::JobMix& mix,
                            const std::string& policy_name,
                            const ExperimentOptions& options,
                            std::size_t runs, std::uint64_t seed0 = 42,
                            core::SatoriOptions satori_options = {},
                            std::size_t threads = 1);

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_REPEAT_HPP
