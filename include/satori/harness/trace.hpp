/**
 * @file
 * Structured experiment tracing: per-interval records (time, config,
 * per-job IPS/speedups, metrics, weights) streamed to CSV or JSON
 * Lines, so runs can be analyzed or re-plotted outside the harness.
 */

#ifndef SATORI_HARNESS_TRACE_HPP
#define SATORI_HARNESS_TRACE_HPP

#include <fstream>
#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"

namespace satori {
namespace harness {

/** One interval's trace record. */
struct TraceRecord
{
    Seconds time = 0.0;
    std::string policy;
    Configuration config;
    std::vector<Ips> ips;
    std::vector<double> speedups;
    double throughput = 0.0; ///< Normalized.
    double fairness = 0.0;
    double w_t = 0.5; ///< Weights, when the policy exposes them.
    double w_f = 0.5;
    bool settled = false;

    /**
     * Faults injected during the interval, as the injector's compact
     * flags (e.g. "spike(j0)|noact"); empty for a clean interval or
     * an un-instrumented run.
     */
    std::string faults;
};

/** Output encoding for a trace file. */
enum class TraceFormat
{
    Csv,       ///< One flat row per interval.
    JsonLines, ///< One JSON object per line.
};

/**
 * Streams TraceRecords to a file. The writer is format-stable: the
 * CSV header (or JSON keys) are fixed by the first record's job
 * count.
 *
 * Records are formatted into an in-memory buffer and written to the
 * file every flush_every records (and on flush()/destruction) rather
 * than per interval, so tracing a 100 ms decision loop does not put
 * a filesystem round-trip on every control interval.
 *
 * Durability: records stream into "<path>.tmp"; close() (or the
 * destructor) renames the finished file into place, so readers never
 * observe a partially written trace and a crashed run leaves at most
 * a stale .tmp behind. Every write is checked - a full disk or a
 * revoked mount raises FatalError naming the file and errno instead
 * of silently truncating the trace.
 */
class TraceWriter
{
  public:
    /**
     * Open "<path>.tmp" for writing; close() installs @p path.
     * @throws FatalError (with errno) if the file cannot be created.
     *
     * @param flush_every Records buffered between writes to the file;
     *        0 buffers the whole run until flush()/destruction.
     */
    TraceWriter(const std::string& path, TraceFormat format,
                std::size_t flush_every = 256);

    /** Finalizes via close(); failures are reported to stderr. */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one record (buffered; see flush_every). */
    void write(const TraceRecord& record);

    /** Records written so far. */
    [[nodiscard]] std::size_t count() const { return count_; }

    /** Write buffered records to the .tmp file and flush it. */
    void flush();

    /**
     * Flush, close the .tmp file, and atomically rename it to the
     * final path. Idempotent; called by the destructor if the caller
     * did not. @throws FatalError (with errno) on any failure.
     */
    void close();

  private:
    void writeCsvHeader(const TraceRecord& record);
    void writeCsv(const TraceRecord& record);
    void writeJson(const TraceRecord& record);

    std::string path_;     ///< Final path installed by close().
    std::string tmp_path_; ///< In-progress file (path_ + ".tmp").
    std::ofstream out_;
    TraceFormat format_;
    std::size_t flush_every_;
    std::string buffer_;
    std::size_t buffered_ = 0; ///< Records in buffer_ since last flush.
    std::size_t count_ = 0;
    bool header_written_ = false;
    bool closed_ = false;
};

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_TRACE_HPP
