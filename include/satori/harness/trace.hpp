/**
 * @file
 * Structured experiment tracing: per-interval records (time, config,
 * per-job IPS/speedups, metrics, weights) streamed to CSV or JSON
 * Lines, so runs can be analyzed or re-plotted outside the harness.
 */

#ifndef SATORI_HARNESS_TRACE_HPP
#define SATORI_HARNESS_TRACE_HPP

#include <fstream>
#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"

namespace satori {
namespace harness {

/** One interval's trace record. */
struct TraceRecord
{
    Seconds time = 0.0;
    std::string policy;
    Configuration config;
    std::vector<Ips> ips;
    std::vector<double> speedups;
    double throughput = 0.0; ///< Normalized.
    double fairness = 0.0;
    double w_t = 0.5; ///< Weights, when the policy exposes them.
    double w_f = 0.5;
    bool settled = false;

    /**
     * Faults injected during the interval, as the injector's compact
     * flags (e.g. "spike(j0)|noact"); empty for a clean interval or
     * an un-instrumented run.
     */
    std::string faults;
};

/** Output encoding for a trace file. */
enum class TraceFormat
{
    Csv,       ///< One flat row per interval.
    JsonLines, ///< One JSON object per line.
};

/**
 * Streams TraceRecords to a file. The writer is format-stable: the
 * CSV header (or JSON keys) are fixed by the first record's job
 * count.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing. @throws FatalError if the file cannot
     * be created.
     */
    TraceWriter(const std::string& path, TraceFormat format);

    /** Append one record. */
    void write(const TraceRecord& record);

    /** Records written so far. */
    [[nodiscard]] std::size_t count() const { return count_; }

    /** Flush buffered output. */
    void flush();

  private:
    void writeCsvHeader(const TraceRecord& record);
    void writeCsv(const TraceRecord& record);
    void writeJson(const TraceRecord& record);

    std::ofstream out_;
    TraceFormat format_;
    std::size_t count_ = 0;
    bool header_written_ = false;
};

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_TRACE_HPP
