/**
 * @file
 * Back-compat alias: the thread pool moved to satori::common (see
 * satori/common/parallel.hpp for the determinism contract) so the bo
 * layer can share it. Harness code keeps spelling harness::ThreadPool
 * / harness::parallelFor; both resolve to the common implementation.
 */

#ifndef SATORI_HARNESS_PARALLEL_HPP
#define SATORI_HARNESS_PARALLEL_HPP

#include "satori/common/parallel.hpp"

namespace satori {
namespace harness {

using common::defaultThreadCount;
using common::parallelFor;
using common::ThreadPool;

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_PARALLEL_HPP
