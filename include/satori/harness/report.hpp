/**
 * @file
 * Comparison reporting: runs a set of policies plus the Balanced
 * Oracle on identical copies of a scenario and expresses results as
 * "% of Balanced Oracle" - the normalization every evaluation figure
 * in the paper uses (Sec. IV).
 */

#ifndef SATORI_HARNESS_REPORT_HPP
#define SATORI_HARNESS_REPORT_HPP

#include <string>
#include <vector>

#include "satori/core/controller.hpp"
#include "satori/harness/experiment.hpp"
#include "satori/workloads/mixes.hpp"

namespace satori {
namespace harness {

/** One policy's outcome on one mix, normalized to the oracle. */
struct PolicyScore
{
    std::string policy;
    ExperimentResult result;
    double throughput_pct = 0.0; ///< mean T / oracle mean T.
    double fairness_pct = 0.0;   ///< mean F / oracle mean F.
    double worst_job_pct = 0.0;  ///< worst-job speedup / oracle's.
};

/** A full comparison on one mix. */
struct MixComparison
{
    std::string mix_label;
    ExperimentResult oracle; ///< The Balanced Oracle run.
    std::vector<PolicyScore> scores;

    /** Score for @p policy; throws if absent. */
    [[nodiscard]] const PolicyScore& score(const std::string& policy) const;
};

/**
 * Run every policy in @p policy_names and the Balanced Oracle on
 * identical fresh servers (same platform, mix, seed, noise stream)
 * and normalize against the oracle.
 *
 * @param satori_options Applied to SATORI-variant policies.
 */
MixComparison comparePolicies(const PlatformSpec& platform,
                              const workloads::JobMix& mix,
                              const std::vector<std::string>& policy_names,
                              const ExperimentOptions& options,
                              std::uint64_t seed = 42,
                              core::SatoriOptions satori_options = {});

/** Mean of a member across comparisons (aggregate-figure helper). */
[[nodiscard]] double meanThroughputPct(const std::vector<MixComparison>& comps,
                         const std::string& policy);

/** Mean fairness %-of-oracle across comparisons. */
[[nodiscard]] double meanFairnessPct(const std::vector<MixComparison>& comps,
                       const std::string& policy);

/** Mean worst-job %-of-oracle across comparisons. */
[[nodiscard]] double meanWorstJobPct(const std::vector<MixComparison>& comps,
                       const std::string& policy);

} // namespace harness
} // namespace satori

#endif // SATORI_HARNESS_REPORT_HPP
