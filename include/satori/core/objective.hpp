/**
 * @file
 * SATORI's configurable multi-goal objective function (Sec. III-B,
 * Eq. 2): f(x) = sum_k W_k * Goal_k(x), over goals normalized to
 * [0, 1]. Throughput and fairness are built in; additional goals
 * (e.g. energy efficiency) can be registered with a user evaluator,
 * realizing the extensibility claim.
 */

#ifndef SATORI_CORE_OBJECTIVE_HPP
#define SATORI_CORE_OBJECTIVE_HPP

#include <functional>
#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/observation.hpp"
#include "satori/metrics/metrics.hpp"

namespace satori {
namespace core {

/**
 * A user-registered optimization goal beyond throughput/fairness.
 * Extra goals receive a fixed weight share; the dynamic T/F weights
 * are scaled into the remaining share.
 */
struct ExtraGoal
{
    /** Display name, e.g. "energy". */
    std::string name;

    /** Fixed share of the total weight budget, in (0, 1). */
    double weight_share = 0.0;

    /**
     * Evaluator mapping an interval observation to a normalized
     * [0, 1] goal value (1 = best).
     */
    std::function<double(const IntervalObservation&)> evaluator;
};

/**
 * Evaluates the per-goal values of an interval and combines them
 * with supplied weights (Eq. 2).
 */
class ObjectiveSpec
{
  public:
    /**
     * @param tmetric Throughput metric (paper default: sum of IPS).
     * @param fmetric Fairness metric (paper default: Jain's index).
     * @param extras Additional goals; their weight shares must sum
     *        to < 1, leaving room for throughput and fairness.
     */
    ObjectiveSpec(ThroughputMetric tmetric = ThroughputMetric::SumIps,
                  FairnessMetric fmetric = FairnessMetric::JainIndex,
                  std::vector<ExtraGoal> extras = {});

    /** Total goals: 2 built-ins + extras. */
    [[nodiscard]] std::size_t numGoals() const { return 2 + extras_.size(); }

    /**
     * Normalized per-goal values for one interval:
     * index 0 = throughput, 1 = fairness, 2.. = extras.
     */
    [[nodiscard]] std::vector<double> goalValues(
        const IntervalObservation& obs) const;

    /**
     * Full weight vector given the dynamic throughput weight
     * @p w_t and fairness weight @p w_f: extras keep their fixed
     * shares; (w_t, w_f) are scaled into the remaining budget.
     * @pre w_t + w_f ~ 1.
     */
    [[nodiscard]] std::vector<double> weightVector(double w_t, double w_f) const;

    /** Combined objective value: dot(weights, goals) (Eq. 2). */
    [[nodiscard]] static double combine(const std::vector<double>& weights,
                          const std::vector<double>& goals);

    /** Throughput metric in use. */
    [[nodiscard]] ThroughputMetric throughputMetric() const { return tmetric_; }

    /** Fairness metric in use. */
    [[nodiscard]] FairnessMetric fairnessMetric() const { return fmetric_; }

  private:
    ThroughputMetric tmetric_;
    FairnessMetric fmetric_;
    std::vector<ExtraGoal> extras_;
    double extra_share_ = 0.0;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_OBJECTIVE_HPP
