/**
 * @file
 * The SATORI controller (Algorithm 1): BO-driven joint exploration of
 * the multi-resource partitioning space with a dynamically
 * re-prioritized throughput+fairness objective.
 */

#ifndef SATORI_CORE_CONTROLLER_HPP
#define SATORI_CORE_CONTROLLER_HPP

#include <memory>
#include <vector>

#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/core/change_detector.hpp"
#include "satori/core/goal_record.hpp"
#include "satori/core/objective.hpp"
#include "satori/core/telemetry_guard.hpp"
#include "satori/core/weights.hpp"
#include "satori/core/policy.hpp"

namespace satori {
namespace core {

/** Which goal regime a SATORI instance runs in (Sec. IV variants). */
enum class GoalMode
{
    Balanced,       ///< Dynamic W_T/W_F re-prioritization (SATORI).
    StaticEqual,    ///< Fixed 0.5/0.5 ("SATORI w/o prioritization").
    ThroughputOnly, ///< W_T = 1, W_F = 0 ("Throughput SATORI").
    FairnessOnly,   ///< W_T = 0, W_F = 1 ("Fairness SATORI").
};

/** Printable name of a goal mode variant. */
[[nodiscard]] std::string goalModeName(GoalMode mode);

/**
 * Hardening against unreliable telemetry and actuation (none of this
 * exists in the paper; it is what an online deployment needs when its
 * pqos/CAT/MBA substrate misbehaves).
 */
struct ResilienceOptions
{
    /** Telemetry validation/repair in front of every decide(). */
    TelemetryGuardOptions guard;

    /**
     * Actuation verification: when the configuration observed in
     * force (IntervalObservation::config) is not the one last
     * requested, re-issue the request up to this many consecutive
     * times before adopting the observed configuration as the
     * operating point. 0 disables verification.
     */
    std::size_t actuation_retry = 3;

    /**
     * Degraded mode: after this many consecutive unusable telemetry
     * intervals, fall back to the equal partition and freeze all GP /
     * weight / goal-record updates until samples turn healthy again.
     * 0 disables the fallback.
     */
    std::size_t degraded_after = 10;

    /** Consecutive healthy intervals that end degraded mode. */
    std::size_t recover_after = 3;

    /** Everything off: the paper's original (vanilla) controller. */
    [[nodiscard]] static ResilienceOptions vanilla()
    {
        ResilienceOptions r;
        r.guard.enabled = false;
        r.actuation_retry = 0;
        r.degraded_after = 0;
        return r;
    }
};

/** Everything tunable about a SATORI instance. */
struct SatoriOptions
{
    GoalMode mode = GoalMode::Balanced;
    WeightController::Options weights;
    bo::EngineOptions engine;
    bo::CandidateOptions candidates;
    ObjectiveSpec objective;

    /** Samples retained for proxy-model reconstruction. */
    std::size_t window = 120;

    /** RNG seed for candidate sampling. */
    std::uint64_t seed = 7;

    /** Probe points kept for Fig. 17(b) proxy-change diagnostics. */
    std::size_t num_probes = 48;

    /**
     * Convergence detection (Sec. V): once the best balanced
     * objective has not improved for this many iterations, SATORI
     * settles on the incumbent configuration and stops updating the
     * GP ("avoiding frequent updates to the GP model after the
     * optimal configuration detection"). 0 disables settling.
     */
    std::size_t stall_intervals = 12;

    /** Minimum samples before settling is allowed. */
    std::size_t min_explore_samples = 40;

    /**
     * Reconfiguration-aware acquisition: acquisition scores are
     * reduced by this much per unit of allocation moved relative to
     * the currently running configuration, reflecting the transient
     * cost of migrations and cache re-warming on real hardware.
     */
    double switch_penalty = 0.0;

    /**
     * While exploring, run the incumbent-best configuration every
     * this many decisions instead of the acquisition suggestion, so
     * jobs are not stuck on speculative configurations throughout a
     * search burst (0 disables interleaving).
     */
    std::size_t exploit_period = 0;

    /**
     * Intervals each explored configuration is held before the next
     * suggestion, amortizing the reconfiguration transient and
     * averaging measurement noise over repeated samples.
     */
    std::size_t dwell_intervals = 1;

    /** Maximum structured seed configurations evaluated at warm-up. */
    std::size_t max_seeds = 9;

    /**
     * Uncertainty discount applied when selecting the incumbent or
     * the settle configuration from noisy records: score = mean -
     * kappa / sqrt(effective evaluations). Guards against settling on
     * a configuration that measured well once by luck.
     */
    double incumbent_kappa = 0.04;

    /**
     * Fractional drop of the measured balanced objective below its
     * settled reference that re-activates exploration (the paper:
     * SATORI "is invoked only when the performance of a specific job
     * changes significantly or the job mix changes"). Two consecutive
     * violating intervals are required to filter noise.
     */
    double reactivate_threshold = 0.08;

    /**
     * Per-job trigger (the paper: SATORI is re-invoked "when the
     * performance of a specific job changes significantly"): relative
     * IPS change of any job versus its settled reference that
     * re-activates exploration, in either direction (0 disables).
     */
    double reactivate_job_threshold = 0.0;

    /**
     * Use a two-sided CUSUM detector on the balanced objective for
     * reactivation instead of the fixed-threshold rule - more robust
     * under heavy measurement noise, slightly slower to react.
     */
    bool use_cusum_reactivation = false;

    /** CUSUM tuning (when use_cusum_reactivation is set). */
    ChangeDetectorOptions cusum;

    /**
     * On reactivation, trim the goal records to this many most-recent
     * samples so measurements from the stale program phase do not
     * drag the incumbent selection (0 keeps everything).
     */
    std::size_t reactivate_keep_samples = 30;

    /**
     * Hard cap on an exploration burst: after this many exploring
     * iterations SATORI settles on the best configuration found so
     * far even if the search was still improving, bounding the time
     * jobs spend under speculative configurations.
     */
    std::size_t burst_max_intervals = 20;

    /** Telemetry/actuation hardening (on by default). */
    ResilienceOptions resilience;
};

/** Per-iteration internals exposed for the paper's analysis figures. */
struct SatoriDiagnostics
{
    WeightComponents weights;        ///< Fig. 14(a) decomposition.
    double objective_value = 0.0;    ///< Fig. 17(a) trajectory.
    double throughput = 0.0;         ///< Normalized T of last interval.
    double fairness = 0.0;           ///< Normalized F of last interval.
    double proxy_change_pct = 0.0;   ///< Fig. 17(b): mean |d mean| %.
    std::size_t num_samples = 0;     ///< Proxy-model training size.
    bool settled = false;            ///< True while exploration is off.

    // Resilience state (cumulative counters since reset()).
    bool degraded = false;                  ///< In fallback this interval.
    std::size_t degraded_entries = 0;       ///< Times fallback engaged.
    std::size_t actuation_mismatches = 0;   ///< Observed != requested.
    std::size_t actuation_retries = 0;      ///< Re-issued requests.
    std::size_t unusable_intervals = 0;     ///< Telemetry intervals skipped.
};

/**
 * SATORI: the paper's controller, as a PartitioningPolicy.
 *
 * Each decide() call implements one iteration of Algorithm 1:
 * record the just-measured throughput/fairness for the configuration
 * that ran, regenerate the objective function from the per-goal
 * records under the current dynamic weights, software-reconstruct
 * the GP proxy model, maximize the acquisition function over a
 * candidate set, and return the next configuration to run.
 */
class SatoriController final : public PartitioningPolicy
{
  public:
    /**
     * @param platform The server's partitionable resources.
     * @param num_jobs Number of co-located jobs.
     * @param options Tuning; defaults match the paper (T_P = 1 s,
     *        T_E = 10 s, Matern 5/2, EI).
     */
    SatoriController(const PlatformSpec& platform, std::size_t num_jobs,
                     SatoriOptions options = {});

    [[nodiscard]] std::string name() const override;
    Configuration decide(const IntervalObservation& obs) override;
    void reset() override;

    /** Diagnostics of the most recent iteration. */
    [[nodiscard]] const SatoriDiagnostics& diagnostics() const { return diagnostics_; }

    /** The configuration space being explored. */
    [[nodiscard]] const ConfigurationSpace& space() const { return space_; }

    /** The options in force. */
    [[nodiscard]] const SatoriOptions& options() const { return options_; }

    /** The telemetry guard (activity counters for tests/benches). */
    [[nodiscard]] const TelemetryGuard& telemetryGuard() const { return guard_; }

    /** True while the degraded equal-partition fallback is active. */
    [[nodiscard]] bool degraded() const { return degraded_; }

    /** Restored instances continue bit-identically. */
    [[nodiscard]] bool supportsPersistence() const override { return true; }

    /**
     * Serialize every cross-interval field: the BO engine recipe, the
     * goal records, weight clocks, RNG streams, settle/reactivation
     * state, the telemetry guard, and the resilience counters.
     * Construction-derived state (seeds, probes, the space) is not
     * saved; restoreState requires an identically constructed
     * instance.
     */
    void saveState(persist::StateWriter& w) const override;

    /** Restore state saved by saveState. */
    void restoreState(persist::StateReader& r) override;

  private:
    /** Current (w_t, w_f) per the goal mode and weight controller. */
    std::pair<double, double> currentWeights(double throughput,
                                             double fairness);

    /** Algorithm 1 proper, fed only guard-approved observations. */
    Configuration decideCore(const IntervalObservation& obs);

    /** Record a sample and advance the weight clock (retry paths). */
    void recordOnly(const IntervalObservation& obs);

    /**
     * Emit one decision-audit record (observability only; gated on
     * the channel being enabled, no-op in SATORI_OBS=OFF builds).
     */
    void emitObsAudit(const IntervalObservation& observation,
                      SampleHealth health, const Configuration& decision,
                      const char* outcome) const;

    /** The configuration returned when learning is impossible. */
    [[nodiscard]] const Configuration& holdCourse() const;

    SatoriOptions options_;
    ConfigurationSpace space_;
    bo::CandidateGenerator candgen_;
    bo::BoEngine engine_;
    GoalRecorder recorder_;
    WeightController weight_controller_;
    Rng rng_;

    std::vector<Configuration> seeds_;
    std::size_t next_seed_ = 0;

    std::vector<RealVec> probes_;
    std::vector<double> last_probe_means_;

    // Convergence / settling state (Sec. V overhead optimization).
    bool settled_ = false;
    Configuration settled_config_;
    double settled_ref_objective_ = -1.0;
    std::vector<Ips> settled_ref_ips_;
    int reactivate_strikes_ = 0;
    int job_strikes_ = 0;
    int settled_warmup_ = 0; ///< Intervals until refs are anchored.
    ChangeDetector cusum_;
    double best_balanced_ = -1.0;
    std::size_t stall_counter_ = 0;
    std::size_t explore_steps_ = 0;
    std::size_t burst_len_ = 0;
    Configuration last_decision_;
    std::size_t dwell_left_ = 0;

    // Resilience state (telemetry guard + actuation verification +
    // degraded fallback).
    TelemetryGuard guard_;
    Configuration equal_config_;
    bool degraded_ = false;
    std::size_t unusable_streak_ = 0;
    std::size_t healthy_streak_ = 0;
    Configuration expected_config_;
    bool has_expected_ = false;
    std::size_t actuation_retries_ = 0;

    /// decide() invocations since construction/reset (audit records).
    std::size_t decide_calls_ = 0;

    /// How decideCore produced its last decision (audit records).
    const char* last_outcome_ = "";

    SatoriDiagnostics diagnostics_;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_CONTROLLER_HPP
