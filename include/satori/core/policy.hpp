/**
 * @file
 * The interface every resource-partitioning policy implements:
 * observe one controller interval, return the configuration for the
 * next interval. SATORI, the baselines, and the oracles all plug in
 * here, so the experiment harness treats them uniformly.
 *
 * The interface lives in core (not satori::policies) so the SATORI
 * controller can implement it without core depending on the
 * policies subsystem, which sits above core in the architecture DAG
 * and is free to include sim for its privileged baselines.
 */

#ifndef SATORI_CORE_POLICY_HPP
#define SATORI_CORE_POLICY_HPP

#include <string>

#include "satori/config/configuration.hpp"
#include "satori/config/observation.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace core {

/**
 * A dynamic resource-partitioning policy.
 *
 * The harness calls decide() once per controller interval (100 ms by
 * default) with the measurements of the interval that just elapsed;
 * the returned configuration is applied for the next interval -
 * matching the paper's deployment model where jobs keep running on
 * the previous allocation while the controller deliberates.
 */
class PartitioningPolicy
{
  public:
    virtual ~PartitioningPolicy();

    /** Short policy name used in result tables ("SATORI", "dCAT"...). */
    [[nodiscard]] virtual std::string name() const = 0;

    /** Choose the configuration for the next interval. */
    virtual Configuration decide(const IntervalObservation& obs) = 0;

    /**
     * Forget learned state (called between experiments and on job
     * churn for policies without built-in adaptation).
     */
    virtual void reset() {}

    /**
     * True if this policy implements saveState()/restoreState() such
     * that a restored instance continues bit-identically. Policies
     * that return false cannot run under --checkpoint-dir.
     */
    [[nodiscard]] virtual bool supportsPersistence() const { return false; }

    /**
     * Serialize all cross-interval state (checkpoint recovery). Only
     * meaningful when supportsPersistence() is true; the default
     * writes nothing.
     */
    virtual void saveState(persist::StateWriter& w) const { (void)w; }

    /** Restore state saved by saveState on an identically
     *  constructed instance. The default reads nothing. */
    virtual void restoreState(persist::StateReader& r) { (void)r; }
};

} // namespace core

// Concrete policies live in satori::policies; the interface keeps
// its historical name there too.
namespace policies {
using core::PartitioningPolicy;
} // namespace policies

} // namespace satori

#endif // SATORI_CORE_POLICY_HPP
