/**
 * @file
 * Telemetry validation in front of the controller: a guard layer that
 * sanitizes one IntervalObservation before any of its values reach
 * the goal recorder or the GP.
 *
 * A real deployment's pqos counters drop reads, return NaN, freeze,
 * and spike; a controller that feeds such samples into its proxy
 * model learns garbage. The guard applies, per job:
 *
 *   - rejection of non-finite or non-positive IPS values;
 *   - stale-counter detection (a noisy counter never repeats exactly;
 *     freeze_run identical reads in a row mark the stream stale);
 *   - a Hampel outlier gate (deviation from the rolling median beyond
 *     hampel_threshold scaled-MAD sigmas);
 *   - last-good-sample substitution, bounded by a staleness budget so
 *     a genuine regime shift is eventually accepted instead of being
 *     filtered forever.
 *
 * Size-mismatched observations (wrong job count) are rejected
 * outright. The guard reports each interval as Healthy, Repaired
 * (some values substituted), or Unusable (the controller should not
 * learn from it at all).
 */

#ifndef SATORI_CORE_TELEMETRY_GUARD_HPP
#define SATORI_CORE_TELEMETRY_GUARD_HPP

#include <cstddef>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/observation.hpp"

namespace satori {
namespace persist {
class StateWriter;
class StateReader;
} // namespace persist
} // namespace satori

namespace satori {
namespace core {

/** Tuning knobs of the telemetry guard. */
struct TelemetryGuardOptions
{
    /** Master switch; off reproduces the unguarded (vanilla) path. */
    bool enabled = true;

    /**
     * Consecutive bad samples of one job repaired by last-good
     * substitution before the guard stops repairing: a finite value
     * is then accepted as a regime shift, a non-finite one marks the
     * interval unusable.
     */
    std::size_t staleness_budget = 5;

    /**
     * Hampel gate: reject a sample whose deviation from the rolling
     * median exceeds this many scaled-MAD sigmas (1.4826 * MAD). 4.0
     * keeps the false-positive rate per clean gaussian sample below
     * 1e-4.
     */
    double hampel_threshold = 4.0;

    /** Rolling window length backing the median/MAD estimates. */
    std::size_t hampel_window = 11;

    /** Identical consecutive reads that mark a counter frozen. */
    std::size_t freeze_run = 3;
};

/** Per-interval verdict of the guard. */
enum class SampleHealth
{
    Healthy,  ///< Delivered as measured.
    Repaired, ///< Some values were substituted; usable for learning.
    Unusable, ///< Do not learn from this interval.
};

/** Cumulative guard activity (diagnostics and tests). */
struct TelemetryGuardStats
{
    std::size_t intervals = 0;         ///< Observations filtered.
    std::size_t repaired_values = 0;   ///< Individual substitutions.
    std::size_t outliers_gated = 0;    ///< Hampel rejections.
    std::size_t frozen_detected = 0;   ///< Stale-counter rejections.
    std::size_t non_finite = 0;        ///< NaN/inf/<=0 rejections.
    std::size_t size_mismatches = 0;   ///< Wrong-shape observations.
    std::size_t unusable_intervals = 0;///< Verdicts of Unusable.
    std::size_t regime_accepts = 0;    ///< Budget-exhausted accepts.
};

/** Validates and repairs observations for one controller instance. */
class TelemetryGuard
{
  public:
    TelemetryGuard(std::size_t num_jobs,
                   TelemetryGuardOptions options = {});

    /**
     * Validate @p obs in place. Bad per-job IPS values are replaced
     * with the job's last good value while the staleness budget
     * lasts. With the guard disabled, always returns Healthy and
     * leaves @p obs untouched.
     */
    SampleHealth filter(IntervalObservation& obs);

    /** Cumulative activity counters. */
    [[nodiscard]] const TelemetryGuardStats& stats() const { return stats_; }

    /** The options in force. */
    [[nodiscard]] const TelemetryGuardOptions& options() const { return options_; }

    /** Forget all history (controller reset). */
    void reset();

    /** Serialize all per-job history and counters. */
    void saveState(persist::StateWriter& w) const;

    /** Restore state saved by saveState (same job count required). */
    void restoreState(persist::StateReader& r);

  private:
    /** Rolling per-job sample history for the Hampel gate. */
    struct JobHistory
    {
        std::vector<double> window;  ///< Accepted values, ring order.
        std::size_t next = 0;        ///< Ring insertion cursor.
        double last_good = 0.0;      ///< Most recent accepted value.
        bool has_last_good = false;
        double last_raw = 0.0;       ///< Previous delivered raw value.
        bool has_last_raw = false;
        std::size_t freeze_count = 0;///< Identical raw reads in a row.
        std::size_t bad_streak = 0;  ///< Consecutive repaired reads.
    };

    void accept(JobHistory& h, double value);

    std::size_t num_jobs_;
    TelemetryGuardOptions options_;
    std::vector<JobHistory> jobs_;
    std::vector<Ips> last_good_iso_;
    /** Config of the previous interval: an allocation change moves
     *  every job's true IPS level, so the outlier gate stands down. */
    Configuration last_config_;
    bool has_last_config_ = false;
    TelemetryGuardStats stats_;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_TELEMETRY_GUARD_HPP
