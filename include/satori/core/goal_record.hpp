/**
 * @file
 * Per-goal performance records (Sec. III-B).
 *
 * SATORI's key mechanism for supporting a dynamically re-weighted
 * objective: instead of storing a single scalar per evaluated
 * configuration (which would have to be re-measured whenever the
 * weights change), it stores each goal's value separately and
 * reconstructs the combined objective in software every iteration.
 */

#ifndef SATORI_CORE_GOAL_RECORD_HPP
#define SATORI_CORE_GOAL_RECORD_HPP

#include <deque>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace core {

/** One evaluated configuration with its per-goal outcomes. */
struct GoalSample
{
    Configuration config;
    RealVec x;                    ///< Share-normalized input vector.
    std::vector<double> goals;    ///< Normalized goal values in [0, 1].
};

/**
 * A bounded history of goal samples. The window bound both keeps the
 * per-iteration proxy-model reconstruction cheap and naturally ages
 * out samples taken in stale program phases.
 */
class GoalRecorder
{
  public:
    /**
     * @param num_goals Number of goals recorded per sample (>= 1).
     * @param window Maximum samples retained (0 = unbounded).
     */
    explicit GoalRecorder(std::size_t num_goals, std::size_t window = 180);

    /** Record one evaluated configuration. */
    void add(Configuration config, std::vector<double> goal_values);

    /** Number of retained samples. */
    [[nodiscard]] std::size_t size() const { return samples_.size(); }

    /** True if no samples retained. */
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    /** Sample access, oldest first. */
    [[nodiscard]] const GoalSample& sample(std::size_t i) const;

    /** All input vectors, oldest first. */
    [[nodiscard]] std::vector<RealVec> inputs() const;

    /**
     * Reconstruct the combined objective for every retained sample:
     * y_i = sum_k weights[k] * goals_ik (Eq. 2).
     * @pre weights.size() == numGoals().
     */
    [[nodiscard]] std::vector<double> combined(const std::vector<double>& weights) const;

    /** Number of goals per sample. */
    [[nodiscard]] std::size_t numGoals() const { return num_goals_; }

    /**
     * Index of the most recent sample of the configuration whose
     * *averaged* combined objective (over its repeated evaluations)
     * is highest - a noise-robust incumbent selection. @pre !empty().
     */
    [[nodiscard]] std::size_t bestSampleByAveragedObjective(
        const std::vector<double>& weights,
        double uncertainty_kappa = 0.0) const;

    /** Keep only the @p n most recent samples (no-op if fewer). */
    void trimToRecent(std::size_t n);

    /** Drop all samples. */
    void clear();

    /** Serialize the retained sample window (checkpoint recovery). */
    void saveState(persist::StateWriter& w) const;

    /**
     * Restore a window saved by saveState.
     * @throws FatalError if the saved per-sample goal count differs
     *         from this recorder's.
     */
    void restoreState(persist::StateReader& r);

  private:
    std::size_t num_goals_;
    std::size_t window_;
    std::deque<GoalSample> samples_;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_GOAL_RECORD_HPP
