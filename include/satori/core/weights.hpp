/**
 * @file
 * Dynamic goal prioritization (Sec. III-C, Eqs. 3-6).
 *
 * SATORI temporarily prioritizes throughput or fairness over short
 * prioritization periods (T_P) while an equalization mechanism pulls
 * the average weight of each goal back to 0.5 over a longer
 * equalization period (T_E). Weights are bounded to [0.25, 0.75] so
 * the BO proxy model's "moving goal post" stays controlled.
 *
 * Interpretation note (documented in DESIGN.md): Eq. 3's
 * equalization term is a weight *deficit* accumulated over the
 * elapsed iterations; we apply it in per-iteration units, i.e.
 * W_TE = 0.5 + (0.5 - mean weight so far), which realizes the
 * paper's stated property that weights average 0.5 over T_E.
 */

#ifndef SATORI_CORE_WEIGHTS_HPP
#define SATORI_CORE_WEIGHTS_HPP

#include "satori/common/types.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace core {

/** The weight decomposition SATORI plots in Fig. 14(a). */
struct WeightComponents
{
    double w_t = 0.5;   ///< Final throughput weight (Eq. 5).
    double w_f = 0.5;   ///< Final fairness weight (Eq. 6).
    double w_te = 0.5;  ///< Equalization throughput component (Eq. 3).
    double w_fe = 0.5;  ///< Equalization fairness component (Eq. 3).
    double w_tp = 0.5;  ///< Prioritization throughput component (Eq. 4).
    double w_fp = 0.5;  ///< Prioritization fairness component (Eq. 4).
    double blend = 0.0; ///< t_e / T_E: equalization dominance factor.
    bool equalization_boundary = false; ///< T_E elapsed this update.
    bool prioritization_boundary = false; ///< T_P elapsed this update.
};

/** Weight-controller tuning (paper defaults: T_P = 1 s, T_E = 10 s). */
struct WeightOptions
{
    Seconds prioritization_period = 1.0;
    Seconds equalization_period = 10.0;
    Seconds dt = kDefaultIntervalSeconds;

    /** Weight bounds (Sec. III-C: 0.25 and 0.75). */
    double w_min = 0.25;
    double w_max = 0.75;

    /**
     * Eq. 4 as published prioritizes the goal whose *counterpart*
     * improved during the last period (i.e. the weaker goal gets
     * the next opportunity). Setting this false flips Eq. 4 to
     * favor the goal that just performed well - the alternative
     * the paper measured to underperform by ~5%.
     */
    bool favor_weaker_goal = true;
};

/**
 * Computes the per-iteration throughput/fairness weights.
 */
class WeightController
{
  public:
    /** Kept for source compatibility with nested-options style. */
    using Options = WeightOptions;

    explicit WeightController(Options options = {});

    /**
     * Advance one controller interval and produce the weights to use
     * for the objective reconstruction of this iteration.
     *
     * @param throughput Normalized throughput observed this interval.
     * @param fairness Normalized fairness observed this interval.
     */
    WeightComponents update(double throughput, double fairness);

    /** Restart both periods (used on job churn). */
    void resetPeriods();

    /** Mean throughput weight over the *previous* full T_E window. */
    [[nodiscard]] double lastEqualizationMeanWt() const { return last_eq_mean_wt_; }

    /** The options in force. */
    [[nodiscard]] const Options& options() const { return options_; }

    /** Serialize both period states (checkpoint recovery). */
    void saveState(persist::StateWriter& w) const;

    /** Restore state saved by saveState. */
    void restoreState(persist::StateReader& r);

  private:
    Options options_;

    // Iterations elapsed in the current equalization period.
    std::size_t t_e_iters_ = 0;
    double sum_wt_ = 0.0; ///< Sum of throughput weights this T_E.

    // Prioritization-period state.
    std::size_t t_p_iters_ = 0;
    double period_start_throughput_ = -1.0;
    double period_start_fairness_ = -1.0;
    double w_tp_ = 0.5;
    double w_fp_ = 0.5;

    double last_eq_mean_wt_ = 0.5;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_WEIGHTS_HPP
