/**
 * @file
 * Online change detection for SATORI's reactivation path: decides
 * when the settled configuration's performance has genuinely shifted
 * (program phase change, workload churn) versus mere measurement
 * noise. Implements a two-sided CUSUM detector over a streaming
 * signal; available as an alternative to the default
 * consecutive-violation rule (SatoriOptions::use_cusum_reactivation).
 */

#ifndef SATORI_CORE_CHANGE_DETECTOR_HPP
#define SATORI_CORE_CHANGE_DETECTOR_HPP

#include <cstddef>

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace core {

/** CUSUM tuning. */
struct ChangeDetectorOptions
{
    /**
     * Slack in reference-standard-deviation units: deviations below
     * this are attributed to noise (classic CUSUM "k" parameter).
     */
    double slack_sigmas = 1.25;

    /**
     * Alarm threshold in reference-standard-deviation units (classic
     * CUSUM "h"); higher = fewer false alarms, slower detection.
     */
    double threshold_sigmas = 8.0;

    /** Samples used to (re)estimate the reference mean/sigma. */
    std::size_t calibration_samples = 15;

    /** Floor on the estimated sigma (fraction of the mean). */
    double min_relative_sigma = 0.01;
};

/**
 * Two-sided CUSUM change detector.
 *
 * Usage: feed one observation per interval with update(); a true
 * return signals a detected mean shift (in either direction), after
 * which the detector re-calibrates on the following samples.
 */
class ChangeDetector
{
  public:
    explicit ChangeDetector(ChangeDetectorOptions options = {});

    /**
     * Consume one observation.
     * @return true exactly once per detected change (then resets).
     */
    bool update(double value);

    /** True while the reference statistics are being estimated. */
    [[nodiscard]] bool calibrating() const { return calibrating_; }

    /** The current reference mean (0 while calibrating the first). */
    [[nodiscard]] double referenceMean() const { return mean_; }

    /** Restart calibration from scratch. */
    void reset();

    /** The options in force. */
    [[nodiscard]] const ChangeDetectorOptions& options() const { return options_; }

    /** Serialize calibration and CUSUM state (checkpoint recovery). */
    void saveState(persist::StateWriter& w) const;

    /** Restore state saved by saveState. */
    void restoreState(persist::StateReader& r);

  private:
    ChangeDetectorOptions options_;

    bool calibrating_ = true;
    std::size_t calib_n_ = 0;
    double calib_sum_ = 0.0;
    double calib_sq_ = 0.0;

    double mean_ = 0.0;
    double sigma_ = 1.0;
    double cusum_hi_ = 0.0;
    double cusum_lo_ = 0.0;
};

} // namespace core
} // namespace satori

#endif // SATORI_CORE_CHANGE_DETECTOR_HPP
