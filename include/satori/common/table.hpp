/**
 * @file
 * Console table and CSV output used by the benchmark harness to print
 * paper-style result rows.
 */

#ifndef SATORI_COMMON_TABLE_HPP
#define SATORI_COMMON_TABLE_HPP

#include <fstream>
#include <string>
#include <vector>

namespace satori {

/**
 * Accumulates rows of string cells and prints them as an aligned
 * ASCII table with a header rule.
 */
class TablePrinter
{
  public:
    /** Construct with column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a string. */
    [[nodiscard]] std::string render() const;

    /** Print the table to stdout. */
    void print() const;

    /** Format a double with @p precision decimal places. */
    [[nodiscard]] static std::string num(double v, int precision = 2);

    /** Format a value as a percentage string, e.g. "92.1%". */
    [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal CSV writer; one file per experiment, used when a bench is
 * invoked with --csv so figures can be re-plotted.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing and emit the header row. */
    CsvWriter(const std::string& path, std::vector<std::string> headers);

    /** Append a data row (cells are written verbatim, comma-joined). */
    void addRow(const std::vector<std::string>& cells);

    /** True if the file opened successfully. */
    [[nodiscard]] bool ok() const { return out_.good(); }

  private:
    std::ofstream out_;
    std::size_t columns_;
};

} // namespace satori

#endif // SATORI_COMMON_TABLE_HPP
