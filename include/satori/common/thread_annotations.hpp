/**
 * @file
 * Clang thread-safety annotations and the annotated lock primitives
 * the concurrency-bearing layers (harness::ThreadPool, the obs sinks,
 * analysis::Auditor) build on.
 *
 * The macros expand to clang's `-Wthread-safety` attributes when the
 * compiler supports them and to nothing everywhere else, so the
 * annotations are free documentation under gcc and a compile-time
 * lock-discipline proof under clang (the `tidy`/`tsan` presets turn
 * the warning on; CI enforces `-Werror=thread-safety`).
 *
 * libstdc++'s std::mutex carries no capability attribute, so the
 * analysis cannot see through it. satori::common::Mutex wraps it with
 * the capability annotations, MutexLock is the annotated scoped
 * guard (with explicit unlock()/lock() for drop-the-lock-around-work
 * patterns), and CondVar pairs with MutexLock for condition waits.
 * The wrappers add no state beyond the wrapped primitive and compile
 * to identical code.
 *
 * Policy (GUIDE.md §13): every member std::mutex in the library must
 * be a common::Mutex, and at least the fields it protects must carry
 * SATORI_GUARDED_BY(mutex_). The analyzer's `conc-unannotated-mutex`
 * rule enforces the latter mechanically.
 */

#ifndef SATORI_COMMON_THREAD_ANNOTATIONS_HPP
#define SATORI_COMMON_THREAD_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SATORI_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SATORI_THREAD_ANNOTATION
#define SATORI_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define SATORI_CAPABILITY(x) SATORI_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires on construction, releases on exit. */
#define SATORI_SCOPED_CAPABILITY SATORI_THREAD_ANNOTATION(scoped_lockable)

/** Field access requires holding the named capability. */
#define SATORI_GUARDED_BY(x) SATORI_THREAD_ANNOTATION(guarded_by(x))

/** Pointee access requires holding the named capability. */
#define SATORI_PT_GUARDED_BY(x) SATORI_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the named capabilities to call this function. */
#define SATORI_REQUIRES(...) \
    SATORI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the named capabilities (deadlock guard). */
#define SATORI_EXCLUDES(...) \
    SATORI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the named capabilities (its own when empty). */
#define SATORI_ACQUIRE(...) \
    SATORI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the named capabilities (its own when empty). */
#define SATORI_RELEASE(...) \
    SATORI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning the given value. */
#define SATORI_TRY_ACQUIRE(...) \
    SATORI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Escape hatch for code the analysis cannot model; justify in a comment. */
#define SATORI_NO_THREAD_SAFETY_ANALYSIS \
    SATORI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace satori {
namespace common {

class CondVar;

/**
 * std::mutex with clang capability annotations. Same size, same
 * semantics; exists only because libstdc++'s mutex is opaque to the
 * thread-safety analysis.
 */
class SATORI_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SATORI_ACQUIRE() { mutex_.lock(); }
    void unlock() SATORI_RELEASE() { mutex_.unlock(); }
    [[nodiscard]] bool try_lock() SATORI_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/**
 * Annotated scoped guard over Mutex: acquires on construction,
 * releases on destruction. unlock()/lock() support the
 * drop-the-lock-around-work pattern (ThreadPool::workerLoop) without
 * losing the analysis.
 */
class SATORI_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) SATORI_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    ~MutexLock() SATORI_RELEASE()
    {
        if (held_)
            mutex_.unlock();
    }

    /** Temporarily drop the lock; the destructor tolerates ending in
     *  either state. */
    void unlock() SATORI_RELEASE()
    {
        held_ = false;
        mutex_.unlock();
    }

    /** Re-acquire after unlock(). */
    void lock() SATORI_ACQUIRE()
    {
        mutex_.lock();
        held_ = true;
    }

  private:
    friend class CondVar;
    Mutex& mutex_;
    bool held_ = true;
};

/**
 * Condition variable paired with MutexLock. wait() releases and
 * re-acquires the lock's mutex; from the analysis' point of view the
 * capability set is unchanged across the call, which is exactly the
 * caller-visible contract. Spell predicates as explicit while-loops
 * around wait() so guarded reads stay inside the annotated caller
 * (lambda predicates are opaque to the analysis).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Block until notified; @p lock must hold its mutex on entry. */
    void wait(MutexLock& lock)
    {
        std::unique_lock<std::mutex> native(lock.mutex_.mutex_,
                                            std::adopt_lock);
        cv_.wait(native);
        // The mutex is re-acquired; hand ownership back to the guard.
        native.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace common
} // namespace satori

#endif // SATORI_COMMON_THREAD_ANNOTATIONS_HPP
