/**
 * @file
 * Deterministic pseudo-random number generation for the simulator and
 * the BO engine. Implements xoshiro256** (Blackman & Vigna) seeded via
 * splitmix64, so experiments are reproducible across platforms without
 * depending on libstdc++ distribution internals.
 */

#ifndef SATORI_COMMON_RNG_HPP
#define SATORI_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

/**
 * A small, fast, reproducible PRNG (xoshiro256**).
 *
 * All stochastic behaviour in the library (simulator noise, random
 * policy, BO candidate sampling) flows through this class so that a
 * single seed fully determines an experiment.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5A70121u);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal variate (Box-Muller, cached spare). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Split off an independently seeded child generator. */
    Rng split();

    /** Serialize the full stream state (incl. the gaussian spare). */
    void saveState(persist::StateWriter& w) const;

    /** Restore a stream saved by saveState (checkpoint recovery). */
    void restoreState(persist::StateReader& r);

  private:
    std::array<std::uint64_t, 4> state_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace satori

#endif // SATORI_COMMON_RNG_HPP
