/**
 * @file
 * Streaming statistics helpers used by the experiment harness.
 */

#ifndef SATORI_COMMON_STATS_HPP
#define SATORI_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

/**
 * Online mean/variance accumulator (Welford's algorithm).
 *
 * Used to aggregate per-interval throughput/fairness samples over an
 * experiment without retaining the full time series.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    [[nodiscard]] std::size_t count() const { return n_; }

    /** Running mean (0 if empty). */
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 if fewer than 2 samples). */
    [[nodiscard]] double variance() const;

    /** Population standard deviation. */
    [[nodiscard]] double stddev() const;

    /** Smallest observation (+inf if empty). */
    [[nodiscard]] double min() const { return min_; }

    /** Largest observation (-inf if empty). */
    [[nodiscard]] double max() const { return max_; }

    /** Serialize the accumulator (checkpoint recovery). */
    void saveState(persist::StateWriter& w) const;

    /** Restore an accumulator saved by saveState. */
    void restoreState(persist::StateReader& r);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * A named time series of scalar samples, with simple aggregation,
 * used to record figure data (weights over time, distances, etc.).
 */
class TimeSeries
{
  public:
    /** Record one (time, value) point. */
    void add(double t, double v);

    /** All sample times, in insertion order. */
    [[nodiscard]] const std::vector<double>& times() const { return times_; }

    /** All sample values, in insertion order. */
    [[nodiscard]] const std::vector<double>& values() const { return values_; }

    /** Number of points. */
    [[nodiscard]] std::size_t size() const { return values_.size(); }

    /** Mean of all values (0 if empty). */
    [[nodiscard]] double mean() const;

    /**
     * Mean over the window [t0, t1] (inclusive); 0 if no points fall
     * inside the window.
     */
    [[nodiscard]] double meanOver(double t0, double t1) const;

    /** Serialize all points (checkpoint recovery). */
    void saveState(persist::StateWriter& w) const;

    /** Restore a series saved by saveState. */
    void restoreState(persist::StateReader& r);

  private:
    std::vector<double> times_;
    std::vector<double> values_;
};

/** Percentile (0..100) of a copy of @p v via linear interpolation. */
[[nodiscard]] double percentile(std::vector<double> v, double pct);

} // namespace satori

#endif // SATORI_COMMON_STATS_HPP
