/**
 * @file
 * Small numerical helpers: normal pdf/cdf, clamping, safe means.
 */

#ifndef SATORI_COMMON_MATH_HPP
#define SATORI_COMMON_MATH_HPP

#include <cstdint>
#include <vector>

namespace satori {

/** Standard normal probability density function. */
[[nodiscard]] double normalPdf(double z);

/** Standard normal cumulative distribution function. */
[[nodiscard]] double normalCdf(double z);

/** Clamp @p v to the closed interval [lo, hi]. */
[[nodiscard]] double clamp(double v, double lo, double hi);

/** Arithmetic mean; returns 0 for an empty vector. */
[[nodiscard]] double mean(const std::vector<double>& v);

/** Population standard deviation; returns 0 for size < 2. */
[[nodiscard]] double stddev(const std::vector<double>& v);

/** Geometric mean; @pre all elements > 0. Returns 0 for empty input. */
[[nodiscard]] double geomean(const std::vector<double>& v);

/** Harmonic mean; @pre all elements > 0. Returns 0 for empty input. */
[[nodiscard]] double harmonicMean(const std::vector<double>& v);

/** Coefficient of variation (stddev / mean); 0 if mean is 0. */
[[nodiscard]] double coefficientOfVariation(const std::vector<double>& v);

/** Squared Euclidean distance between equal-length vectors. */
[[nodiscard]] double squaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/** Euclidean distance between equal-length vectors. */
[[nodiscard]] double euclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/** Binomial coefficient C(n, k) computed in unsigned 64-bit arithmetic. */
[[nodiscard]] std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

} // namespace satori

#endif // SATORI_COMMON_MATH_HPP
