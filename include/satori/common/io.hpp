/**
 * @file
 * Crash-safe file plumbing shared by the persist subsystem, the
 * trace writer, and the observability exporters: atomic temp-file +
 * rename installs (a reader never sees a half-written file), whole-
 * file reads, and up-front output-path validation so CLI runs fail
 * before the experiment instead of 30 simulated seconds into it.
 * The helpers live in common (not persist) because the obs layer
 * sits below persist in the architecture DAG yet installs its
 * exports with the same atomic rename.
 *
 * Every failure throws FatalError naming the path and the errno
 * string - no silent truncation, no mystery exit codes.
 */

#ifndef SATORI_COMMON_IO_HPP
#define SATORI_COMMON_IO_HPP

#include <string>
#include <string_view>

namespace satori {

/**
 * Write @p content to @p path atomically: the bytes land in
 * "<path>.tmp", are flushed (and, with @p sync, fsync'd), and the
 * temp file is renamed over @p path. A crash at any point leaves
 * either the old file or no file - never a truncated one that parses
 * as complete.
 *
 * @param sync fsync before the rename, so the bytes survive an OS
 *        crash, not just process death. Callers on a hot path whose
 *        data is recoverable elsewhere (snapshots, which the WAL can
 *        always rebuild) pass false; the rename is still atomic.
 *
 * @throws FatalError (path + errno) on any I/O failure.
 */
void atomicWriteFile(const std::string& path, std::string_view content,
                     bool sync = true);

/**
 * Read the whole of @p path into a string.
 * @throws FatalError (path + errno) if the file cannot be read.
 */
[[nodiscard]] std::string readFile(const std::string& path);

/** True if @p path exists (file or directory). */
[[nodiscard]] bool pathExists(const std::string& path);

/**
 * Validate that @p path names a file in an existing, writable
 * directory, without creating anything. @p flag names the CLI option
 * for the diagnostic ("--trace").
 *
 * @throws FatalError "--trace: directory 'X' does not exist" /
 *         "... is not writable" when the parent directory is absent
 *         or read-only.
 */
void validateOutputFile(const std::string& flag, const std::string& path);

/**
 * Validate @p path as an output directory, creating it (and missing
 * parents) when absent. @p flag names the CLI option.
 *
 * @throws FatalError when the path exists but is not a directory, is
 *         not writable, or cannot be created.
 */
void validateOutputDir(const std::string& flag, const std::string& path);

} // namespace satori

#endif // SATORI_COMMON_IO_HPP
