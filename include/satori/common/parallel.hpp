/**
 * @file
 * A fixed-size thread pool for embarrassingly parallel index-addressed
 * fan-out. Originally a harness-layer facility for multi-seed
 * experiment repeats; it lives in common so lower layers (notably the
 * bo engine's batched acquisition scoring) can share it without a
 * layering violation - common depends on nothing above it.
 *
 * Determinism contract: parallelism here never changes results. Each
 * work item derives everything from its index (seed, mix, output
 * slot), writes only to its own pre-sized slot, and aggregation
 * happens afterwards in index order on the calling thread. That makes
 * statistics bit-identical to a serial loop at every thread count -
 * the property tests/harness_test.cpp pins.
 *
 * Work items must not share mutable state. In particular the obs
 * layer's tracer/audit sinks and ExperimentOptions' on_interval /
 * trace / faults hooks are process- or run-shared; callers that set
 * any of those must run serially (repeatPolicy enforces this).
 */

#ifndef SATORI_COMMON_PARALLEL_HPP
#define SATORI_COMMON_PARALLEL_HPP

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "satori/common/thread_annotations.hpp"

namespace satori {
namespace common {

/**
 * Worker count used when a caller passes threads = 0: the
 * SATORI_THREADS environment variable when set to a positive integer,
 * else std::thread::hardware_concurrency(), else 1.
 */
[[nodiscard]] std::size_t defaultThreadCount();

/**
 * A fixed-size pool that executes one batch of index-addressed work.
 *
 * Workers claim indices [0, count) from a shared atomic-free counter
 * (mutex-protected; the work items dominate, not the claim). The
 * first exception thrown by any work item is captured and rethrown
 * from forEachIndex() on the calling thread; remaining indices are
 * abandoned.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Joins all workers; pending batches must have completed. */
    ~ThreadPool();

    /** Number of worker threads. */
    [[nodiscard]] std::size_t workerCount() const { return threads_.size(); }

    /**
     * Run fn(i) for every i in [0, count), distributing indices over
     * the workers, and block until all complete. Rethrows the first
     * work-item exception. Not reentrant: one batch at a time.
     */
    void forEachIndex(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  private:
    void workerLoop();

    std::vector<std::thread> threads_; ///< Fixed after construction.
    Mutex mutex_;
    CondVar work_cv_; ///< Signals workers: batch ready/stop.
    CondVar done_cv_; ///< Signals caller: batch drained.
    const std::function<void(std::size_t)>* fn_
        SATORI_GUARDED_BY(mutex_) = nullptr;
    /// Size of the current batch.
    std::size_t count_ SATORI_GUARDED_BY(mutex_) = 0;
    /// Next unclaimed index.
    std::size_t next_ SATORI_GUARDED_BY(mutex_) = 0;
    /// Indices claimed but not finished.
    std::size_t in_flight_ SATORI_GUARDED_BY(mutex_) = 0;
    /// Bumped per batch to wake workers.
    std::uint64_t generation_ SATORI_GUARDED_BY(mutex_) = 0;
    std::exception_ptr first_error_ SATORI_GUARDED_BY(mutex_);
    bool stopping_ SATORI_GUARDED_BY(mutex_) = false;
};

/**
 * Run fn(i) for i in [0, count) on up to @p threads workers
 * (0 = defaultThreadCount()). Runs inline on the calling thread when
 * the effective worker count or @p count is <= 1, so single-threaded
 * callers pay no thread overhead and sanitizer-free stacks stay
 * simple. Rethrows the first work-item exception.
 */
void parallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn);

} // namespace common
} // namespace satori

#endif // SATORI_COMMON_PARALLEL_HPP
