/**
 * @file
 * Fundamental type aliases and small value types shared across SATORI.
 */

#ifndef SATORI_COMMON_TYPES_HPP
#define SATORI_COMMON_TYPES_HPP

#include <cstdint>
#include <vector>

namespace satori {

/** Index of a co-located job within a mix (0-based). */
using JobIndex = std::size_t;

/** Index of a shared architectural resource (0-based). */
using ResourceIndex = std::size_t;

/** Wall-clock simulated time, in seconds. */
using Seconds = double;

/** Instructions-per-second of a job (the paper's pqos IPS signal). */
using Ips = double;

/** Number of retired instructions. */
using Instructions = double;

/** A dense real vector (used for normalized configurations, GP inputs). */
using RealVec = std::vector<double>;

/**
 * The controller sampling interval used throughout the paper: SATORI
 * updates its resource allocation every 0.1 seconds (Sec. IV).
 */
inline constexpr Seconds kDefaultIntervalSeconds = 0.1;

} // namespace satori

#endif // SATORI_COMMON_TYPES_HPP
