/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal():
 * panic for internal invariant violations, fatal for user errors.
 */

#ifndef SATORI_COMMON_LOGGING_HPP
#define SATORI_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace satori {

/**
 * Thrown when a user-supplied configuration is invalid (the analogue
 * of gem5's fatal(): the library cannot continue, but it is not a bug
 * in the library itself).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/**
 * Thrown when an internal invariant is violated (the analogue of
 * gem5's panic(): a bug in SATORI itself).
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {

[[noreturn]] inline void
throwFatal(const char* file, int line, const std::string& msg)
{
    throw FatalError(std::string(file) + ":" + std::to_string(line) +
                     ": fatal: " + msg);
}

[[noreturn]] inline void
throwPanic(const char* file, int line, const std::string& msg)
{
    throw PanicError(std::string(file) + ":" + std::to_string(line) +
                     ": panic: " + msg);
}

} // namespace detail
} // namespace satori

/** Report an unrecoverable user error (bad arguments, bad config). */
#define SATORI_FATAL(msg) \
    ::satori::detail::throwFatal(__FILE__, __LINE__, (msg))

/** Report an internal invariant violation (a SATORI bug). */
#define SATORI_PANIC(msg) \
    ::satori::detail::throwPanic(__FILE__, __LINE__, (msg))

/** Check an internal invariant; panics with the stringized condition. */
#define SATORI_ASSERT(cond) \
    do { \
        if (!(cond)) { \
            SATORI_PANIC(std::string("assertion failed: ") + #cond); \
        } \
    } while (0)

/**
 * Runtime invariant-audit hook (analysis/invariants.hpp): the
 * statement runs only when the library is configured with the
 * SATORI_AUDIT CMake option; otherwise the tokens vanish and the hook
 * costs nothing. Call sites pass a single full statement, e.g.
 * SATORI_AUDIT_HOOK(analysis::globalAuditor().checkMeasuredIps(...)).
 */
#if defined(SATORI_AUDIT_ENABLED) && SATORI_AUDIT_ENABLED
#define SATORI_AUDIT_HOOK(stmt) \
    do { \
        stmt; \
    } while (0)
#else
#define SATORI_AUDIT_HOOK(stmt) \
    do { \
    } while (0)
#endif

#endif // SATORI_COMMON_LOGGING_HPP
