/**
 * @file
 * Random search baseline (Sec. IV): samples a configuration uniformly
 * from the whole space every controller interval.
 */

#ifndef SATORI_POLICIES_RANDOM_POLICY_HPP
#define SATORI_POLICIES_RANDOM_POLICY_HPP

#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** Uniform random configuration each interval. */
class RandomPolicy final : public PartitioningPolicy
{
  public:
    RandomPolicy(const PlatformSpec& platform, std::size_t num_jobs,
                 std::uint64_t seed = 13);

    [[nodiscard]] std::string name() const override { return "Random"; }
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

  private:
    ConfigurationSpace space_;
    std::uint64_t seed_;
    Rng rng_;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_RANDOM_POLICY_HPP
