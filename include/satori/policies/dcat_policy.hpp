/**
 * @file
 * dCAT-style baseline (Xu et al., EuroSys'18): dynamic reallocation
 * of a single resource - LLC ways - to improve system throughput.
 *
 * dCAT classifies applications as donors and receivers of cache ways
 * based on their measured utility for additional capacity. We
 * implement its behaviour as measured trial-and-accept transfers:
 * every interval a way is moved from the currently best-performing
 * (least cache-starved) job to the most slowed-down job; the move is
 * kept only if system throughput improved, otherwise reverted and
 * the pair is backed off. All other resources stay at the equal
 * partition, as in the original single-resource system.
 */

#ifndef SATORI_POLICIES_DCAT_POLICY_HPP
#define SATORI_POLICIES_DCAT_POLICY_HPP

#include <map>

#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** dCAT tuning knobs. */
struct DCatOptions
{
    /** Minimum relative throughput gain to accept a transfer. */
    double accept_epsilon = 0.002;

    /** Intervals a rejected donor/receiver pair stays blocked. */
    int backoff_intervals = 20;

    /**
     * Controller intervals per dCAT epoch: the published system
     * re-evaluates allocations about once per second, i.e. every 10
     * of SATORI's 100 ms intervals.
     */
    int period_intervals = 10;
};

/** Single-resource (LLC ways) throughput-oriented reallocation. */
class DCatPolicy final : public PartitioningPolicy
{
  public:
    /** Kept for source compatibility with nested-options style. */
    using Options = DCatOptions;

    DCatPolicy(const PlatformSpec& platform, std::size_t num_jobs,
               Options options = {});

    [[nodiscard]] std::string name() const override { return "dCAT"; }
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

  private:
    [[nodiscard]] double sumIps(const std::vector<Ips>& ips) const;

    PlatformSpec platform_;
    std::size_t num_jobs_;
    Options options_;
    int llc_index_;

    Configuration current_;
    bool trial_pending_ = false;
    Configuration pre_trial_config_;
    double pre_trial_ips_ = 0.0;
    JobIndex trial_from_ = 0;
    JobIndex trial_to_ = 0;
    std::map<std::pair<JobIndex, JobIndex>, int> blocked_until_;
    int iteration_ = 0;

    // Epoch accumulation (decisions act on epoch-averaged signals).
    std::vector<double> acc_ips_;
    std::vector<double> acc_iso_;
    int acc_n_ = 0;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_DCAT_POLICY_HPP
