/**
 * @file
 * Historical home of the PartitioningPolicy interface. The interface
 * moved down to satori/core/policy.hpp so the SATORI controller can
 * implement it without core depending on this subsystem (which may
 * include sim); this header remains so concrete policies and
 * downstream code keep their include path and the
 * satori::policies::PartitioningPolicy spelling.
 */

#ifndef SATORI_POLICIES_POLICY_HPP
#define SATORI_POLICIES_POLICY_HPP

#include "satori/core/policy.hpp" // IWYU pragma: export

#endif // SATORI_POLICIES_POLICY_HPP
