/**
 * @file
 * Adapter that restricts a policy to a subset of the platform's
 * resources: the inner policy partitions only the managed resources,
 * while every unmanaged resource stays at the equal partition. Used
 * by the Sec. V ablation (SATORI-LLC-only vs dCAT, SATORI-LLC+MB vs
 * CoPart).
 */

#ifndef SATORI_POLICIES_RESTRICTED_POLICY_HPP
#define SATORI_POLICIES_RESTRICTED_POLICY_HPP

#include <functional>
#include <memory>
#include <vector>

#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** Runs an inner policy over a resource-restricted view. */
class RestrictedPolicy final : public PartitioningPolicy
{
  public:
    /** Factory building the inner policy for the restricted view. */
    using InnerFactory = std::function<std::unique_ptr<PartitioningPolicy>(
        const PlatformSpec& restricted, std::size_t num_jobs)>;

    /**
     * @param full_platform The server's real platform.
     * @param num_jobs Co-located job count.
     * @param managed Resource kinds the inner policy may partition.
     * @param factory Builds the inner policy for the restricted view.
     */
    RestrictedPolicy(const PlatformSpec& full_platform,
                     std::size_t num_jobs,
                     const std::vector<ResourceKind>& managed,
                     const InnerFactory& factory);

    [[nodiscard]] std::string name() const override;
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

  private:
    /** Project a full-platform config down to the managed resources. */
    [[nodiscard]] Configuration project(const Configuration& full) const;

    /** Embed a restricted config into the full platform (equal rest). */
    [[nodiscard]] Configuration embed(const Configuration& restricted) const;

    PlatformSpec full_;
    PlatformSpec restricted_;
    std::size_t num_jobs_;
    std::vector<std::size_t> managed_indices_; ///< Full-platform indices.
    std::unique_ptr<PartitioningPolicy> inner_;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_RESTRICTED_POLICY_HPP
