/**
 * @file
 * CLITE-style baseline (Patel & Tiwari, HPCA'20): the authors' own
 * earlier BO-based partitioner for latency-critical co-location,
 * adapted to this paper's context exactly as Sec. VI describes - it
 * optimizes a *single static* combined objective with a traditional
 * BO loop (no per-goal records, no dynamic prioritization, random
 * initial samples instead of SATORI's structured seeds).
 *
 * The paper reports that, applied to throughput-oriented co-location
 * with two competing objectives, CLITE performs similar to PARTIES
 * and underperforms SATORI by a similar margin.
 */

#ifndef SATORI_POLICIES_CLITE_POLICY_HPP
#define SATORI_POLICIES_CLITE_POLICY_HPP

#include <vector>

#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/common/rng.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/metrics/metrics.hpp"
#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** CLITE tuning knobs. */
struct CliteOptions
{
    /** Static weights of the combined objective. */
    double w_t = 0.5;
    double w_f = 0.5;

    /** Random configurations evaluated before BO starts. */
    std::size_t init_samples = 8;

    /** Samples retained for the GP. */
    std::size_t window = 120;

    /** Iterations without improvement before holding the best. */
    std::size_t stall_intervals = 12;

    /** Objective-drop fraction that resumes sampling. */
    double reactivate_threshold = 0.08;

    /** RNG seed. */
    std::uint64_t seed = 19;

    ThroughputMetric tmetric = ThroughputMetric::SumIps;
    FairnessMetric fmetric = FairnessMetric::JainIndex;
};

/** Traditional single-objective BO partitioner (CLITE-adapted). */
class ClitePolicy final : public PartitioningPolicy
{
  public:
    ClitePolicy(const PlatformSpec& platform, std::size_t num_jobs,
                CliteOptions options = {});

    [[nodiscard]] std::string name() const override { return "CLITE"; }
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

    /** True once the search has converged and holds its best. */
    [[nodiscard]] bool converged() const { return holding_; }

  private:
    [[nodiscard]] double objective(const sim::IntervalObservation& obs) const;

    CliteOptions options_;
    ConfigurationSpace space_;
    bo::CandidateGenerator candgen_;
    bo::BoEngine engine_;
    Rng rng_;

    std::vector<Configuration> configs_; ///< Aligned with engine data.
    std::vector<RealVec> xs_;
    std::vector<double> ys_;

    std::size_t init_left_;
    double best_seen_ = -1.0;
    std::size_t stall_ = 0;
    bool holding_ = false;
    Configuration hold_config_;
    double hold_reference_ = -1.0;
    int strikes_ = 0;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_CLITE_POLICY_HPP
