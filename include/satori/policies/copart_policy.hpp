/**
 * @file
 * CoPart-style baseline (Park et al., EuroSys'19): coordinated
 * partitioning of last-level cache and memory bandwidth for fairness,
 * using one finite state machine per resource. The FSMs are not
 * joint, but are aware of each other's decisions (Sec. I).
 *
 * Our implementation mirrors that structure: per resource, each job
 * is classified every interval as a TAKE (slowdown below the mean by
 * a hysteresis margin), GIVE (above the mean), or HOLD; one unit per
 * interval flows from the most generous GIVE job to the neediest
 * TAKE job. Cross-FSM awareness: the two FSMs act on alternating
 * intervals so they never fight over the same interval's measurement.
 * Cores remain equally partitioned (CoPart manages LLC + MB only).
 */

#ifndef SATORI_POLICIES_COPART_POLICY_HPP
#define SATORI_POLICIES_COPART_POLICY_HPP

#include <vector>

#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** CoPart tuning knobs. */
struct CoPartOptions
{
    /** Relative slowdown margin that triggers TAKE/GIVE. */
    double hysteresis = 0.03;

    /**
     * Controller intervals per FSM epoch: the published CoPart
     * evaluates its FSMs about once per second.
     */
    int period_intervals = 10;
};

/** Fairness-first two-FSM LLC + memory-bandwidth partitioner. */
class CoPartPolicy final : public PartitioningPolicy
{
  public:
    /** Kept for source compatibility with nested-options style. */
    using Options = CoPartOptions;

    CoPartPolicy(const PlatformSpec& platform, std::size_t num_jobs,
                 Options options = {});

    [[nodiscard]] std::string name() const override { return "CoPart"; }
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

  private:
    /** Per-job FSM states, recomputed every interval. */
    enum class State { Take, Give, Hold };

    /** Run one resource's FSM step: classify and move one unit. */
    void stepFsm(ResourceIndex r, const std::vector<double>& speedup);

    PlatformSpec platform_;
    std::size_t num_jobs_;
    Options options_;
    std::vector<ResourceIndex> managed_; ///< LLC and MB indices.
    Configuration current_;
    std::size_t turn_ = 0; ///< Which FSM acts this epoch.

    // Epoch accumulation.
    std::vector<double> acc_ips_;
    std::vector<double> acc_iso_;
    int acc_n_ = 0;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_COPART_POLICY_HPP
