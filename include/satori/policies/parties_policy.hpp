/**
 * @file
 * PARTIES-style baseline (Chen et al., ASPLOS'19), modified per the
 * paper (Sec. IV) to maximize throughput and fairness with equal
 * priority for throughput-oriented workloads.
 *
 * PARTIES partitions resources with a gradient-descent method: it
 * adjusts one resource dimension at a time, measures whether the
 * objective improved, keeps beneficial moves and reverts harmful
 * ones, then moves on to the next resource. Because it explores one
 * dimension at a time it cannot exploit cross-resource coupling in a
 * single step and is prone to local maxima in larger spaces - the
 * behaviour the paper's scalability study observes.
 */

#ifndef SATORI_POLICIES_PARTIES_POLICY_HPP
#define SATORI_POLICIES_PARTIES_POLICY_HPP

#include "satori/metrics/metrics.hpp"
#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** PARTIES tuning knobs. */
struct PartiesOptions
{
    /** Minimum objective gain to accept a move. */
    double accept_epsilon = 0.001;

    /** Weight on throughput in the modified objective. */
    double w_t = 0.5;

    /** Weight on fairness in the modified objective. */
    double w_f = 0.5;

    ThroughputMetric tmetric = ThroughputMetric::SumIps;
    FairnessMetric fmetric = FairnessMetric::JainIndex;

    /**
     * Controller intervals per adjustment step: PARTIES monitors a
     * ~500 ms window before judging each one-resource adjustment.
     */
    int period_intervals = 5;
};

/** Gradient-descent, one-resource-at-a-time partitioner. */
class PartiesPolicy final : public PartitioningPolicy
{
  public:
    /** Kept for source compatibility with nested-options style. */
    using Options = PartiesOptions;

    PartiesPolicy(const PlatformSpec& platform, std::size_t num_jobs,
                  Options options = {});

    [[nodiscard]] std::string name() const override { return "PARTIES"; }
    Configuration decide(const sim::IntervalObservation& obs) override;
    void reset() override;

  private:
    [[nodiscard]] double objective(const sim::IntervalObservation& obs) const;

    PlatformSpec platform_;
    std::size_t num_jobs_;
    Options options_;

    Configuration current_;
    bool trial_pending_ = false;
    Configuration pre_trial_config_;
    double pre_trial_objective_ = 0.0;
    ResourceIndex dimension_ = 0; ///< Resource being explored.
    int failures_in_dimension_ = 0;
    std::size_t next_app_ = 0; ///< Round-robin per-app FSM cursor.

    // Window accumulation.
    std::vector<double> acc_ips_;
    std::vector<double> acc_iso_;
    int acc_n_ = 0;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_PARTIES_POLICY_HPP
