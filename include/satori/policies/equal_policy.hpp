/**
 * @file
 * Static equal partitioning: the S_init configuration held forever.
 * Serves as the "unmanaged" reference point.
 */

#ifndef SATORI_POLICIES_EQUAL_POLICY_HPP
#define SATORI_POLICIES_EQUAL_POLICY_HPP

#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** Divides every resource equally among jobs and never adapts. */
class EqualPartitionPolicy final : public PartitioningPolicy
{
  public:
    EqualPartitionPolicy(const PlatformSpec& platform,
                         std::size_t num_jobs);

    [[nodiscard]] std::string name() const override { return "Equal"; }
    Configuration decide(const sim::IntervalObservation& obs) override;

    /** Stateless across intervals: the no-op hooks are exact. */
    [[nodiscard]] bool supportsPersistence() const override { return true; }

  private:
    Configuration config_;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_EQUAL_POLICY_HPP
