/**
 * @file
 * Brute-force oracle policies (Sec. IV): Throughput Oracle
 * (W_T = 1), Fairness Oracle (W_F = 1), and Balanced Oracle
 * (W_T = W_F = 0.5), recomputed every interval to track phase
 * changes. They peek at the simulator's model (privileged access) -
 * the practically-infeasible ceiling SATORI aims to touch.
 */

#ifndef SATORI_POLICIES_ORACLE_POLICY_HPP
#define SATORI_POLICIES_ORACLE_POLICY_HPP

#include <memory>

#include "satori/sim/offline_eval.hpp"
#include "satori/policies/policy.hpp"

namespace satori {
namespace policies {

/** The three oracle flavors of Sec. IV. */
enum class OracleKind
{
    Throughput, ///< W_T = 1, W_F = 0.
    Fairness,   ///< W_T = 0, W_F = 1.
    Balanced,   ///< W_T = W_F = 0.5 (the reporting ceiling).
};

/** Printable oracle name. */
[[nodiscard]] std::string oracleKindName(OracleKind kind);

/** Exhaustive offline search, re-run (memoized) on phase changes. */
class OraclePolicy final : public PartitioningPolicy
{
  public:
    /**
     * @param server The server to be controlled; the oracle reads its
     *        phase state and analytic model (privileged).
     * @param kind Which weight combination to maximize.
     * @param options Search knobs (stride cap, metrics).
     */
    OraclePolicy(const sim::SimulatedServer& server, OracleKind kind,
                 harness::OfflineEvaluator::Options options = {});

    [[nodiscard]] std::string name() const override;
    Configuration decide(const sim::IntervalObservation& obs) override;

    /** Weight on throughput for this oracle. */
    [[nodiscard]] double weightThroughput() const { return w_t_; }

    /** Weight on fairness for this oracle. */
    [[nodiscard]] double weightFairness() const { return w_f_; }

    /** Access the underlying evaluator (e.g. for distance figures). */
    harness::OfflineEvaluator& evaluator() { return *evaluator_; }

  private:
    const sim::SimulatedServer& server_;
    OracleKind kind_;
    std::unique_ptr<harness::OfflineEvaluator> evaluator_;
    double w_t_;
    double w_f_;
};

} // namespace policies
} // namespace satori

#endif // SATORI_POLICIES_ORACLE_POLICY_HPP
