/**
 * @file
 * Scriptable fault plans: a deterministic description of *when* and
 * *how* the telemetry/actuation substrate misbehaves during a run.
 *
 * A FaultPlan is a list of FaultEvents, each active over a window of
 * controller intervals. Events model exactly the failure modes a real
 * SATORI deployment sees on its pqos/CAT/MBA/taskset substrate:
 *
 *   - telemetry faults: dropped (zero) IPS samples, NaN samples,
 *     frozen (stale) counter reads, multiplicative spikes;
 *   - actuation faults: a setConfiguration() that is silently
 *     dropped, delayed by k intervals, or applied only for a random
 *     subset of resources;
 *   - platform faults: transient core offlining (modeled as a
 *     multiplicative rate loss for the affected job) and job
 *     crash/restart churn via replaceJob().
 *
 * Plans can be built programmatically, parsed from a compact text
 * script (one event per line, '#' comments), or taken from the
 * escalating default preset used by bench_fault_resilience. All
 * randomness (per-interval Bernoulli trials, resource subsets, job
 * picks) is derived from the injector's seed, so a (seed, plan) pair
 * reproduces a run byte-for-byte.
 */

#ifndef SATORI_FAULTS_PLAN_HPP
#define SATORI_FAULTS_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace satori {
namespace faults {

/** Every fault the injector knows how to introduce. */
enum class FaultKind
{
    // Telemetry faults (perturb what the policy sees; the server's
    // true performance is untouched).
    DropSample,   ///< Affected jobs report IPS = 0 (lost pqos read).
    NanSample,    ///< Affected jobs report IPS = NaN (failed read).
    FreezeSample, ///< Affected jobs repeat their last delivered IPS.
    SpikeSample,  ///< Affected jobs report IPS * magnitude.

    // Actuation faults (perturb what setConfiguration() does).
    DropActuation,    ///< The requested configuration is ignored.
    DelayActuation,   ///< Applied delay_intervals intervals late.
    PartialActuation, ///< Only a random subset of resources applied.

    // Platform faults (change true behavior; telemetry reads true).
    CoreOffline, ///< Affected job runs at magnitude x its rate.
    JobCrash,    ///< Affected job is restarted from scratch.
};

/** Stable lower-case name of a fault kind (scripts and reports). */
[[nodiscard]] const char* faultKindName(FaultKind kind);

/** One scripted fault: a kind active over an interval window. */
struct FaultEvent
{
    FaultKind kind = FaultKind::DropSample;

    /** First controller interval (0-based) the event is active in. */
    std::size_t start_interval = 0;

    /** One past the last active interval (start + 1 = one shot). */
    std::size_t end_interval = 1;

    /** Affected job, or -1 for every job. */
    int job = -1;

    /**
     * Per-interval activation probability in (0, 1]; trials are drawn
     * from the injector's seeded RNG, so they are reproducible.
     */
    double probability = 1.0;

    /**
     * Kind-specific strength: IPS multiplier for SpikeSample (e.g. 8
     * or 0.1), rate factor for CoreOffline (e.g. 0.5 = half speed).
     */
    double magnitude = 1.0;

    /** DelayActuation: intervals the configuration is held back. */
    std::size_t delay_intervals = 3;

    /** Compact one-line script rendering of this event. */
    [[nodiscard]] std::string toString() const;
};

/**
 * An ordered list of fault events plus bookkeeping helpers. The plan
 * itself is immutable state; all randomness lives in the injector.
 */
class FaultPlan
{
  public:
    /** An empty (fault-free) plan. */
    FaultPlan() = default;

    /** Construct from explicit events. */
    explicit FaultPlan(std::vector<FaultEvent> events);

    /** Append one event (returns *this for chaining). */
    FaultPlan& add(const FaultEvent& event);

    /** All scripted events. */
    [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

    /** True if no events are scripted. */
    [[nodiscard]] bool empty() const { return events_.empty(); }

    /** Events active at @p interval (optionally for @p job only). */
    [[nodiscard]] std::vector<const FaultEvent*> activeAt(std::size_t interval) const;

    /** One past the last scripted interval (0 for an empty plan). */
    [[nodiscard]] std::size_t horizon() const;

    /** Round-trippable script rendering (one event per line). */
    [[nodiscard]] std::string toString() const;

    /**
     * Parse a fault script. Format: one event per line,
     *
     *   <kind> <start>..<end> [job=J] [p=P] [x=M] [k=D]
     *
     * where <kind> is drop | nan | freeze | spike | noact | delay |
     * partial | offline | crash, the interval window is half-open,
     * `job=*` (default) targets all jobs, `p=` the per-interval
     * probability, `x=` the magnitude, and `k=` the actuation delay.
     * '#' starts a comment; blank lines are skipped.
     *
     * @param source Name used in error messages (file name or
     *        "<string>").
     * @throws FatalError naming @p source and the line on malformed
     *         input.
     */
    [[nodiscard]] static FaultPlan parse(const std::string& text,
                           const std::string& source = "<string>");

    /** Parse a fault script file. @throws FatalError on I/O errors. */
    [[nodiscard]] static FaultPlan loadFile(const std::string& path);

    /**
     * The default escalating plan used by bench_fault_resilience:
     * four phases of increasing severity over @p horizon intervals -
     * (1) telemetry spikes, (2) dropped + frozen samples, (3) dropped
     * / delayed / partial actuations, (4) job crash plus a transient
     * core offline - then a clean tail so recovery is observable.
     * Deterministic for a given (num_jobs, horizon).
     */
    [[nodiscard]] static FaultPlan escalating(std::size_t num_jobs,
                                std::size_t horizon = 300);

  private:
    std::vector<FaultEvent> events_;
};

} // namespace faults
} // namespace satori

#endif // SATORI_FAULTS_PLAN_HPP
