/**
 * @file
 * The fault injector: executes a FaultPlan against the
 * SimulatedServer/PerfMonitor seam, perturbing exactly what a real
 * deployment's noisy substrate would perturb - the telemetry a policy
 * sees, the actuations it issues, and the platform itself - while the
 * harness keeps scoring the *true* server behavior.
 *
 * Wiring (done by harness::ExperimentRunner when an injector is set):
 *
 *   1. beginInterval(server)   - platform faults (crash, offline)
 *   2. obs = monitor.observe() - the truth, used for scoring
 *   3. perturbObservation(obs) - what the policy is shown
 *   4. actuate(server, decide) - what the substrate actually applies
 *
 * All randomness flows through one seeded Rng, so a given (plan,
 * seed) pair reproduces every fault byte-for-byte.
 */

#ifndef SATORI_FAULTS_INJECTOR_HPP
#define SATORI_FAULTS_INJECTOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "satori/common/rng.hpp"
#include "satori/config/configuration.hpp"
#include "satori/faults/plan.hpp"
#include "satori/sim/monitor.hpp"
#include "satori/sim/server.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace faults {

/** Counts of every fault actually injected (after Bernoulli trials). */
struct FaultStats
{
    std::size_t samples_dropped = 0;
    std::size_t samples_nan = 0;
    std::size_t samples_frozen = 0;
    std::size_t samples_spiked = 0;
    std::size_t actuations_dropped = 0;
    std::size_t actuations_delayed = 0;
    std::size_t actuations_partial = 0;
    std::size_t offline_intervals = 0;
    std::size_t crashes = 0;

    /** Total injected faults across all categories. */
    [[nodiscard]] std::size_t total() const;

    /** One-line summary ("drop=12 nan=0 ... crash=1"). */
    [[nodiscard]] std::string toString() const;
};

/** Executes a FaultPlan against one experiment run. */
class FaultInjector
{
  public:
    /**
     * @param plan The scripted faults.
     * @param seed Seeds the injector's private RNG (Bernoulli trials,
     *        job/resource picks); independent of the server's seed.
     */
    explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0xFA17);

    /**
     * Apply platform faults for the interval about to run: job
     * crash/restart churn (replaceJob) and transient core offlining
     * (external rate throttles).
     *
     * @return true if job churn occurred; the caller must then
     *         re-record the monitor baseline (Algorithm 1 line 12 -
     *         the cluster manager announces restarts).
     */
    bool beginInterval(sim::SimulatedServer& server);

    /**
     * The telemetry the policy is shown for the interval that just
     * ran: @p truth with drops, NaNs, freezes, and spikes applied.
     * The truth is never mutated.
     */
    sim::IntervalObservation perturbObservation(
        const sim::IntervalObservation& truth);

    /**
     * Intercept one actuation request. Depending on the plan the
     * request is applied, silently dropped, queued for k intervals,
     * or applied for only a random subset of resources. Previously
     * delayed requests that come due are applied first.
     *
     * @return The configuration actually in force afterwards.
     */
    const Configuration& actuate(sim::SimulatedServer& server,
                                 const Configuration& requested);

    /** Faults injected so far. */
    [[nodiscard]] const FaultStats& stats() const { return stats_; }

    /** Index of the interval currently being processed (0-based). */
    [[nodiscard]] std::size_t interval() const { return interval_; }

    /**
     * Compact annotation of the faults injected during the current
     * interval (e.g. "spike(j0)|noact"), empty when the interval was
     * clean. Reset by beginInterval().
     */
    [[nodiscard]] const std::string& lastFlags() const { return flags_; }

    /** The plan being executed. */
    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    /** Serialize RNG, interval cursor, queues, and counters; the
     *  plan itself is a construction input and not saved. */
    void saveState(persist::StateWriter& w) const;

    /** Restore state saved by saveState (same plan/seed required). */
    void restoreState(persist::StateReader& r);

  private:
    void flag(const std::string& token);

    FaultPlan plan_;
    Rng rng_;
    std::size_t interval_ = 0;

    /** Last IPS vector delivered to the policy (freeze replay). */
    std::vector<Ips> last_delivered_;

    /** Actuations queued by DelayActuation. */
    struct DelayedActuation
    {
        Configuration config;
        std::size_t due_interval;
    };
    std::vector<DelayedActuation> delayed_;

    FaultStats stats_;
    std::string flags_;
};

} // namespace faults
} // namespace satori

#endif // SATORI_FAULTS_INJECTOR_HPP
