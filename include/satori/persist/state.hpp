/**
 * @file
 * Shared composite encoders for saveState()/restoreState() hooks:
 * types used across many modules (Configuration, OnlineStats, Rng)
 * get one canonical encoding here instead of per-module copies.
 */

#ifndef SATORI_PERSIST_STATE_HPP
#define SATORI_PERSIST_STATE_HPP

#include "satori/config/configuration.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace persist {

/** Encode @p config as resource rows of per-job unit counts. */
void putConfiguration(StateWriter& w, const Configuration& config);

/**
 * Decode a Configuration written by putConfiguration. Shape-only
 * decoding: feasibility against a platform is the caller's job (the
 * simulator re-validates on setConfiguration).
 */
[[nodiscard]] Configuration getConfiguration(StateReader& r);

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_STATE_HPP
