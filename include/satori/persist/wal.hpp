/**
 * @file
 * The append-only interval write-ahead log: one CRC-guarded record
 * per control interval (observed telemetry, scoring, injected-fault
 * flags, and the policy's decision).
 *
 * On-disk layout (little-endian):
 *
 *   header:  magic "SATWAL01" (8 bytes)
 *            u32 format version (kWalFormatVersion)
 *            u32 fingerprint CRC
 *            u32 header CRC (crc32 of the 16 bytes above)
 *   then per record: u32 payload length | u32 payload CRC | payload
 *
 * The WAL covers the whole run from interval 0. On recovery it serves
 * two purposes: records before the resumed snapshot regenerate the
 * decision-trace rows byte-for-byte, and records after it verify that
 * re-execution reproduces the exact pre-crash decisions (divergence
 * is a hard error, not a silent fork).
 *
 * Failure semantics, in order of suspicion:
 *   - an *incomplete* frame at end-of-file is a torn tail - the
 *     expected signature of a crash mid-append. Reading stops
 *     cleanly; resuming truncates the tail and appends over it.
 *   - a *complete* frame whose CRC mismatches is corruption, never a
 *     crash artifact: FatalError with file + byte offset.
 *   - magic/version/fingerprint mismatches: FatalError.
 */

#ifndef SATORI_PERSIST_WAL_HPP
#define SATORI_PERSIST_WAL_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "satori/config/configuration.hpp"
#include "satori/persist/codec.hpp"

namespace satori {
namespace persist {

/** Bumped on any incompatible change to the record encoding. */
inline constexpr std::uint32_t kWalFormatVersion = 1;

/** Everything one control interval contributed to the run. */
struct IntervalRecord
{
    std::uint64_t interval = 0;   ///< 0-based interval index.
    double time = 0.0;            ///< Simulated end-of-interval time.
    Configuration config;         ///< Configuration that ran.
    std::vector<double> ips;      ///< True measured per-job IPS.
    std::vector<double> speedups; ///< Speedups vs instantaneous iso.
    double throughput = 0.0;      ///< Normalized T of the interval.
    double fairness = 0.0;        ///< Normalized F of the interval.
    std::string faults;           ///< Injector flags ("" = clean).
    Configuration decision;       ///< What the policy returned.

    void encode(StateWriter& w) const;
    [[nodiscard]] static IntervalRecord decode(StateReader& r);
};

/** Result of scanning a WAL file. */
struct WalReadResult
{
    std::vector<IntervalRecord> records; ///< All complete records.
    std::uint64_t valid_bytes = 0;       ///< File prefix that parsed.
    bool torn_tail = false;              ///< Incomplete frame at EOF.
};

/**
 * Scan @p path, validating the header and every complete record.
 *
 * @throws FatalError (file + offset) on header mismatch or a
 *         complete-but-corrupt record; a torn tail is reported via
 *         WalReadResult, not thrown.
 */
[[nodiscard]] WalReadResult readWal(const std::string& path,
                                    std::uint32_t fingerprint_crc);

/**
 * Appends CRC-framed records to a WAL file, flushing each one so the
 * bytes survive process death (a kill -9 loses at most the torn tail
 * of the in-flight record, which recovery tolerates by design).
 */
class WalWriter
{
  public:
    /**
     * Create a fresh WAL at @p path (truncating any previous file)
     * with a header carrying @p fingerprint_crc.
     */
    [[nodiscard]] static WalWriter create(const std::string& path,
                                          std::uint32_t fingerprint_crc);

    /**
     * Reopen @p path for appending after recovery, first truncating
     * it to @p valid_bytes (dropping a torn tail).
     */
    [[nodiscard]] static WalWriter resume(const std::string& path,
                                          std::uint64_t valid_bytes);

    ~WalWriter();
    WalWriter(WalWriter&& other) noexcept;
    WalWriter& operator=(WalWriter&&) = delete;
    WalWriter(const WalWriter&) = delete;
    WalWriter& operator=(const WalWriter&) = delete;

    /** Append one record and flush it to the OS. */
    void append(const IntervalRecord& record);

    /**
     * Crash-test hook: write only a prefix of the record's frame and
     * flush, simulating a kill mid-append (a torn tail).
     */
    void appendTorn(const IntervalRecord& record);

    /** Bytes appended so far (including the header for fresh WALs). */
    [[nodiscard]] std::uint64_t bytesWritten() const { return bytes_; }

  private:
    WalWriter(std::FILE* file, std::string path, std::uint64_t bytes);

    std::FILE* file_;
    std::string path_;
    std::uint64_t bytes_;
};

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_WAL_HPP
