/**
 * @file
 * Historical home of the crash-safe file helpers, which moved down
 * to satori/common/io.hpp so the obs exporters (below persist in the
 * architecture DAG) can share them. This header keeps the include
 * path and the satori::persist spellings alive for existing callers.
 */

#ifndef SATORI_PERSIST_IO_HPP
#define SATORI_PERSIST_IO_HPP

#include "satori/common/io.hpp" // IWYU pragma: export

namespace satori {
namespace persist {

using satori::atomicWriteFile;
using satori::pathExists;
using satori::readFile;
using satori::validateOutputDir;
using satori::validateOutputFile;

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_IO_HPP
