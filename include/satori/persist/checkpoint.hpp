/**
 * @file
 * The checkpoint manager: owns one run's durable state directory -
 * a MANIFEST tying the directory to a run fingerprint, the interval
 * WAL, and a rotating set of snapshots - and drives the recovery
 * protocol.
 *
 * Directory layout:
 *
 *   <dir>/MANIFEST              run identity (fingerprint string)
 *   <dir>/wal.bin               interval WAL, whole run from 0
 *   <dir>/snap.<step>.bin       snapshot after <step> intervals
 *
 * Write path (onIntervalEnd, called by the harness after each
 * interval): append the interval's WAL record (flushed so it
 * survives a kill), then every checkpoint_every intervals install a
 * snapshot atomically and prune old ones. Recovery = load the newest
 * snapshot (full validation) + the WAL; the harness restores state
 * from the snapshot, regenerates pre-snapshot trace rows from WAL
 * records, re-executes the post-snapshot intervals (verifying each
 * re-derived decision bitwise against the WAL), and continues.
 *
 * The kill_at hook deterministically simulates SIGKILL: the process
 * _Exit(137)s immediately after (or, with kill_torn, halfway
 * through) the WAL append of the chosen interval - no destructors,
 * no flushes, exactly what a real kill leaves behind, but without
 * timing flakiness in tests.
 */

#ifndef SATORI_PERSIST_CHECKPOINT_HPP
#define SATORI_PERSIST_CHECKPOINT_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "satori/persist/snapshot.hpp"
#include "satori/persist/wal.hpp"

namespace satori {
namespace persist {

/** Checkpointing knobs (mirrors the satori_sim flags). */
struct CheckpointOptions
{
    /** Sentinel for kill_at: never kill. */
    static constexpr std::size_t kNoKill = static_cast<std::size_t>(-1);

    /** The state directory (created if absent). */
    std::string dir;

    /** Intervals between snapshots (0 = WAL only, no snapshots). */
    std::size_t every = 50;

    /** Resume from existing state instead of starting fresh. */
    bool resume = false;

    /** Snapshots retained after pruning. */
    std::size_t keep_snapshots = 2;

    /** Crash-test hook: _Exit(137) after this interval's WAL append. */
    std::size_t kill_at = kNoKill;

    /** With kill_at: die halfway through the append (torn tail). */
    bool kill_torn = false;
};

/** Orchestrates one run's snapshots + WAL (see file comment). */
class Checkpointer
{
  public:
    /**
     * @param options Directory, cadence, resume/kill behavior.
     * @param fingerprint A string identifying everything that shapes
     *        the deterministic decision stream (mix, policy, seeds,
     *        platform, faults - but not the duration, so a resumed
     *        run may extend a shorter one). Stored in the MANIFEST
     *        and CRC-stamped into every file.
     */
    Checkpointer(CheckpointOptions options, std::string fingerprint);

    /**
     * Initialize the directory. Fresh runs wipe previous state and
     * write a new MANIFEST + WAL header; resume runs load and
     * validate MANIFEST, WAL, and the newest snapshot.
     *
     * @throws FatalError on fingerprint mismatch, corrupt files, or
     *         --resume against a directory with no MANIFEST.
     */
    void prepare();

    /** True when prepare() loaded state to resume from. */
    [[nodiscard]] bool resuming() const { return options_.resume; }

    /** All complete WAL records loaded by a resume (else empty). */
    [[nodiscard]] const std::vector<IntervalRecord>& walRecords() const
    {
        return wal_records_;
    }

    /** True when a snapshot was loaded to restore state from. */
    [[nodiscard]] bool hasSnapshot() const { return snapshot_ != nullptr; }

    /** The loaded snapshot. @pre hasSnapshot(). */
    [[nodiscard]] const SnapshotReader& snapshot() const;

    /**
     * The interval index execution restarts at: the loaded
     * snapshot's step, or 0 when only WAL (or nothing) survived.
     */
    [[nodiscard]] std::size_t resumeStep() const { return resume_step_; }

    /**
     * Per-interval hook. For new ground (step >= the replayed record
     * count) appends the WAL record, honours kill_at, and installs a
     * snapshot every checkpoint_every intervals via @p save_state
     * (called with a fresh SnapshotWriter to fill in sections).
     * Replayed intervals only honour kill_at.
     */
    void onIntervalEnd(std::size_t step, const IntervalRecord& record,
                       const std::function<void(SnapshotWriter&)>& save_state);

    /** The options in force. */
    [[nodiscard]] const CheckpointOptions& options() const
    {
        return options_;
    }

  private:
    void prepareFresh();
    void prepareResume();
    void pruneSnapshots() const;
    [[nodiscard]] std::string snapshotPath(std::uint64_t step) const;

    CheckpointOptions options_;
    std::string fingerprint_;
    std::uint32_t fingerprint_crc_;

    std::unique_ptr<WalWriter> wal_;
    std::vector<IntervalRecord> wal_records_;
    std::unique_ptr<SnapshotReader> snapshot_;
    std::size_t resume_step_ = 0;
    bool prepared_ = false;
};

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_CHECKPOINT_HPP
