/**
 * @file
 * Versioned, per-record-checksummed controller snapshots.
 *
 * On-disk layout (all integers little-endian):
 *
 *   header:  magic "SATSNP01" (8 bytes)
 *            u32 format version (kSnapshotFormatVersion)
 *            u32 fingerprint CRC (crc32 of the run fingerprint)
 *            u64 completed-interval count ("step") the state is at
 *            u32 section count
 *            u32 header CRC (crc32 of the 28 bytes above)
 *   then per section, in write order:
 *            u32 tag length | tag bytes ("policy", "server", ...)
 *            u32 payload length
 *            u32 payload CRC
 *            payload bytes
 *
 * Writers assemble sections in memory and install the file with an
 * atomic temp + rename (persist::atomicWriteFile), so a crash during
 * a snapshot leaves the previous snapshot intact. Readers validate
 * everything eagerly - magic, version, fingerprint, header CRC, and
 * every section CRC - and throw FatalError with the file path and
 * byte offset on the first mismatch. A snapshot either loads exactly
 * or not at all.
 *
 * Versioning policy: any change to a section's encoding bumps
 * kSnapshotFormatVersion; old snapshots are then rejected with a
 * version-mismatch error (re-run without --resume). There is no
 * cross-version migration - snapshots are cheap to regenerate, and
 * silent best-effort decoding is exactly the failure mode this
 * subsystem exists to prevent.
 */

#ifndef SATORI_PERSIST_SNAPSHOT_HPP
#define SATORI_PERSIST_SNAPSHOT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "satori/persist/codec.hpp"

namespace satori {
namespace persist {

/** Bumped on any incompatible change to the snapshot encoding.
 * v2: BoEngine::saveState appends the decision-path configuration
 * (max_history, approx, screen) so restore can refuse a mismatched
 * resume. */
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/** Assembles one snapshot: named sections, then an atomic install. */
class SnapshotWriter
{
  public:
    SnapshotWriter() = default;

    /**
     * Start a new section; returns the writer to encode its payload
     * into. Tags must be unique within one snapshot.
     */
    StateWriter& section(const std::string& tag);

    /**
     * Serialize all sections and atomically install the snapshot at
     * @p path. @p fingerprint_crc ties the file to one run identity;
     * @p step is the completed-interval count the state represents.
     */
    void writeTo(const std::string& path, std::uint32_t fingerprint_crc,
                 std::uint64_t step) const;

    /** Total payload bytes across sections (obs sizing metric). */
    [[nodiscard]] std::size_t payloadBytes() const;

  private:
    std::vector<std::pair<std::string, StateWriter>> sections_;
};

/** Loads and fully validates one snapshot file. */
class SnapshotReader
{
  public:
    /**
     * Read @p path, validating magic, version, fingerprint, and
     * every section checksum eagerly.
     *
     * @throws FatalError with the file path and byte offset on any
     *         mismatch (wrong magic, version skew, fingerprint of a
     *         different run, bit-flipped section, truncation).
     */
    SnapshotReader(const std::string& path, std::uint32_t fingerprint_crc);

    /** Completed-interval count the snapshot captured. */
    [[nodiscard]] std::uint64_t step() const { return step_; }

    /**
     * A reader over the payload of section @p tag.
     * @throws FatalError if the snapshot has no such section.
     */
    [[nodiscard]] StateReader section(const std::string& tag) const;

    /** True if a section with @p tag exists. */
    [[nodiscard]] bool hasSection(const std::string& tag) const;

    /** The file this snapshot was loaded from. */
    [[nodiscard]] const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::uint64_t step_ = 0;
    std::string data_; ///< The whole file; sections view into it.
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
        sections_; ///< tag -> (payload offset, length) into data_.
};

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_SNAPSHOT_HPP
