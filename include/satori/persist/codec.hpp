/**
 * @file
 * The byte-level substrate of satori::persist: a CRC-32 checksum and
 * a pair of little-endian binary encoders (StateWriter/StateReader)
 * that every saveState()/restoreState() hook in the library speaks.
 *
 * The encoding is deliberately boring: fixed-width little-endian
 * integers, doubles as their IEEE-754 bit patterns, strings and
 * vectors as a u64 length followed by the elements. Byte order is
 * packed explicitly (not memcpy'd), so checkpoints written on any
 * platform decode identically on any other - a prerequisite for the
 * byte-identical crash-recovery guarantee.
 *
 * Every StateReader carries a context string (file + section) and a
 * running byte offset; a short or malformed read throws FatalError
 * naming both, so corruption is always diagnosed, never silently
 * decoded into wrong state.
 */

#ifndef SATORI_PERSIST_CODEC_HPP
#define SATORI_PERSIST_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace satori {
namespace persist {

/**
 * CRC-32 (IEEE 802.3 polynomial, reflected) of @p data. @p seed
 * chains incremental computations: crc32(b, crc32(a)) ==
 * crc32(a+b).
 */
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0);

/** Serializes state into an in-memory byte buffer. */
class StateWriter
{
  public:
    StateWriter() = default;

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putBool(bool v);
    /** IEEE-754 bit pattern; NaN payloads round-trip exactly. */
    void putDouble(double v);
    void putSize(std::size_t v);
    void putString(std::string_view v);
    void putDoubleVec(const std::vector<double>& v);
    void putIntVec(const std::vector<int>& v);

    /** The encoded bytes so far. */
    [[nodiscard]] const std::string& bytes() const { return buf_; }

    /** Move the encoded bytes out (leaves the writer empty). */
    [[nodiscard]] std::string takeBytes() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Decodes a byte buffer produced by StateWriter. All reads validate
 * the remaining length; violations throw FatalError carrying the
 * context string and the byte offset of the failed read.
 */
class StateReader
{
  public:
    /**
     * @param data The encoded bytes (not owned; must outlive reads).
     * @param context Diagnostic prefix, e.g. "snap.000120.bin[policy]".
     */
    StateReader(std::string_view data, std::string context);

    [[nodiscard]] std::uint8_t getU8();
    [[nodiscard]] std::uint32_t getU32();
    [[nodiscard]] std::uint64_t getU64();
    [[nodiscard]] std::int64_t getI64();
    [[nodiscard]] bool getBool();
    [[nodiscard]] double getDouble();
    [[nodiscard]] std::size_t getSize();
    [[nodiscard]] std::string getString();
    [[nodiscard]] std::vector<double> getDoubleVec();
    [[nodiscard]] std::vector<int> getIntVec();

    /** Bytes consumed so far. */
    [[nodiscard]] std::size_t offset() const { return pos_; }

    /** True once every byte has been consumed. */
    [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

    /**
     * Assert full consumption; throws FatalError naming the context
     * and the number of trailing bytes otherwise. restoreState()
     * implementations call this last, so a version skew that leaves
     * bytes behind is an error, not silence.
     */
    void expectEnd() const;

    /** The diagnostic context this reader reports errors under. */
    [[nodiscard]] const std::string& context() const { return context_; }

  private:
    /** Check @p n more bytes exist; throws FatalError otherwise. */
    void need(std::size_t n, const char* what) const;

    std::string_view data_;
    std::string context_;
    std::size_t pos_ = 0;
};

} // namespace persist
} // namespace satori

#endif // SATORI_PERSIST_CODEC_HPP
