/**
 * @file
 * Runtime invariant auditing: mechanical checks of the numerical and
 * structural invariants the paper's machinery silently assumes —
 * feasible integer allocations, normalized objectives, SPD kernel
 * matrices, consistent monitor observations.
 *
 * Checks are grouped into per-layer packs (allocation, objective, BO
 * numerical health, monitor) and accumulate violations into a
 * structured report instead of panicking on first hit, so one audit
 * run over a whole scenario yields a complete picture. Hot-path hooks
 * compile to nothing unless the library is built with the
 * SATORI_AUDIT CMake option (see SATORI_AUDIT_HOOK in
 * common/logging.hpp).
 */

#ifndef SATORI_ANALYSIS_INVARIANTS_HPP
#define SATORI_ANALYSIS_INVARIANTS_HPP

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"
#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"
#include "satori/config/platform.hpp"
#include "satori/linalg/matrix.hpp"

namespace satori {
namespace analysis {

/** Every invariant the auditor knows how to check. */
enum class CheckId
{
    // Allocation feasibility pack.
    AllocationShape,     ///< Wrong resource/job dimensions.
    AllocationSum,       ///< Per-resource sum != platform capacity.
    AllocationMinUnit,   ///< Some job received < 1 unit of a resource.

    // Objective sanity pack.
    ObjectiveFinite,     ///< Non-finite goal, weight, or IPS value.
    ObjectiveGoalRange,  ///< Normalized goal outside [0, 1] (Jain: (0, 1]).
    ObjectiveWeightNorm, ///< Weights not in [0, 1] or not summing to 1.

    // BO numerical-health pack.
    BoPosteriorVariance, ///< Posterior variance below -epsilon.
    BoCholeskyJitter,    ///< Factorization needed large diagonal jitter.
    BoKernelNotSpd,      ///< Kernel matrix asymmetric or not SPD.
    BoTrainingSet,       ///< Ragged inputs or non-finite targets.

    // Monitor/trace consistency pack.
    MonitorSizeMismatch,    ///< Observation vector sizes disagree.
    MonitorIpsSane,         ///< Measured IPS non-finite or <= 0.
    MonitorBaselinePositive,///< Isolation baseline not strictly positive.
    MonitorTimeOrder,       ///< Simulated time failed to advance.
};

/** Number of distinct check ids (for iteration). */
inline constexpr std::size_t kNumCheckIds = 14;

/** Stable kebab-case name of a check (used in reports and tests). */
[[nodiscard]] const char* checkIdName(CheckId id);

/** Aggregated violations of one check id. */
struct ViolationStats
{
    std::size_t count = 0;

    /** Call site (file:line) and detail of the first violation. */
    std::string first_site;
    std::string first_detail;

    /**
     * The violation with the largest |magnitude| seen so far, where
     * magnitude is a check-specific severity (units over-committed,
     * jitter added, distance below zero, ...).
     */
    double worst_magnitude = 0.0;
    std::string worst_site;
    std::string worst_detail;
};

/**
 * Accumulates invariant violations across a run.
 *
 * All check packs are safe to call concurrently; a single mutex
 * serializes mutation (auditing is a diagnostics mode, not a hot
 * path). Use globalAuditor() for the library's built-in hooks or a
 * local instance for targeted tests.
 */
class Auditor
{
  public:
    Auditor() = default;

    // ---- Allocation feasibility pack -------------------------------

    /**
     * @p config must be exactly feasible for @p platform with
     * @p num_jobs jobs: right shape, per-resource unit sums equal to
     * capacity, every job >= 1 unit of every resource.
     */
    void checkAllocation(const PlatformSpec& platform,
                         std::size_t num_jobs, const Configuration& config,
                         const char* file, int line);

    // ---- Objective sanity pack -------------------------------------

    /**
     * @p goals are the normalized per-goal values of one interval and
     * @p weights the matching weight vector: everything finite, goals
     * within [0, 1], weights within [0, 1] and summing to ~1. When
     * @p jain_fairness is set, goal index 1 must additionally be
     * strictly positive (Jain's index lives in (0, 1]).
     */
    void checkObjective(const std::vector<double>& goals,
                        const std::vector<double>& weights,
                        bool jain_fairness, const char* file, int line);

    // ---- BO numerical-health pack ----------------------------------

    /**
     * @p variance is an (unclamped) GP posterior variance in units
     * where the prior variance is @p scale; slightly negative values
     * are numerical noise, anything below -1e-6 * max(scale, 1) is a
     * broken solve.
     */
    void checkPosteriorVariance(double variance, double scale,
                                const char* file, int line);

    /**
     * Post-factorization health: @p jitter is the diagonal jitter the
     * Cholesky needed and @p condition its diagonal-based condition
     * estimate for an @p n x @p n kernel matrix. Jitter above 1e-6
     * means the matrix was effectively singular.
     */
    void checkCholesky(double jitter, double condition, std::size_t n,
                       const char* file, int line);

    /**
     * @p k must be a symmetric positive-definite kernel matrix;
     * failures are reported with condition-number diagnostics
     * (Gershgorin eigenvalue bounds, diagonal range).
     */
    void checkKernelMatrix(const linalg::Matrix& k, const char* file,
                           int line);

    /**
     * GP training set: all @p inputs must share one dimension and all
     * @p targets must be finite.
     */
    void checkTrainingSet(const std::vector<RealVec>& inputs,
                          const std::vector<double>& targets,
                          const char* file, int line);

    // ---- Monitor/trace consistency pack ----------------------------

    /** Measured per-job IPS must be finite and strictly positive. */
    void checkMeasuredIps(const std::vector<Ips>& ips, const char* file,
                          int line);

    /**
     * One interval observation: @p ips and @p isolation_ips must both
     * have @p expected_jobs entries, the baseline must be strictly
     * positive, and time must have advanced (@p time > @p prev_time).
     */
    void checkObservation(const std::vector<Ips>& ips,
                          const std::vector<Ips>& isolation_ips,
                          std::size_t expected_jobs, Seconds time,
                          Seconds prev_time, const char* file, int line);

    // ---- Reporting --------------------------------------------------

    /** Record a violation directly (check packs funnel through here). */
    void recordViolation(CheckId id, const char* file, int line,
                         double magnitude, const std::string& detail);

    /** Total check-pack invocations so far. */
    [[nodiscard]] std::size_t checksRun() const;

    /** Total violations recorded so far (across all check ids). */
    [[nodiscard]] std::size_t violationCount() const;

    /** Violations of one check id (count 0 if never violated). */
    [[nodiscard]] ViolationStats violations(CheckId id) const;

    /**
     * Human-readable structured report: one header line with totals,
     * then per violated check id its count, first offender (file:line
     * and detail) and worst offender by |magnitude|.
     */
    [[nodiscard]] std::string renderReport() const;

    /** Drop all recorded state (for per-test isolation). */
    void clear();

  private:
    mutable common::Mutex mutex_;
    std::size_t checks_run_ SATORI_GUARDED_BY(mutex_) = 0;
    std::size_t violation_count_ SATORI_GUARDED_BY(mutex_) = 0;
    std::array<ViolationStats, kNumCheckIds> stats_
        SATORI_GUARDED_BY(mutex_){};
};

/**
 * The process-wide auditor the library's SATORI_AUDIT_HOOK call sites
 * feed. When the library is built with SATORI_AUDIT, a summary of
 * this auditor is printed to stderr at process exit.
 */
Auditor& globalAuditor();

} // namespace analysis
} // namespace satori

#endif // SATORI_ANALYSIS_INVARIANTS_HPP
