/**
 * @file
 * Loading workload profiles from a simple text format, so downstream
 * users can experiment with their own applications without
 * recompiling. Format (one directive per line, '#' comments):
 *
 *   workload mykernel
 *     suite custom
 *     description My streaming kernel
 *     fixed_work 3e11
 *     phase compute
 *       base_ipc 1.5
 *       parallel_fraction 0.9
 *       mpki_one 20
 *       mpki_floor 4
 *       mrc exponential 3.0        # decay in ways
 *       miss_penalty 140
 *       bytes_per_miss 85
 *       cache_pressure 0.3
 *       length 1.2e10
 *     phase stream
 *       ...
 *
 * `mrc` accepts `exponential <decay_ways>` or `cliff <knee> <width>`.
 * Indentation is ignored; `workload` and `phase` open new scopes.
 */

#ifndef SATORI_WORKLOADS_LOADER_HPP
#define SATORI_WORKLOADS_LOADER_HPP

#include <string>
#include <vector>

#include "satori/workloads/profile.hpp"

namespace satori {
namespace workloads {

/**
 * Parse workload definitions from text.
 * @param source Label used in error messages (a file name when the
 *        text came from disk, "<string>" for in-memory input).
 * @throws FatalError with a source- and line-numbered message on
 *         malformed input: truncated directives, non-numeric fields,
 *         and out-of-range or non-finite values are all rejected.
 */
[[nodiscard]] std::vector<WorkloadProfile>
parseWorkloadText(const std::string& text,
                  const std::string& source = "<string>");

/**
 * Parse workload definitions from a file.
 * @throws FatalError if the file cannot be read or is malformed.
 */
[[nodiscard]] std::vector<WorkloadProfile> loadWorkloadFile(const std::string& path);

/**
 * Serialize profiles back to the loader format (round-trippable);
 * useful for exporting the built-in suites as editable templates.
 */
[[nodiscard]] std::string formatWorkloads(const std::vector<WorkloadProfile>& profiles);

} // namespace workloads
} // namespace satori

#endif // SATORI_WORKLOADS_LOADER_HPP
