/**
 * @file
 * Registries of the benchmark suites used in the paper's evaluation:
 * PARSEC (Table I + vips), CloudSuite (Table II), ECP (Table III).
 *
 * Each entry is a synthetic analytic model tuned to reproduce the
 * qualitative resource sensitivities the paper relies on, e.g.
 * fluidanimate's core sensitivity (Sec. V), blackscholes' memory-
 * bandwidth contention, miniFE's and SWFFT's joint LLC appetite, and
 * the AMG/Hypre similarity.
 */

#ifndef SATORI_WORKLOADS_SUITES_HPP
#define SATORI_WORKLOADS_SUITES_HPP

#include <vector>

#include "satori/workloads/profile.hpp"

namespace satori {
namespace workloads {

/** The seven PARSEC benchmarks used in the paper's mixes. */
[[nodiscard]] std::vector<WorkloadProfile> parsecSuite();

/** The five CloudSuite benchmarks (Table II). */
[[nodiscard]] std::vector<WorkloadProfile> cloudSuite();

/** The five ECP proxy applications (Table III). */
[[nodiscard]] std::vector<WorkloadProfile> ecpSuite();

/** Look up a suite by name ("parsec", "cloudsuite", "ecp"). */
[[nodiscard]] std::vector<WorkloadProfile> suiteByName(const std::string& name);

/** Look up one workload by name across all suites; throws if absent. */
[[nodiscard]] WorkloadProfile workloadByName(const std::string& name);

} // namespace workloads
} // namespace satori

#endif // SATORI_WORKLOADS_SUITES_HPP
