/**
 * @file
 * Workload profiles: named synthetic equivalents of the paper's
 * PARSEC / CloudSuite / ECP benchmarks (Tables I-III), expressed as
 * cyclic phase sequences over the analytic performance model.
 */

#ifndef SATORI_WORKLOADS_PROFILE_HPP
#define SATORI_WORKLOADS_PROFILE_HPP

#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/perfmodel/phase.hpp"

namespace satori {
namespace workloads {

/**
 * A named workload: a phase cycle plus fixed-work accounting metadata
 * (the paper uses the fixed-work methodology, Sec. IV).
 */
struct WorkloadProfile
{
    /** Benchmark name, e.g. "canneal". */
    std::string name;

    /** Suite the benchmark belongs to ("parsec", "cloudsuite", "ecp"). */
    std::string suite;

    /** One-line description mirroring the paper's tables. */
    std::string description;

    /** The cyclic phase sequence. */
    std::vector<perfmodel::PhaseParams> phases;

    /** Instructions that constitute one complete "run" (fixed work). */
    Instructions fixed_work = 5e10;

    /** Sum of phase lengths (one trip around the cycle). */
    [[nodiscard]] Instructions cycleLength() const;
};

/**
 * Helper used by the suite definitions: builds one phase with the
 * exponential miss-ratio-curve parameterization.
 */
[[nodiscard]] perfmodel::PhaseParams makePhase(std::string label, double base_ipc,
                                 double parallel_fraction, double mpki_one,
                                 double mpki_floor, double mrc_decay_ways,
                                 double miss_penalty_cycles,
                                 double bytes_per_miss,
                                 Instructions length);

/**
 * Like makePhase() but with a working-set-cliff MRC: MPKI stays high
 * until @p knee_ways fit, then drops steeply (width @p cliff_width).
 */
[[nodiscard]] perfmodel::PhaseParams makeCliffPhase(std::string label, double base_ipc,
                                      double parallel_fraction,
                                      double mpki_one, double mpki_floor,
                                      double knee_ways, double cliff_width,
                                      double miss_penalty_cycles,
                                      double bytes_per_miss,
                                      Instructions length);

} // namespace workloads
} // namespace satori

#endif // SATORI_WORKLOADS_PROFILE_HPP
