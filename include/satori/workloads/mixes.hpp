/**
 * @file
 * Job-mix generation: all k-subsets of a suite, matching the paper's
 * methodology (21 five-of-seven PARSEC mixes, 10 three-of-five
 * CloudSuite mixes, 10 two-of-five ECP mixes; Sec. IV).
 */

#ifndef SATORI_WORKLOADS_MIXES_HPP
#define SATORI_WORKLOADS_MIXES_HPP

#include <string>
#include <vector>

#include "satori/workloads/profile.hpp"

namespace satori {
namespace workloads {

/** A job mix: the chosen workloads plus a printable label. */
struct JobMix
{
    std::vector<WorkloadProfile> jobs;
    std::string label;
};

/**
 * All C(n, k) k-subsets of {0..n-1} in lexicographic order.
 * @pre 1 <= k <= n.
 */
[[nodiscard]] std::vector<std::vector<std::size_t>> combinations(std::size_t n,
                                                   std::size_t k);

/** All k-job mixes of a suite, lexicographic, with "name+name" labels. */
[[nodiscard]] std::vector<JobMix> allMixes(const std::vector<WorkloadProfile>& suite,
                             std::size_t k);

/** A single mix from explicit workload names (cross-suite allowed). */
[[nodiscard]] JobMix mixOf(const std::vector<std::string>& names);

} // namespace workloads
} // namespace satori

#endif // SATORI_WORKLOADS_MIXES_HPP
