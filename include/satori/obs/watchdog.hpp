/**
 * @file
 * SLO watchdog: declarative threshold rules evaluated against the
 * StatsHistory each control interval.
 *
 * A rule reads `<metric> <op> <threshold> for <k> [intervals]` - e.g.
 * `facts.throughput < 2.0 for 5` - and breaches when the metric's
 * newest value violates the threshold for k *consecutive* intervals;
 * a single healthy interval resets the run. Specs parse from the same
 * compact text format the fault plans use (one rule per line, '#'
 * comments), so a CI job can check in an SLO file next to its fault
 * plan.
 *
 * Breaches are observability events: they increment
 * `satori.slo.breaches`, append to a bounded JSONL event ring,
 * surface in `/healthz`, and - only when fatal mode is explicitly
 * requested (`--slo-fatal`) - abort the run for CI gating. The
 * watchdog only ever *reads* history; it cannot influence a decision,
 * so the byte-identical trace invariant is untouched.
 */

#ifndef SATORI_OBS_WATCHDOG_HPP
#define SATORI_OBS_WATCHDOG_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"
#include "satori/obs/stats_history.hpp"

namespace satori {
namespace obs {

/** Comparison a rule applies to the metric's newest value. */
enum class SloOp
{
    Lt, ///< Breach while value <  threshold.
    Le, ///< Breach while value <= threshold.
    Gt, ///< Breach while value >  threshold.
    Ge, ///< Breach while value >= threshold.
};

/** Stable script spelling of an operator ("<", "<=", ">", ">="). */
[[nodiscard]] const char* sloOpName(SloOp op);

/** One SLO rule: metric, comparison, and required persistence. */
struct SloRule
{
    std::string metric;       ///< StatsHistory series name.
    SloOp op = SloOp::Lt;
    double threshold = 0.0;
    std::size_t for_intervals = 1; ///< Consecutive violating intervals.

    /** True if @p value violates the threshold. */
    [[nodiscard]] bool violates(double value) const;

    /** One-line script rendering (round-trips through parse()). */
    [[nodiscard]] std::string toString() const;
};

/**
 * An ordered list of SLO rules parsed from the compact text format:
 * one `<metric> <op> <threshold> for <k> [intervals]` per line, blank
 * lines and '#' comments ignored.
 */
class SloSpec
{
  public:
    SloSpec() = default;
    explicit SloSpec(std::vector<SloRule> rules);

    /**
     * Parse a spec from text. @p source names the origin for error
     * messages. @throws FatalError with source+line on a bad rule.
     */
    [[nodiscard]] static SloSpec parse(const std::string& text,
                                       const std::string& source = "<spec>");

    /** Parse a spec from a file. @throws FatalError on I/O or syntax. */
    [[nodiscard]] static SloSpec loadFile(const std::string& path);

    [[nodiscard]] const std::vector<SloRule>& rules() const
    {
        return rules_;
    }

    [[nodiscard]] bool empty() const { return rules_.empty(); }

    /** Script rendering, one rule per line (round-trips). */
    [[nodiscard]] std::string toString() const;

  private:
    std::vector<SloRule> rules_;
};

/** One breach: a rule whose violation just reached its persistence. */
struct SloEvent
{
    std::uint64_t interval = 0; ///< Interval the breach fired on.
    double time = 0.0;          ///< Simulated time of that interval.
    SloRule rule;
    double value = 0.0;         ///< The metric value that breached.

    /** Deterministic one-line JSON record. */
    [[nodiscard]] std::string toJson() const;
};

/**
 * Evaluates an SloSpec against a StatsHistory once per interval and
 * tracks per-rule consecutive-violation runs. Disabled until a spec
 * is configured. Thread-safe: evaluation happens on the harness
 * thread while `/healthz` reads breach state from the exporter
 * thread.
 */
class Watchdog
{
  public:
    Watchdog() = default;
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /** Install @p spec and reset all rule state. */
    void configure(SloSpec spec);

    /** True once a non-empty spec is installed. */
    [[nodiscard]] bool enabled() const;

    /** The installed spec (empty when disabled). */
    [[nodiscard]] SloSpec spec() const;

    /** Abort the run (FatalError) on any breach; default off. */
    void setFatalOnBreach(bool fatal);

    [[nodiscard]] bool fatalOnBreach() const;

    /**
     * Evaluate every rule against @p history's newest values for the
     * interval that just completed. Returns the breaches that *newly
     * fired* this interval (a rule already past its persistence stays
     * breaching but does not re-fire until it recovers first).
     */
    std::vector<SloEvent> evaluate(const StatsHistory& history, double time,
                                   std::uint64_t interval);

    /** Rules currently in breach (violating >= for_intervals). */
    [[nodiscard]] std::size_t breaching() const;

    /** Total breach events since configure(). */
    [[nodiscard]] std::uint64_t breachCount() const;

    /** The retained breach events, oldest first. */
    [[nodiscard]] std::vector<SloEvent> events() const;

    /** Retained breach events as JSON Lines. */
    [[nodiscard]] std::string eventsJsonl() const;

    /** Drop the spec, rule state, and retained events. */
    void clear();

  private:
    /// Retained breach events are bounded so a flapping rule cannot
    /// grow memory without limit over a long daemon run.
    static constexpr std::size_t kMaxEvents = 4096;

    struct RuleState
    {
        std::size_t consecutive = 0; ///< Current violating run length.
        bool breaching = false;      ///< Run has reached for_intervals.
    };

    mutable common::Mutex mutex_; ///< Serializes evaluate() + queries.
    SloSpec spec_ SATORI_GUARDED_BY(mutex_);
    std::vector<RuleState> states_ SATORI_GUARDED_BY(mutex_);
    std::deque<SloEvent> events_ SATORI_GUARDED_BY(mutex_);
    std::uint64_t breach_count_ SATORI_GUARDED_BY(mutex_) = 0;
    bool fatal_on_breach_ SATORI_GUARDED_BY(mutex_) = false;
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_WATCHDOG_HPP
