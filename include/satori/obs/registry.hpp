/**
 * @file
 * The metrics registry: counters, gauges, and fixed-bucket histograms
 * registered by name, updated with zero allocation on the hot path,
 * and exported as point-in-time snapshots (Prometheus-style text
 * exposition or JSON Lines).
 *
 * Registration is the slow path: it validates names, allocates the
 * instrument, and returns a stable reference. Updates through that
 * reference are plain integer/float stores - no locks, no lookups,
 * no allocation - so instruments can live on the controller's 100 ms
 * decision path without distorting what they measure. Snapshots copy
 * all values at once, so a snapshot is isolated from later updates.
 */

#ifndef SATORI_OBS_REGISTRY_HPP
#define SATORI_OBS_REGISTRY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"

namespace satori {
namespace obs {

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n events (hot path: one integer add). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    [[nodiscard]] std::uint64_t value() const { return value_; }

    /** Zero the count (registry reset). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time level that can move both ways. */
class Gauge
{
  public:
    Gauge() = default;

    /** Record the current level (hot path: one store). */
    void set(double value) { value_ = value; }

    /** Last recorded level. */
    [[nodiscard]] double value() const { return value_; }

    /** Zero the level (registry reset). */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A fixed-bucket histogram. Bucket upper bounds are set at
 * registration (ascending, finite); an implicit +Inf bucket catches
 * the tail. observe() follows Prometheus `le` semantics: a value
 * lands in the first bucket whose upper bound is >= the value.
 */
class Histogram
{
  public:
    /**
     * @param bounds Ascending finite bucket upper bounds (at least
     *        one). @throws FatalError on empty/unsorted/non-finite.
     */
    explicit Histogram(std::vector<double> bounds);

    /** Record one observation (hot path: short scan + two adds). */
    void observe(double value);

    /** The configured upper bounds (excluding the implicit +Inf). */
    [[nodiscard]] const std::vector<double>& bounds() const
    {
        return bounds_;
    }

    /**
     * Per-bucket (non-cumulative) counts; index bounds().size() is
     * the +Inf bucket.
     */
    [[nodiscard]] const std::vector<std::uint64_t>& bucketCounts() const
    {
        return counts_;
    }

    /** Total observations. */
    [[nodiscard]] std::uint64_t count() const { return count_; }

    /** Sum of all observed values. */
    [[nodiscard]] double sum() const { return sum_; }

    /** Zero all buckets (registry reset). */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; ///< bounds_.size() + 1 entries.
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** One counter's value at snapshot time. */
struct CounterSample
{
    std::string name;
    std::string help;
    std::uint64_t value = 0;
};

/** One gauge's value at snapshot time. */
struct GaugeSample
{
    std::string name;
    std::string help;
    double value = 0.0;
};

/** One histogram's state at snapshot time. */
struct HistogramSample
{
    std::string name;
    std::string help;
    std::vector<double> bounds;         ///< Upper bounds, no +Inf.
    std::vector<std::uint64_t> counts;  ///< Per-bucket, +Inf last.
    std::uint64_t count = 0;
    double sum = 0.0;
};

/**
 * A consistent copy of every registered instrument's value. Isolated
 * from updates made after snapshot() returned.
 */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /**
     * Prometheus text exposition (metric names have '.' mapped to
     * '_'; histograms render cumulative `le` buckets plus _sum and
     * _count series).
     */
    [[nodiscard]] std::string prometheusText() const;

    /** One JSON object per instrument, one per line. */
    [[nodiscard]] std::string jsonLines() const;
};

/**
 * Owns every instrument registered under it. Names use the charset
 * [a-zA-Z0-9_.] and must be unique across all instrument kinds;
 * registering a name twice is fatal (an instrument registered from
 * two call sites would silently merge unrelated series). Instruments
 * are never deallocated before the registry, so the returned
 * references stay valid for the registry's lifetime; reset() zeroes
 * values but keeps every registration.
 *
 * Thread-safety: registration, snapshot(), size(), and reset() are
 * serialized by an internal mutex, so concurrent components (e.g.
 * per-node controllers on a harness::ThreadPool) can register
 * instruments safely. Updates *through a returned reference* stay
 * lock-free by design — that is the hot-path contract above — so a
 * snapshot taken while another thread updates an instrument sees a
 * benign torn-free point-in-time value of each instrument, not a
 * cross-instrument atomic cut.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** Register a counter. @throws FatalError on a duplicate name. */
    Counter& counter(const std::string& name, const std::string& help);

    /** Register a gauge. @throws FatalError on a duplicate name. */
    Gauge& gauge(const std::string& name, const std::string& help);

    /**
     * Register a fixed-bucket histogram. @throws FatalError on a
     * duplicate name or invalid bounds.
     */
    Histogram& histogram(const std::string& name, const std::string& help,
                         std::vector<double> bounds);

    /** Number of registered instruments (all kinds). */
    [[nodiscard]] std::size_t size() const;

    /** Copy every instrument's current value. */
    [[nodiscard]] MetricsSnapshot snapshot() const;

    /** Zero every instrument; registrations stay valid. */
    void reset();

  private:
    template <typename Instrument>
    struct Entry
    {
        std::string name;
        std::string help;
        std::unique_ptr<Instrument> instrument;
    };

    /** @throws FatalError on a bad or already-registered name. */
    void claimName(const std::string& name) SATORI_REQUIRES(mutex_);

    mutable common::Mutex mutex_; ///< Serializes the entry tables.
    std::vector<Entry<Counter>> counters_ SATORI_GUARDED_BY(mutex_);
    std::vector<Entry<Gauge>> gauges_ SATORI_GUARDED_BY(mutex_);
    std::vector<Entry<Histogram>> histograms_ SATORI_GUARDED_BY(mutex_);
    /// All claimed names (sorted).
    std::vector<std::string> names_ SATORI_GUARDED_BY(mutex_);
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_REGISTRY_HPP
