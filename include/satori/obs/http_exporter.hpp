/**
 * @file
 * Embedded HTTP/1.1 exporter for the live telemetry plane: a small
 * blocking-accept-loop server on one dedicated thread, serving
 * read-only views of the observability singleton:
 *
 *   GET /metrics          Prometheus text exposition of a fresh
 *                         MetricsRegistry snapshot.
 *   GET /healthz          JSON liveness: intervals seen, degraded /
 *                         settled state, guard verdict, SLO breach
 *                         state (HTTP 503 while degraded/breaching).
 *   GET /history?metric=M[&window=S][&last=N][&stats=1][&rate=1]
 *                         JSON time-series from StatsHistory.
 *   GET /audit/tail?n=N   Last N decision-audit records as JSONL.
 *
 * The server binds loopback by default and speaks just enough
 * HTTP/1.1 for curl and Prometheus scrapers: GET only, one request
 * per connection, `Connection: close`. It is an *unauthenticated
 * diagnostic surface* - never bind it to a routable address in an
 * untrusted network (GUIDE.md §15).
 *
 * Port 0 requests an ephemeral port (the bound port is readable via
 * port(), and satori_sim prints it for scripts). Shutdown uses the
 * self-pipe trick: stop() writes a byte the accept loop's poll() sees
 * alongside the listen socket, so no connect-to-self or timeout
 * dances are needed.
 *
 * Serving is strictly read-only over snapshot copies, so a scraper
 * hitting /metrics mid-run cannot perturb controller decisions - the
 * byte-identical trace invariant is pinned by test with a 1 Hz
 * scraper running.
 */

#ifndef SATORI_OBS_HTTP_EXPORTER_HPP
#define SATORI_OBS_HTTP_EXPORTER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "satori/common/thread_annotations.hpp"

namespace satori {
namespace obs {

class Observability;

/** Exporter bind options. */
struct HttpExporterOptions
{
    /** Bind address; keep loopback unless you trust the network. */
    std::string bind_address = "127.0.0.1";

    /** TCP port; 0 = ephemeral (read the result from port()). */
    std::uint16_t port = 0;
};

/**
 * The exporter. start() binds/listens and spawns the serving thread;
 * stop() (or the destructor) shuts it down cleanly. All handlers read
 * from the Observability reference handed to the constructor; nothing
 * is ever written through it.
 */
class HttpExporter
{
  public:
    explicit HttpExporter(Observability& obs) : obs_(obs) {}
    ~HttpExporter();
    HttpExporter(const HttpExporter&) = delete;
    HttpExporter& operator=(const HttpExporter&) = delete;

    /**
     * Bind, listen, and start serving on a dedicated thread.
     * @throws FatalError if already running or on any socket error.
     */
    void start(const HttpExporterOptions& options);

    /** Stop serving and join the thread; idempotent. */
    void stop();

    /** True between start() and stop(). */
    [[nodiscard]] bool running() const;

    /** The bound TCP port (resolves port 0); 0 when not running. */
    [[nodiscard]] std::uint16_t port() const;

    /**
     * Handle one raw HTTP request and return the full response bytes
     * (status line through body). Exposed so tests can golden-check
     * routing and bodies without a socket in the loop.
     */
    [[nodiscard]] std::string handleRequest(const std::string& request) const;

    /**
     * Blocking one-shot client: GET @p target from 127.0.0.1:@p port
     * and return the full response (headers + body). Empty string on
     * connect/read failure. Used by tests, the bench scraper, and the
     * byte-identical-under-scraping drill.
     */
    [[nodiscard]] static std::string fetch(std::uint16_t port,
                                           const std::string& target);

  private:
    /**
     * poll() the listen socket + stop pipe; serve until stopped. The
     * serving thread works on fd *copies*, never the guarded members,
     * so start()/stop() own all lifecycle state.
     */
    void serveLoopOn(int listen_fd, int stop_fd) const;

    /** Read one request off @p fd (bounded), respond, close. */
    void serveConnection(int fd) const;

    /** The /history endpoint (parsed query -> response). */
    [[nodiscard]] std::string
    handleHistory(const std::map<std::string, std::string>& params) const;

    Observability& obs_; ///< Read-only source of every response.

    mutable common::Mutex lifecycle_mutex_; ///< Guards lifecycle state.
    bool running_ SATORI_GUARDED_BY(lifecycle_mutex_) = false;
    std::uint16_t bound_port_ SATORI_GUARDED_BY(lifecycle_mutex_) = 0;

    // The serving thread owns these fds while running; they are only
    // mutated under lifecycle_mutex_ from start()/stop().
    int listen_fd_ SATORI_GUARDED_BY(lifecycle_mutex_) = -1;
    int stop_pipe_rd_ SATORI_GUARDED_BY(lifecycle_mutex_) = -1;
    int stop_pipe_wr_ SATORI_GUARDED_BY(lifecycle_mutex_) = -1;
    std::thread thread_;
};

/**
 * A background client that GETs one target from the local exporter at
 * a fixed period - the "live scraper" for the overhead bench and the
 * byte-identical-under-scraping tests. Starts on construction, stops
 * on destruction (or stop()). Timing uses a poll() timeout on a stop
 * pipe, so stopping never waits out a period.
 */
class PeriodicScraper
{
  public:
    PeriodicScraper(std::uint16_t port, std::string target, int period_ms);
    ~PeriodicScraper();
    PeriodicScraper(const PeriodicScraper&) = delete;
    PeriodicScraper& operator=(const PeriodicScraper&) = delete;

    /** Stop scraping and join; idempotent. */
    void stop();

    /** Completed fetches so far. */
    [[nodiscard]] std::uint64_t scrapes() const;

    /** Bytes received across all fetches. */
    [[nodiscard]] std::uint64_t bytesReceived() const;

  private:
    /** Fetch-then-wait loop; @p stop_fd is the pipe's read end. */
    void scrapeLoopOn(int stop_fd);

    const std::uint16_t port_;
    const std::string target_;
    const int period_ms_;

    mutable common::Mutex lifecycle_mutex_; ///< Guards lifecycle + counters.
    bool running_ SATORI_GUARDED_BY(lifecycle_mutex_) = false;
    int stop_pipe_rd_ SATORI_GUARDED_BY(lifecycle_mutex_) = -1;
    int stop_pipe_wr_ SATORI_GUARDED_BY(lifecycle_mutex_) = -1;
    std::uint64_t scrapes_ SATORI_GUARDED_BY(lifecycle_mutex_) = 0;
    std::uint64_t bytes_ SATORI_GUARDED_BY(lifecycle_mutex_) = 0;
    std::thread thread_;
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_HTTP_EXPORTER_HPP
