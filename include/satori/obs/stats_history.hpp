/**
 * @file
 * Bounded in-memory time-series history for the live telemetry plane
 * (modelled on RocksDB's db/in_memory_stats_history.h): each control
 * interval, the harness snapshots the MetricsRegistry plus the
 * controller's per-interval facts (throughput/fairness/objective,
 * guard verdict, degraded/settled state) into per-series rings with
 * retention by snapshot count, by age, and by approximate bytes.
 *
 * Queries are read-only windows over that history: range / last-N
 * point extraction, min/max/mean/p50/p95 over a trailing window, and
 * delta-encoded counter rates - everything a live `/history` endpoint
 * or an SLO watchdog needs without rescanning a file.
 *
 * Time is whatever clock the recorder passes in - the harness passes
 * *simulated* seconds, so history contents are deterministic for a
 * given run and golden-testable with a fake clock. The history is
 * observability-only: the library writes into it and the exporter /
 * watchdog read from it; nothing on the decision path reads it back.
 *
 * Thread-safety: record(), clear(), configure(), and every query are
 * serialized by an internal mutex, so the HTTP exporter thread can
 * query mid-run while the harness thread records.
 */

#ifndef SATORI_OBS_STATS_HISTORY_HPP
#define SATORI_OBS_STATS_HISTORY_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "satori/common/thread_annotations.hpp"
#include "satori/obs/registry.hpp"

namespace satori {
namespace obs {

/** Retention knobs; every limit of 0 means "unlimited". */
struct StatsHistoryOptions
{
    /** Maximum snapshots retained (ring capacity). */
    std::size_t capacity = 4096;

    /** Maximum age in seconds relative to the newest snapshot. */
    double max_age_seconds = 0.0;

    /** Approximate byte budget for all retained points. */
    std::size_t max_bytes = 0;
};

/** One retained sample of one series. */
struct HistoryPoint
{
    double time = 0.0;          ///< Recorder's clock (simulated s).
    std::uint64_t interval = 0; ///< Control-interval index.
    double value = 0.0;
};

/** Order statistics over a trailing window of one series. */
struct WindowStats
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0; ///< Nearest-rank median.
    double p95 = 0.0; ///< Nearest-rank 95th percentile.
};

/** How a series accumulates; counters support rate queries. */
enum class SeriesKind
{
    Counter, ///< Monotone count; rates are meaningful deltas.
    Gauge,   ///< Point-in-time level.
};

/**
 * The bounded history store. Disabled by default: record() on a
 * disabled history is a no-op, so the per-interval hook costs one
 * branch until a consumer (exporter, watchdog, --history-out) turns
 * it on.
 */
class StatsHistory
{
  public:
    StatsHistory() = default;
    StatsHistory(const StatsHistory&) = delete;
    StatsHistory& operator=(const StatsHistory&) = delete;

    /** Replace the retention options (keeps recorded data, then
     *  re-applies retention on the next record()). */
    void configure(const StatsHistoryOptions& options);

    /** The retention options in force. */
    [[nodiscard]] StatsHistoryOptions options() const;

    /** Turn snapshot recording on or off. */
    void setEnabled(bool enabled);

    /** True while record() stores snapshots. */
    [[nodiscard]] bool enabled() const;

    /**
     * Record one snapshot row: every counter and gauge in @p snap
     * becomes a point in its series; histograms contribute
     * `<name>.count` and `<name>.sum` counter series; @p facts are
     * recorded as gauge series (the harness passes `facts.*`).
     * Intervals must be non-decreasing run to run. No-op while
     * disabled.
     */
    void record(double time, std::uint64_t interval,
                const MetricsSnapshot& snap,
                const std::vector<std::pair<std::string, double>>& facts);

    /** Snapshot rows currently retained. */
    [[nodiscard]] std::size_t snapshots() const;

    /** Snapshot rows evicted by retention since the last clear(). */
    [[nodiscard]] std::uint64_t evicted() const;

    /** Approximate bytes held by retained points and series names. */
    [[nodiscard]] std::size_t approxBytes() const;

    /** Sorted names of every series seen (retained or not). */
    [[nodiscard]] std::vector<std::string> seriesNames() const;

    /** The kind of @p series, or nullopt if unknown. */
    [[nodiscard]] std::optional<SeriesKind>
    seriesKind(const std::string& series) const;

    /** Points of @p series with time in [t_begin, t_end]. */
    [[nodiscard]] std::vector<HistoryPoint>
    range(const std::string& series, double t_begin, double t_end) const;

    /** The newest @p n points of @p series (oldest first). */
    [[nodiscard]] std::vector<HistoryPoint>
    lastN(const std::string& series, std::size_t n) const;

    /** The newest value of @p series, or nullopt if empty/unknown. */
    [[nodiscard]] std::optional<double>
    latest(const std::string& series) const;

    /**
     * min/max/mean/p50/p95 over the trailing @p window_seconds of
     * @p series (window 0 = everything retained). Percentiles use
     * nearest-rank on the sorted values. nullopt when the series is
     * unknown or has no points in the window.
     */
    [[nodiscard]] std::optional<WindowStats>
    windowStats(const std::string& series, double window_seconds) const;

    /**
     * Delta-encoded per-second rates of a counter series over the
     * trailing @p window_seconds: one point per adjacent pair, stamped
     * at the later point's time. A value drop (counter reset) yields
     * rate 0 rather than a negative artifact. Empty for gauges and
     * unknown series.
     */
    [[nodiscard]] std::vector<HistoryPoint>
    counterRates(const std::string& series, double window_seconds) const;

    /**
     * The full retained history as one deterministic JSON object
     * (series in name order): `{"snapshots":N,"evicted":N,
     * "series":{"name":{"kind":"counter","points":[[t,i,v],...]}}}`.
     */
    [[nodiscard]] std::string toJson() const;

    /** Drop all series, stamps, and eviction counts. */
    void clear();

  private:
    struct Series
    {
        SeriesKind kind = SeriesKind::Gauge;
        std::deque<HistoryPoint> points;
    };

    /** Append one point, growing the byte estimate. */
    void append(const std::string& name, SeriesKind kind, double time,
                std::uint64_t interval, double value)
        SATORI_REQUIRES(mutex_);

    /** Evict oldest snapshots until every retention limit holds. */
    void enforceRetention() SATORI_REQUIRES(mutex_);

    /** Drop the oldest snapshot row across all series. */
    void evictOldest() SATORI_REQUIRES(mutex_);

    mutable common::Mutex mutex_; ///< Serializes recording + queries.
    bool enabled_ SATORI_GUARDED_BY(mutex_) = false;
    StatsHistoryOptions options_ SATORI_GUARDED_BY(mutex_);
    /// Series by name; std::map so every export iterates in a stable
    /// deterministic order.
    std::map<std::string, Series> series_ SATORI_GUARDED_BY(mutex_);
    /// (time, interval) of every retained snapshot row, oldest first.
    std::deque<std::pair<double, std::uint64_t>> stamps_
        SATORI_GUARDED_BY(mutex_);
    std::size_t bytes_ SATORI_GUARDED_BY(mutex_) = 0;
    std::uint64_t evicted_ SATORI_GUARDED_BY(mutex_) = 0;
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_STATS_HISTORY_HPP
