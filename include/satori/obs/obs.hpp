/**
 * @file
 * The observability front door: a process-wide Observability context
 * owning the metrics registry, the span tracer, and the decision-audit
 * channel, plus the hook macros the rest of the library instruments
 * itself with.
 *
 * Instrumentation sites use three macros, all of which compile away to
 * nothing when the library is built with SATORI_OBS=OFF (the same
 * pattern as SATORI_AUDIT_HOOK in common/logging.hpp):
 *
 *   SATORI_OBS_SPAN("bo.fit");          // RAII span to scope exit
 *   SATORI_OBS_METRIC(bo_fits.inc());   // update a LibraryMetrics field
 *   SATORI_OBS_HOOK(stmt);              // arbitrary obs-only statement
 *
 * Even when compiled in, everything is off by default: the tracer,
 * metrics, and audit channel each cost one branch per site until a
 * harness (satori_sim, tests, benches) enables them at runtime.
 *
 * Observability is one-way by design. The library writes spans,
 * metric updates, and audit records; nothing in the decision path
 * reads any of it back, so enabling observability can never change
 * what the controller decides - golden decision traces stay
 * byte-identical with obs on or off.
 */

#ifndef SATORI_OBS_OBS_HPP
#define SATORI_OBS_OBS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"
#include "satori/obs/audit.hpp"
#include "satori/obs/registry.hpp"
#include "satori/obs/stats_history.hpp"
#include "satori/obs/tracer.hpp"
#include "satori/obs/watchdog.hpp"

namespace satori {
namespace obs {

/**
 * Stable references to every instrument the library itself registers,
 * created once by the Observability context so hot-path macro sites
 * never pay a name lookup (and never trip the double-register fatal).
 */
struct LibraryMetrics
{
    /** Registers every library instrument in @p registry. */
    explicit LibraryMetrics(MetricsRegistry& registry);

    Counter& controller_decisions;   ///< decide() calls.
    Counter& controller_degraded;    ///< Intervals in degraded mode.
    Counter& controller_holds;       ///< Unusable-sample hold-course.
    Counter& controller_retries;     ///< Actuation-mismatch retries.
    Counter& controller_settles;     ///< Transitions into settled.
    Counter& bo_fits;                ///< Proxy-model refits.
    Counter& bo_grid_refits;         ///< Hyperparameter grid refits.
    Counter& bo_suggests;            ///< Acquisition maximizations.
    Counter& bo_window_evictions;    ///< Sliding-window GP downdates.
    Counter& bo_screen_kept;         ///< Candidates surviving screening.
    Counter& bo_screen_pruned;       ///< Candidates pruned by screening.
    Counter& bo_approx_fallbacks;    ///< Approx-GP Gram rebuild fallbacks.
    Counter& bo_approx_cache_hits;   ///< Candidate-score cache hits.
    Counter& bo_approx_cache_misses; ///< Candidate-score cache rebuilds.
    Counter& gp_fits;                ///< GP Cholesky factorizations.
    Counter& gp_incremental_updates; ///< O(n^2) rank-1 GP appends.
    Counter& gp_refresh_solves;      ///< Factor-reusing target refreshes.
    Counter& guard_healthy;          ///< Telemetry samples passed.
    Counter& guard_repaired;         ///< Telemetry samples repaired.
    Counter& guard_unusable;         ///< Telemetry samples rejected.
    Counter& faults_injected;        ///< Fault activations flagged.
    Counter& sim_steps;              ///< Simulated server intervals.
    Counter& harness_intervals;      ///< Harness control intervals.
    Counter& persist_wal_records;    ///< WAL records appended.
    Counter& persist_snapshots;      ///< Snapshots installed.
    Counter& persist_snapshot_bytes; ///< Snapshot payload bytes.
    Counter& slo_breaches;           ///< Watchdog breach events.
    Counter& http_requests;          ///< Exporter requests served.

    Gauge& bo_samples;               ///< Current training-set size.
    Gauge& controller_w_t;           ///< Throughput weight in force.
    Gauge& controller_w_f;           ///< Fairness weight in force.
    Gauge& controller_objective;     ///< Last combined objective.

    Histogram& bo_candidates;        ///< Candidates per suggest call.
    Histogram& gp_training_size;     ///< Training size per GP fit.
};

/**
 * Point-in-time liveness view served by the exporter's `/healthz`:
 * how far the run has progressed, the controller's last-known state,
 * and the watchdog/history health of the telemetry plane itself.
 */
struct HealthView
{
    std::uint64_t intervals = 0;     ///< Live intervals observed.
    std::uint64_t last_interval = 0; ///< Newest interval index.
    double time = 0.0;               ///< Newest simulated time.

    bool have_decision = false;      ///< A controller has reported.
    std::string guard_verdict;       ///< Last guard verdict ("" none).
    bool degraded = false;           ///< Equal-partition fallback on.
    bool settled = false;            ///< Exploration currently off.
    double objective = 0.0;          ///< Last combined objective.

    std::size_t slo_rules = 0;       ///< Rules installed.
    std::size_t slo_breaching = 0;   ///< Rules currently in breach.
    std::uint64_t slo_breaches = 0;  ///< Breach events so far.

    bool history_enabled = false;
    std::size_t history_snapshots = 0;
    std::uint64_t history_evicted = 0;

    /** "ok" | "degraded" | "breaching" (worst state wins). */
    [[nodiscard]] const char* status() const;

    /** True when status() is "ok" (exporter maps false to HTTP 503). */
    [[nodiscard]] bool ok() const;

    /** Deterministic single-line JSON rendering. */
    [[nodiscard]] std::string toJson() const;
};

/**
 * Process-wide observability context. Reached through observability();
 * constructed lazily on first use with everything disabled.
 *
 * The *live plane* (StatsHistory + Watchdog + the per-interval facts
 * behind /healthz) stays dormant until setLiveEnabled(true); the
 * harness hook then records one history row and runs the watchdog
 * once per control interval. Like every other obs surface it is
 * one-way: the decision path writes facts in, the exporter and
 * watchdog only read.
 */
class Observability
{
  public:
    Observability(const Observability&) = delete;
    Observability& operator=(const Observability&) = delete;

    /** The process-wide instance. */
    static Observability& instance();

    /** The metrics registry (library + harness instruments). */
    [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

    /** The span tracer. */
    [[nodiscard]] Tracer& tracer() { return tracer_; }

    /** The decision-audit channel. */
    [[nodiscard]] DecisionAuditChannel& audit() { return audit_; }

    /** The bounded stats history (live plane). */
    [[nodiscard]] StatsHistory& history() { return history_; }

    /** The SLO watchdog (live plane). */
    [[nodiscard]] Watchdog& watchdog() { return watchdog_; }

    /** Pre-registered handles for the library's own instruments. */
    [[nodiscard]] LibraryMetrics& lib() { return lib_; }

    /** Turn metric updates on or off (macro sites branch on this). */
    void setMetricsEnabled(bool enabled) { metrics_enabled_ = enabled; }

    /** True while SATORI_OBS_METRIC sites record. */
    [[nodiscard]] bool metricsEnabled() const { return metrics_enabled_; }

    /** Turn the live plane on or off (configure before the run). */
    void setLiveEnabled(bool enabled) { live_enabled_ = enabled; }

    /** True while the per-interval live hook records. */
    [[nodiscard]] bool liveEnabled() const { return live_enabled_; }

    /**
     * Controller callback: remember the newest decision's facts for
     * /healthz and the next history row. Called by the controller's
     * audit path whenever the live plane is enabled, independent of
     * whether the audit channel buffers records.
     */
    void noteDecision(const DecisionRecord& record);

    /**
     * Harness callback, once per control interval after the decision
     * and trace write: snapshot the registry plus interval facts into
     * the history and run the watchdog. @p throughput and
     * @p fairness are the interval's normalized goal values; @p ips
     * the observed per-job rates. No-op unless the live plane is
     * enabled. @throws FatalError on an SLO breach in fatal mode.
     */
    void onHarnessInterval(std::uint64_t interval, double time,
                           const std::vector<double>& ips,
                           double throughput, double fairness);

    /** The current /healthz liveness view. */
    [[nodiscard]] HealthView healthView() const;

    /**
     * Return to the just-constructed state: metrics zeroed, spans,
     * audit records, history, watchdog state, and live facts dropped,
     * everything disabled. For tests and benches that share the
     * process-wide instance.
     */
    void resetAll();

  private:
    Observability();

    MetricsRegistry metrics_;
    Tracer tracer_;
    DecisionAuditChannel audit_;
    StatsHistory history_;
    Watchdog watchdog_;
    LibraryMetrics lib_;
    bool metrics_enabled_ = false;
    bool live_enabled_ = false; ///< Configuration-time flag (pre-run).

    mutable common::Mutex live_mutex_; ///< Guards the live facts.
    std::uint64_t live_intervals_ SATORI_GUARDED_BY(live_mutex_) = 0;
    std::uint64_t live_last_interval_ SATORI_GUARDED_BY(live_mutex_) = 0;
    double live_time_ SATORI_GUARDED_BY(live_mutex_) = 0.0;
    bool have_decision_ SATORI_GUARDED_BY(live_mutex_) = false;
    DecisionRecord last_decision_ SATORI_GUARDED_BY(live_mutex_);
};

/** Shorthand for Observability::instance(). */
[[nodiscard]] Observability& observability();

} // namespace obs
} // namespace satori

#if defined(SATORI_OBS_ENABLED) && SATORI_OBS_ENABLED

#define SATORI_OBS_CONCAT_INNER(a, b) a##b
#define SATORI_OBS_CONCAT(a, b) SATORI_OBS_CONCAT_INNER(a, b)

/**
 * Open an RAII span named @p name (a string literal) lasting until
 * scope exit. One branch when the tracer is disabled.
 */
#define SATORI_OBS_SPAN(name)                                            \
    ::satori::obs::SpanGuard SATORI_OBS_CONCAT(satori_obs_span_,         \
                                               __LINE__)(               \
        ::satori::obs::observability().tracer(), name)

/**
 * Update a LibraryMetrics field, e.g. SATORI_OBS_METRIC(bo_fits.inc())
 * or SATORI_OBS_METRIC(bo_samples.set(n)). One branch when metrics
 * are disabled.
 */
#define SATORI_OBS_METRIC(update)                                        \
    do {                                                                 \
        ::satori::obs::Observability& satori_obs_ctx =                   \
            ::satori::obs::observability();                              \
        if (satori_obs_ctx.metricsEnabled())                             \
            satori_obs_ctx.lib().update;                                 \
    } while (0)

/** Execute an arbitrary observability-only statement. */
#define SATORI_OBS_HOOK(stmt)                                            \
    do {                                                                 \
        stmt;                                                            \
    } while (0)

#else // !SATORI_OBS_ENABLED

#define SATORI_OBS_SPAN(name)                                            \
    do {                                                                 \
    } while (0)
#define SATORI_OBS_METRIC(update)                                        \
    do {                                                                 \
    } while (0)
#define SATORI_OBS_HOOK(stmt)                                            \
    do {                                                                 \
    } while (0)

#endif // SATORI_OBS_ENABLED

#endif // SATORI_OBS_OBS_HPP
