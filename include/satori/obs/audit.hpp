/**
 * @file
 * The decision-audit channel: one structured record per control
 * interval, answering "why did the controller pick this config" -
 * the observed IPS the decision was based on, the telemetry guard's
 * verdict, the BO proxy-model state, the objective/weight values in
 * force, the chosen configuration, and how the decision left the
 * controller (exploring, settled, holding, retrying actuation,
 * degraded).
 *
 * Records are buffered in a bounded in-memory ring and exported as
 * JSON Lines, so an auditable objective trajectory falls out of every
 * run without recompiling. The ring's capacity defaults high enough
 * that normal runs keep everything, but a long-lived daemon can never
 * grow the channel without limit: once full, the oldest record is
 * dropped for each new one and dropped() counts the loss. The newest
 * records also serve the exporter's `/audit/tail` endpoint. The
 * channel is observability only: the controller writes records, never
 * reads them back.
 */

#ifndef SATORI_OBS_AUDIT_HPP
#define SATORI_OBS_AUDIT_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"

namespace satori {
namespace obs {

/** Everything worth knowing about one control-interval decision. */
struct DecisionRecord
{
    std::size_t interval = 0;  ///< 0-based decide() invocation index.
    double time = 0.0;         ///< Simulated time of the observation.
    std::string policy;        ///< Deciding policy's name.

    std::vector<double> observed_ips; ///< Post-guard per-job IPS.
    std::string guard_verdict; ///< healthy | repaired | unusable | off.

    bool degraded = false;     ///< Equal-partition fallback active.
    bool settled = false;      ///< Exploration currently off.

    double throughput = 0.0;   ///< Normalized goal values in force.
    double fairness = 0.0;
    double w_t = 0.0;          ///< Dynamic weights in force.
    double w_f = 0.0;
    double objective = 0.0;    ///< w_t * T + w_f * F.

    std::size_t bo_samples = 0;     ///< Proxy-model training size.
    double proxy_change_pct = 0.0;  ///< Mean |d mean| % at the probes.

    std::string chosen_config; ///< Configuration::toString() form.

    /**
     * How the decision was produced: seed | explore | exploit |
     * settled | hold | retry-actuation | degraded.
     */
    std::string outcome;

    // Decision fast-path diagnostics, from the engine's most recent
    // acquisition maximization (zeros before the first one; repeated
    // on intervals that decided without a fresh suggestion).
    std::size_t screen_kept = 0;   ///< Candidates surviving screening.
    std::size_t screen_pruned = 0; ///< Candidates pruned by the bound.
    std::size_t window_evictions = 0; ///< Lifetime GP evictions.
    bool approx_active = false; ///< Approximate GP made this decision.
};

/**
 * Buffers DecisionRecords in a bounded ring and exports them as JSON
 * Lines. Disabled by default; a disabled channel's emit() sites take
 * one branch.
 *
 * Thread-safety: emit(), jsonLines(), tailJsonLines(), size(),
 * dropped(), and clear() are serialized by an internal mutex so
 * concurrent controllers (one per simulated node) can share a channel
 * while the HTTP exporter tails it. setEnabled(), setCapacity(), and
 * the bulk records() accessor are configuration/post-run surfaces:
 * call them while no other thread is emitting.
 */
class DecisionAuditChannel
{
  public:
    /** Default ring capacity: generous (~1.8 h of 100 ms intervals). */
    static constexpr std::size_t kDefaultCapacity = 65536;

    DecisionAuditChannel() = default;
    DecisionAuditChannel(const DecisionAuditChannel&) = delete;
    DecisionAuditChannel& operator=(const DecisionAuditChannel&) = delete;

    /** Turn record buffering on or off (configure before the run). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** True while records are being buffered. */
    [[nodiscard]] bool enabled() const { return enabled_; }

    /**
     * Set the ring capacity (>= 1; values of 0 are clamped to 1) and
     * trim the oldest records if already over it.
     */
    void setCapacity(std::size_t capacity);

    /** The ring capacity in force. */
    [[nodiscard]] std::size_t capacity() const;

    /** Buffer one record, evicting the oldest when full (no-op while
     *  disabled). */
    void emit(DecisionRecord record);

    /** Records currently retained. */
    [[nodiscard]] std::size_t size() const;

    /** Oldest records evicted by the ring since the last clear(). */
    [[nodiscard]] std::uint64_t dropped() const;

    /**
     * Records buffered so far (oldest first). Returns a reference
     * into the ring: callers must be quiesced (no concurrent emit),
     * which is why this accessor is exempt from the lock analysis.
     */
    [[nodiscard]] const std::deque<DecisionRecord>& records() const
        SATORI_NO_THREAD_SAFETY_ANALYSIS
    {
        return records_;
    }

    /** All retained records as JSON Lines (one object per line). */
    [[nodiscard]] std::string jsonLines() const;

    /** The newest @p n records as JSON Lines (oldest of them first). */
    [[nodiscard]] std::string tailJsonLines(std::size_t n) const;

    /** Write jsonLines() to @p path. @throws FatalError. */
    void writeJsonl(const std::string& path) const;

    /** Drop all buffered records and the dropped() count. */
    void clear();

  private:
    bool enabled_ = false; ///< Configuration-time flag (pre-run).
    mutable common::Mutex mutex_; ///< Serializes the record ring.
    std::size_t capacity_ SATORI_GUARDED_BY(mutex_) = kDefaultCapacity;
    std::deque<DecisionRecord> records_ SATORI_GUARDED_BY(mutex_);
    std::uint64_t dropped_ SATORI_GUARDED_BY(mutex_) = 0;
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_AUDIT_HPP
