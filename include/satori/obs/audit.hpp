/**
 * @file
 * The decision-audit channel: one structured record per control
 * interval, answering "why did the controller pick this config" -
 * the observed IPS the decision was based on, the telemetry guard's
 * verdict, the BO proxy-model state, the objective/weight values in
 * force, the chosen configuration, and how the decision left the
 * controller (exploring, settled, holding, retrying actuation,
 * degraded).
 *
 * Records are buffered in memory and exported as JSON Lines, so an
 * auditable objective trajectory falls out of every run without
 * recompiling. The channel is observability only: the controller
 * writes records, never reads them back.
 */

#ifndef SATORI_OBS_AUDIT_HPP
#define SATORI_OBS_AUDIT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "satori/common/thread_annotations.hpp"

namespace satori {
namespace obs {

/** Everything worth knowing about one control-interval decision. */
struct DecisionRecord
{
    std::size_t interval = 0;  ///< 0-based decide() invocation index.
    double time = 0.0;         ///< Simulated time of the observation.
    std::string policy;        ///< Deciding policy's name.

    std::vector<double> observed_ips; ///< Post-guard per-job IPS.
    std::string guard_verdict; ///< healthy | repaired | unusable | off.

    bool degraded = false;     ///< Equal-partition fallback active.
    bool settled = false;      ///< Exploration currently off.

    double throughput = 0.0;   ///< Normalized goal values in force.
    double fairness = 0.0;
    double w_t = 0.0;          ///< Dynamic weights in force.
    double w_f = 0.0;
    double objective = 0.0;    ///< w_t * T + w_f * F.

    std::size_t bo_samples = 0;     ///< Proxy-model training size.
    double proxy_change_pct = 0.0;  ///< Mean |d mean| % at the probes.

    std::string chosen_config; ///< Configuration::toString() form.

    /**
     * How the decision was produced: seed | explore | exploit |
     * settled | hold | retry-actuation | degraded.
     */
    std::string outcome;
};

/**
 * Buffers DecisionRecords and exports them as JSON Lines. Disabled
 * by default; a disabled channel's emit() sites take one branch.
 *
 * Thread-safety: emit(), jsonLines(), and clear() are serialized by
 * an internal mutex so concurrent controllers (one per simulated
 * node) can share a channel. setEnabled() and the bulk records()
 * accessor are configuration/post-run surfaces: call them while no
 * other thread is emitting.
 */
class DecisionAuditChannel
{
  public:
    DecisionAuditChannel() = default;
    DecisionAuditChannel(const DecisionAuditChannel&) = delete;
    DecisionAuditChannel& operator=(const DecisionAuditChannel&) = delete;

    /** Turn record buffering on or off (configure before the run). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** True while records are being buffered. */
    [[nodiscard]] bool enabled() const { return enabled_; }

    /** Buffer one record (no-op while disabled). */
    void emit(DecisionRecord record);

    /**
     * Records buffered so far. Returns a reference into the buffer:
     * callers must be quiesced (no concurrent emit), which is why
     * this accessor is exempt from the lock analysis.
     */
    [[nodiscard]] const std::vector<DecisionRecord>& records() const
        SATORI_NO_THREAD_SAFETY_ANALYSIS
    {
        return records_;
    }

    /** All records as JSON Lines (one object per line). */
    [[nodiscard]] std::string jsonLines() const;

    /** Write jsonLines() to @p path. @throws FatalError. */
    void writeJsonl(const std::string& path) const;

    /** Drop all buffered records. */
    void clear();

  private:
    bool enabled_ = false; ///< Configuration-time flag (pre-run).
    mutable common::Mutex mutex_; ///< Serializes the record buffer.
    std::vector<DecisionRecord> records_ SATORI_GUARDED_BY(mutex_);
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_AUDIT_HPP
