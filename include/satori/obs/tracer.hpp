/**
 * @file
 * The structured event tracer: lightweight nested spans with
 * monotonic-clock durations, recorded into a preallocated in-memory
 * buffer and exported as Chrome `trace_event` JSON, so a full
 * controller run opens directly in chrome://tracing or Perfetto.
 *
 * Spans are opened with SATORI_OBS_SPAN("bo.fit") (see obs.hpp) and
 * close with scope exit. A disabled tracer costs one branch per span
 * site; an enabled one costs two clock reads plus a buffer append.
 * Span names must be string literals (the tracer stores the pointer,
 * not a copy - that is what keeps the hot path allocation-free).
 *
 * The tracer is observability only: nothing in the library may read
 * time back out of it, so enabling tracing can never change a
 * decision (the determinism analyzer allowlists wall-clock reads for
 * exactly this layer).
 *
 * Thread-safety: the tracer is deliberately single-threaded — span
 * begin/end must come from one thread (repeatPolicy falls back to
 * serial execution whenever a tracer sink is attached). Guarding the
 * buffer would put a lock on the one-branch disabled path, which the
 * cost contract above forbids; see GUIDE.md §13 for the annotation
 * policy that makes this the documented exception.
 */

#ifndef SATORI_OBS_TRACER_HPP
#define SATORI_OBS_TRACER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace satori {
namespace obs {

/** Nanoseconds from the process-local monotonic steady clock. */
[[nodiscard]] std::uint64_t steadyNowNs();

/** One completed span. */
struct TraceEvent
{
    const char* name = "";        ///< Static string (macro literal).
    std::uint64_t start_ns = 0;   ///< Steady-clock start.
    std::uint64_t duration_ns = 0;
    std::uint32_t depth = 0;      ///< Nesting depth (0 = top level).
};

/** Aggregate of all spans sharing one name (profiling summaries). */
struct SpanAggregate
{
    std::string name;
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
};

/**
 * Records nested spans. Disabled by default; when disabled, span
 * sites take one branch and record nothing.
 */
class Tracer
{
  public:
    /** Nanosecond clock source; injectable for deterministic tests. */
    using ClockFn = std::uint64_t (*)();

    explicit Tracer(ClockFn clock = &steadyNowNs);
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /** Turn span recording on or off. */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** True while spans are being recorded. */
    [[nodiscard]] bool enabled() const { return enabled_; }

    /**
     * Open a span. @p name must outlive the tracer (pass a string
     * literal). Must be balanced by endSpan().
     */
    void beginSpan(const char* name);

    /** Close the innermost open span. @throws PanicError if none. */
    void endSpan();

    /** Completed spans so far (open spans are not included). */
    [[nodiscard]] const std::vector<TraceEvent>& events() const
    {
        return events_;
    }

    /** Number of currently open (unclosed) spans. */
    [[nodiscard]] std::size_t openSpans() const { return open_.size(); }

    /**
     * Chrome trace_event JSON ("X" complete events, microsecond
     * timestamps rebased to the first span). Loads in
     * chrome://tracing and Perfetto.
     */
    [[nodiscard]] std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to @p path. @throws FatalError. */
    void writeChromeTrace(const std::string& path) const;

    /** Per-name aggregates, sorted by descending total time. */
    [[nodiscard]] std::vector<SpanAggregate> aggregate() const;

    /** Drop all completed and open spans. */
    void clear();

  private:
    /** An open span: its event slot plus the start timestamp. */
    struct OpenSpan
    {
        std::size_t event_index;
    };

    ClockFn clock_;
    bool enabled_ = false;
    std::vector<TraceEvent> events_;
    std::vector<OpenSpan> open_;
};

/**
 * RAII span: opens on construction when the tracer is enabled,
 * closes on destruction. Created by SATORI_OBS_SPAN.
 */
class SpanGuard
{
  public:
    SpanGuard(Tracer& tracer, const char* name) : tracer_(tracer)
    {
        if (tracer_.enabled()) {
            tracer_.beginSpan(name);
            active_ = true;
        }
    }

    ~SpanGuard()
    {
        if (active_)
            tracer_.endSpan();
    }

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

  private:
    Tracer& tracer_;
    bool active_ = false;
};

} // namespace obs
} // namespace satori

#endif // SATORI_OBS_TRACER_HPP
