/**
 * @file
 * Miss-ratio curves: LLC misses-per-kilo-instruction as a function of
 * allocated cache ways.
 *
 * Real workloads' MRCs are convex and monotonically non-increasing in
 * allocated ways; we support a parametric exponential form (fit to
 * published PARSEC/CloudSuite characterizations) and an arbitrary
 * tabulated form (e.g. a Mattson stack-distance histogram reduced to
 * way counts).
 */

#ifndef SATORI_PERFMODEL_MRC_HPP
#define SATORI_PERFMODEL_MRC_HPP

#include <vector>

namespace satori {
namespace perfmodel {

/**
 * A miss-ratio curve, queried by integer way count (>= 1).
 *
 * Value semantics; cheap to copy (a handful of doubles or a short
 * table).
 */
class MissRatioCurve
{
  public:
    /** A flat curve (cache-insensitive workload). */
    MissRatioCurve() = default;

    /**
     * Exponential-decay curve:
     * mpki(w) = mpki_floor + (mpki_one - mpki_floor) * exp(-(w-1)/decay).
     *
     * @param mpki_one  MPKI with a single way.
     * @param mpki_floor MPKI with unbounded cache (compulsory misses).
     * @param decay_ways Decay constant in ways; small = cache-friendly,
     *        large = needs many ways before misses drop.
     */
    [[nodiscard]] static MissRatioCurve exponential(double mpki_one, double mpki_floor,
                                      double decay_ways);

    /**
     * Tabulated curve: @p mpki_by_way[i] is the MPKI with (i+1) ways.
     * Queries beyond the table clamp to the last entry.
     * @pre non-empty, non-negative, non-increasing.
     */
    [[nodiscard]] static MissRatioCurve table(std::vector<double> mpki_by_way);

    /**
     * Working-set-cliff curve: MPKI stays near mpki_one until the
     * allocation approaches the working set (@p knee_ways), then
     * falls steeply to mpki_floor over ~@p width ways (a logistic in
     * the way count). Real MRCs commonly show such knees; they are
     * what makes one-way-at-a-time reallocation blind to the benefit
     * of crossing the cliff.
     */
    [[nodiscard]] static MissRatioCurve sCurve(double mpki_one, double mpki_floor,
                                 double knee_ways, double width);

    /**
     * A curve derived from a synthetic stack-distance histogram: a
     * working set of @p ws_ways ways touched with geometric reuse
     * decay @p reuse_decay, scaled so one way yields @p mpki_one.
     * Models Mattson-style inclusion: more ways monotonically capture
     * more of the reuse distribution.
     */
    [[nodiscard]] static MissRatioCurve fromStackDistances(double mpki_one,
                                             double ws_ways,
                                             double reuse_decay,
                                             int max_ways);

    /** MPKI with @p ways allocated ways. @pre ways >= 1. */
    [[nodiscard]] double mpki(int ways) const;

    /**
     * MPKI at a continuous effective way count (>= 1), used for the
     * core-count/cache-pressure coupling; tables are linearly
     * interpolated, the exponential form is evaluated directly.
     */
    [[nodiscard]] double mpkiAt(double ways) const;

    /** MPKI floor (compulsory misses) of this curve. */
    [[nodiscard]] double floorMpki() const;

  private:
    // Exponential parameters (used when table_ is empty).
    double mpki_one_ = 0.0;
    double mpki_floor_ = 0.0;
    double decay_ways_ = 1.0;
    std::vector<double> table_;
};

} // namespace perfmodel
} // namespace satori

#endif // SATORI_PERFMODEL_MRC_HPP
