/**
 * @file
 * The analytic performance model that stands in for real hardware.
 *
 * Given a phase's sensitivity parameters and a (cores, LLC ways,
 * bandwidth share, power share) allocation, computes the job's IPS
 * with a classic CPI-stack + Amdahl + bandwidth-roofline composition:
 *
 *   cpi      = 1/base_ipc + mpki(ways)/1000 * miss_penalty
 *   ips_core = freq * power_scale / cpi * amdahl(cores)
 *   demand   = ips_core * mpki/1000 * bytes_per_miss
 *   ips      = ips_core * min(1, bw_cap / demand)
 *
 * This couples the resources the same way real machines do: more ways
 * reduce both stalls and bandwidth demand, so the utility of ways
 * depends on the bandwidth allocation and vice versa (the "correlated
 * utility" SATORI's joint exploration exploits, Sec. VI).
 */

#ifndef SATORI_PERFMODEL_PERF_HPP
#define SATORI_PERFMODEL_PERF_HPP

#include "satori/common/types.hpp"
#include "satori/perfmodel/phase.hpp"

namespace satori {
namespace perfmodel {

/** Physical constants of the simulated machine. */
struct MachineParams
{
    /** Core clock in GHz. */
    double freq_ghz = 2.4;

    /** Peak DRAM bandwidth in GB/s (MBA partitions fractions of it). */
    double peak_bw_gbps = 42.0;

    /**
     * Exponent of the power-cap frequency response; only used when a
     * PowerCap resource is present. 0.4 approximates DVFS curves.
     */
    double power_exponent = 0.4;

    /** A Skylake-like machine matching the paper's testbed. */
    [[nodiscard]] static MachineParams paperLike() { return {}; }
};

/** Allocation handed to the model, in resource units/fractions. */
struct AllocationView
{
    int cores = 1;             ///< Physical cores allocated.
    int llc_ways = 1;          ///< LLC ways allocated.
    double bw_fraction = 1.0;  ///< Fraction of peak bandwidth (MBA cap).
    double power_fraction = 1.0; ///< Fraction of the fair power share.
};

/** Model outputs for one job over one interval. */
struct PerfResult
{
    Ips ips = 0.0;                ///< Achieved instructions/second.
    double ipc_per_core = 0.0;    ///< Effective IPC of one core.
    double mpki = 0.0;            ///< LLC misses per kilo-instruction.
    double bw_demand_gbps = 0.0;  ///< Unthrottled bandwidth demand.
    double bw_used_gbps = 0.0;    ///< Bandwidth actually consumed.
    bool bw_limited = false;      ///< True if the MBA cap bound IPS.
};

/** Amdahl speedup of @p cores cores with parallel fraction @p p. */
[[nodiscard]] double amdahlSpeedup(double p, int cores);

/**
 * Evaluate the model for one phase under one allocation.
 *
 * @pre alloc.cores >= 1, alloc.llc_ways >= 1,
 *      0 < alloc.bw_fraction <= 1, 0 < alloc.power_fraction.
 */
[[nodiscard]] PerfResult evaluatePhase(const PhaseParams& phase,
                         const MachineParams& machine,
                         const AllocationView& alloc);

} // namespace perfmodel
} // namespace satori

#endif // SATORI_PERFMODEL_PERF_HPP
