/**
 * @file
 * Program phases: a workload is a cyclic sequence of phases, each with
 * its own resource-sensitivity parameters (Sec. II observes that the
 * optimal configuration shifts because phases differ in sensitivity).
 */

#ifndef SATORI_PERFMODEL_PHASE_HPP
#define SATORI_PERFMODEL_PHASE_HPP

#include <string>
#include <vector>

#include "satori/common/types.hpp"
#include "satori/perfmodel/mrc.hpp"

namespace satori {
namespace perfmodel {

/**
 * Resource-sensitivity parameters of one program phase, driving the
 * analytic performance model in perf.hpp.
 */
struct PhaseParams
{
    /** Short label for traces ("compute", "stream", ...). */
    std::string label;

    /** Per-core IPC with a perfect LLC (no model misses). */
    double base_ipc = 1.0;

    /** Amdahl parallel fraction in [0, 1]; core-count sensitivity. */
    double parallel_fraction = 0.9;

    /** LLC miss-ratio curve (MPKI as a function of allocated ways). */
    MissRatioCurve mrc;

    /**
     * Core-count/cache coupling: each additional active core inflates
     * the working set competing for the allocated ways, so the MRC is
     * evaluated at effective ways w / (1 + cache_pressure * (c - 1)).
     * This correlated utility across resources (Sec. VI) is what
     * makes one-dimension-at-a-time search prone to local maxima.
     */
    double cache_pressure = 0.2;

    /** Average exposed stall cycles per LLC miss (post-MLP overlap). */
    double miss_penalty_cycles = 120.0;

    /** Bytes of memory traffic per LLC miss (line + writeback share). */
    double bytes_per_miss = 80.0;

    /** Phase length in retired instructions before the next phase. */
    Instructions length = 2e9;
};

/**
 * Tracks progress through a cyclic phase sequence by retired
 * instructions. Copyable value type owned by sim::Job.
 */
class PhaseSequence
{
  public:
    /** @pre at least one phase; all lengths > 0. */
    explicit PhaseSequence(std::vector<PhaseParams> phases);

    /** The currently executing phase. */
    [[nodiscard]] const PhaseParams& current() const;

    /** Index of the current phase within the cycle. */
    [[nodiscard]] std::size_t currentIndex() const { return index_; }

    /**
     * Retire @p instructions; advances through phase boundaries
     * (possibly several) and wraps around cyclically.
     */
    void advance(Instructions instructions);

    /** Number of distinct phases in the cycle. */
    [[nodiscard]] std::size_t numPhases() const { return phases_.size(); }

    /** Phase by index. */
    [[nodiscard]] const PhaseParams& phase(std::size_t i) const;

    /** Instructions retired inside the current phase. */
    [[nodiscard]] Instructions progressInPhase() const { return progress_; }

    /** Restart from the first phase. */
    void reset();

    /**
     * Jump to phase @p index with @p progress instructions already
     * retired inside it (checkpoint recovery).
     * @pre index < numPhases(); 0 <= progress < phase(index).length.
     */
    void seek(std::size_t index, Instructions progress);

  private:
    std::vector<PhaseParams> phases_;
    std::size_t index_ = 0;
    Instructions progress_ = 0;
};

} // namespace perfmodel
} // namespace satori

#endif // SATORI_PERFMODEL_PHASE_HPP
