/**
 * @file
 * Offline exhaustive evaluation against the analytic model: the
 * substrate for the paper's brute-force Oracle (Sec. IV). Because
 * the simulator's true objective is computable, the Oracle here is
 * exact (the paper needed hours of offline search per mix).
 *
 * Per-job IPS lookup tables over per-resource unit counts make one
 * full sweep of millions of configurations take well under a second;
 * results are memoized per phase signature since the model is
 * deterministic given the phases.
 */

#ifndef SATORI_SIM_OFFLINE_EVAL_HPP
#define SATORI_SIM_OFFLINE_EVAL_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "satori/config/enumeration.hpp"
#include "satori/metrics/metrics.hpp"
#include "satori/sim/server.hpp"

namespace satori {
namespace sim {

/** Result of an exhaustive search for one phase signature. */
struct OracleResult
{
    Configuration config;     ///< The argmax configuration.
    double objective = 0.0;   ///< w_t * T + w_f * F at the argmax.
    double throughput = 0.0;  ///< Normalized throughput at the argmax.
    double fairness = 0.0;    ///< Fairness at the argmax.
    bool exhaustive = true;   ///< False if the search was strided.
};

/** Offline-search knobs. */
struct OfflineEvalOptions
{
    /**
     * Maximum configurations evaluated per search; spaces larger
     * than this are sampled with a uniform stride (the result is
     * flagged non-exhaustive).
     */
    std::uint64_t max_evals = 30'000'000;

    ThroughputMetric tmetric = ThroughputMetric::SumIps;
    FairnessMetric fmetric = FairnessMetric::JainIndex;
};

/**
 * Evaluates configurations offline with the noiseless model and
 * finds per-phase-signature optima.
 */
class OfflineEvaluator
{
  public:
    /** Kept for source compatibility with nested-options style. */
    using Options = OfflineEvalOptions;

    /** Attach to a server (read-only; never mutates it). */
    explicit OfflineEvaluator(const SimulatedServer& server,
                              Options options = {});

    /**
     * Normalized (throughput, fairness) of @p config with jobs pinned
     * at @p phase_signature.
     */
    [[nodiscard]] std::pair<double, double> metricsFor(
        const Configuration& config,
        const std::vector<std::size_t>& phase_signature) const;

    /**
     * Exhaustive (or strided) argmax of w_t * T + w_f * F over the
     * whole configuration space at @p phase_signature; memoized.
     */
    const OracleResult& bestFor(
        const std::vector<std::size_t>& phase_signature, double w_t,
        double w_f);

    /** The configuration space being searched. */
    [[nodiscard]] const ConfigurationSpace& space() const { return space_; }

    /** Number of distinct searches performed (memo misses). */
    [[nodiscard]] std::size_t searchesPerformed() const { return searches_; }

  private:
    /** Per-job IPS lookup tables for one phase signature. */
    struct IpsTables;

    [[nodiscard]] IpsTables buildTables(
        const std::vector<std::size_t>& phase_signature) const;

    const SimulatedServer& server_;
    Options options_;
    ConfigurationSpace space_;

    using MemoKey = std::pair<std::vector<std::size_t>,
                              std::pair<std::int64_t, std::int64_t>>;
    std::map<MemoKey, OracleResult> memo_;
    std::size_t searches_ = 0;
};

} // namespace sim

// The evaluator began life in the harness subsystem; harness-side
// code and the tests still use the old spelling.
namespace harness {
using sim::OfflineEvalOptions;
using sim::OfflineEvaluator;
using sim::OracleResult;
} // namespace harness

} // namespace satori

#endif // SATORI_SIM_OFFLINE_EVAL_HPP
