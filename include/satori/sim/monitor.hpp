/**
 * @file
 * Performance monitoring: the simulated stand-in for the paper's
 * pqos-based IPS sampling plus isolation-baseline bookkeeping.
 */

#ifndef SATORI_SIM_MONITOR_HPP
#define SATORI_SIM_MONITOR_HPP

#include <vector>

#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"
#include "satori/config/observation.hpp"
#include "satori/sim/server.hpp"

namespace satori {
namespace sim {

/**
 * Steps the server one controller interval at a time and packages
 * observations; owns the isolation baseline (re-recorded via
 * resetBaseline(), which the harness calls every equalization period
 * and on job churn, per Algorithm 1 line 12).
 */
class PerfMonitor
{
  public:
    /** Attach to a server and record the initial baseline. */
    explicit PerfMonitor(SimulatedServer& server);

    /**
     * Advance the server by @p dt and return the observation for the
     * elapsed interval.
     */
    IntervalObservation observe(Seconds dt = kDefaultIntervalSeconds);

    /** Re-record the isolation baseline at the jobs' current phases. */
    void resetBaseline();

    /** The isolation baseline in use. */
    [[nodiscard]] const std::vector<Ips>& baseline() const { return baseline_; }

    /** The monitored server. */
    SimulatedServer& server() { return server_; }

    /** Serialize the recorded isolation baseline. */
    void saveState(persist::StateWriter& w) const;

    /** Restore a baseline saved by saveState. */
    void restoreState(persist::StateReader& r);

  private:
    SimulatedServer& server_;
    std::vector<Ips> baseline_;
};

} // namespace sim
} // namespace satori

#endif // SATORI_SIM_MONITOR_HPP
