/**
 * @file
 * A co-located job: a workload profile plus runtime progress state
 * (phase position, retired instructions, fixed-work completions).
 */

#ifndef SATORI_SIM_JOB_HPP
#define SATORI_SIM_JOB_HPP

#include <cstdint>

#include "satori/perfmodel/phase.hpp"
#include "satori/workloads/profile.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace sim {

/**
 * Runtime state of one job executing on the simulated server.
 *
 * Follows the paper's fixed-work methodology (Sec. IV): a job "run"
 * is a fixed number of instructions; jobs restart upon completion so
 * long-horizon co-location experiments always have work available.
 */
class Job
{
  public:
    /** Start the job at the beginning of its first phase. */
    explicit Job(workloads::WorkloadProfile profile);

    /** The workload this job executes. */
    [[nodiscard]] const workloads::WorkloadProfile& profile() const { return profile_; }

    /** Parameters of the phase currently executing. */
    [[nodiscard]] const perfmodel::PhaseParams& currentPhase() const;

    /** Index of the current phase within the profile's cycle. */
    [[nodiscard]] std::size_t currentPhaseIndex() const;

    /** Retire @p n instructions, advancing phase and work accounting. */
    void retire(Instructions n);

    /** Total instructions retired since construction/reset. */
    [[nodiscard]] Instructions totalRetired() const { return total_retired_; }

    /** Completed fixed-work runs (for fixed-work experiments). */
    [[nodiscard]] std::uint64_t completedRuns() const { return completed_runs_; }

    /** Progress through the current fixed-work run, in [0, 1). */
    [[nodiscard]] double runProgress() const;

    /** Restart from scratch (phase 0, zero counters). */
    void reset();

    /** Serialize progress state; the profile itself is not saved. */
    void saveState(persist::StateWriter& w) const;

    /** Restore progress saved by saveState onto the same profile. */
    void restoreState(persist::StateReader& r);

  private:
    workloads::WorkloadProfile profile_;
    perfmodel::PhaseSequence phases_;
    Instructions total_retired_ = 0;
    Instructions run_retired_ = 0;
    std::uint64_t completed_runs_ = 0;
};

} // namespace sim
} // namespace satori

#endif // SATORI_SIM_JOB_HPP
