/**
 * @file
 * The simulated CMP server: the substrate standing in for the paper's
 * Intel Xeon testbed with CAT/MBA/taskset partitioning (Sec. IV).
 *
 * The server holds a set of co-located jobs and the active resource-
 * partitioning configuration; step() advances simulated time in
 * controller intervals (100 ms by default), evaluating each job's IPS
 * under the analytic performance model plus measurement noise.
 */

#ifndef SATORI_SIM_SERVER_HPP
#define SATORI_SIM_SERVER_HPP

#include <vector>

#include "satori/common/rng.hpp"
#include "satori/common/types.hpp"
#include "satori/config/configuration.hpp"
#include "satori/config/platform.hpp"
#include "satori/perfmodel/perf.hpp"
#include "satori/sim/job.hpp"
#include "satori/workloads/profile.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace sim {

/** Simulator construction knobs. */
struct ServerOptions
{
    /** RNG seed; fully determines the run. */
    std::uint64_t seed = 42;

    /**
     * Relative standard deviation of multiplicative IPS measurement
     * noise (models pqos sampling jitter and residual interference
     * from unpartitioned structures such as SMT and the ring).
     */
    double noise_sigma = 0.04;

    /**
     * Transient IPS loss per unit of allocation change, by resource
     * kind: re-pinning threads evicts private-cache state, CAT way
     * remaps must re-warm the LLC, MBA reprogramming is just an MSR
     * write. The penalty decays geometrically across intervals.
     */
    double reconfig_cost_cores = 0.06;
    double reconfig_cost_ways = 0.03;
    double reconfig_cost_bw = 0.005;

    /** Cap on the per-interval transient loss fraction. */
    double reconfig_cost_cap = 0.35;

    /** Geometric per-interval decay of the transient. */
    double reconfig_decay = 0.35;
};

/** A partitionable multi-core server executing co-located jobs. */
class SimulatedServer
{
  public:
    /**
     * Build a server for @p platform running one job per profile in
     * @p mix, starting from the equal partition (S_init).
     *
     * @throws FatalError if any resource has fewer units than jobs.
     */
    SimulatedServer(PlatformSpec platform,
                    perfmodel::MachineParams machine,
                    std::vector<workloads::WorkloadProfile> mix,
                    ServerOptions options = {});

    /** Number of co-located jobs. */
    [[nodiscard]] std::size_t numJobs() const { return jobs_.size(); }

    /** The platform's partitionable resources. */
    [[nodiscard]] const PlatformSpec& platform() const { return platform_; }

    /** Machine performance constants. */
    [[nodiscard]] const perfmodel::MachineParams& machine() const { return machine_; }

    /**
     * Apply a new partitioning configuration (validated).
     *
     * @throws FatalError naming the offending resource when a
     *         per-resource total exceeds (or undershoots) the
     *         platform's capacity, or when the shape is wrong.
     */
    void setConfiguration(const Configuration& config);

    /** The configuration currently in force. */
    [[nodiscard]] const Configuration& configuration() const { return config_; }

    /**
     * Advance simulated time by @p dt seconds under the current
     * configuration.
     *
     * @return Per-job IPS measured over the interval (noise included).
     */
    std::vector<Ips> step(Seconds dt);

    /** Simulated time elapsed so far. */
    [[nodiscard]] Seconds now() const { return now_; }

    /**
     * Per-job isolated-execution IPS at each job's *current* phase
     * (the job alone on the whole machine); noiseless. This is the
     * paper's online isolation baseline measurement.
     */
    [[nodiscard]] std::vector<Ips> isolationIpsNow() const;

    /** Current phase index of every job (the oracle's memo key). */
    [[nodiscard]] std::vector<std::size_t> phaseSignature() const;

    /** Job state access. */
    [[nodiscard]] const Job& job(std::size_t j) const;

    /** Mutable job state access. */
    Job& job(std::size_t j);

    /**
     * Replace job @p j with a new workload mid-run (job churn); the
     * new job starts from scratch. The configuration is kept and the
     * job's outstanding reconfiguration transient is cleared (a fresh
     * process has no warmed state to lose).
     *
     * @throws FatalError if @p j is out of range or @p profile has no
     *         phases.
     */
    void replaceJob(std::size_t j, workloads::WorkloadProfile profile);

    /**
     * External per-job rate factors in (0, 1], modeling effects
     * outside the partitioned resources - transient core offlining,
     * thermal throttling, a noisy co-runner on unmanaged structures.
     * Applied multiplicatively to true IPS in step(), so telemetry
     * and scoring both see the slowdown. Resets to all-ones via an
     * empty vector.
     *
     * @throws FatalError on a size mismatch or out-of-range factor.
     */
    void setExternalThrottle(std::vector<double> factors);

    /** The external throttle in force (empty = all-ones). */
    [[nodiscard]] const std::vector<double>& externalThrottle() const
    {
        return external_throttle_;
    }

    /**
     * Evaluate the noiseless model: per-job IPS under @p config with
     * jobs pinned at @p phase_signature. Does not mutate the server.
     * Used by the offline oracle and the characterization benches.
     */
    [[nodiscard]] std::vector<Ips> evaluateIps(
        const Configuration& config,
        const std::vector<std::size_t>& phase_signature) const;

    /**
     * Noiseless isolation IPS of job @p j pinned at phase
     * @p phase_index.
     */
    [[nodiscard]] Ips isolationIpsAt(std::size_t j, std::size_t phase_index) const;

    /**
     * Serialize all mutable run state: per-job progress, the active
     * configuration, the noise RNG stream, simulated time, and the
     * reconfiguration/throttle vectors. Platform, machine constants,
     * and workload profiles are construction inputs and not saved.
     */
    void saveState(persist::StateWriter& w) const;

    /**
     * Restore state saved by saveState onto a server constructed with
     * the same platform/mix/options.
     *
     * @throws FatalError if the saved shape does not match this
     *         server (job count, configuration shape).
     */
    void restoreState(persist::StateReader& r);

    /** Map @p config to the model's AllocationView for job @p j. */
    [[nodiscard]] perfmodel::AllocationView allocationView(const Configuration& config,
                                             JobIndex j) const;

  private:
    PlatformSpec platform_;
    perfmodel::MachineParams machine_;
    ServerOptions options_;
    std::vector<Job> jobs_;
    Configuration config_;
    Rng rng_;
    Seconds now_ = 0.0;

    /** Per-job outstanding reconfiguration transient (IPS fraction). */
    std::vector<double> reconfig_penalty_;

    /** External per-job rate factors (empty = no throttling). */
    std::vector<double> external_throttle_;
};

} // namespace sim
} // namespace satori

#endif // SATORI_SIM_SERVER_HPP
