/**
 * @file
 * Inducing-point approximate Gaussian process (Subset of Regressors)
 * for decision-making at training-set sizes where even the O(n^2)
 * incremental exact GP breaks the latency budget.
 *
 * SoR projects the full GP onto m inducing points u (m << n):
 *
 *   A      = sigma_n^2 K_uu + K_uf K_fu          (m x m Gram)
 *   mu(x)  = k_u(x)^T A^-1 K_uf y
 *   var(x) = sigma_n^2 k_u(x)^T A^-1 k_u(x)
 *
 * so fitting maintains only the m x m Cholesky of A plus the m x n
 * cross-covariance, and every prediction costs O(m^2) independent of
 * n. Appending a sample is a rank-1 update of A; evicting the oldest
 * (sliding-window mode) is a rank-1 downdate. When either rank-1
 * operation breaks down numerically the Gram factor is rebuilt from
 * scratch and the satori.bo.approx_fallbacks counter ticks.
 *
 * Kernel evaluations on this path use the vectorized approximate
 * exp(-z) (see linalg/simd.hpp); accuracy against the exact GP is
 * measured and gated by bench_decision_latency, not promised
 * bit-for-bit. Like the windowed exact GP, results carry a byte-
 * STABILITY contract: the same operation sequence replays
 * byte-identically.
 *
 * Thread-safety: as GaussianProcess - const prediction methods share
 * internal scratch and must not run concurrently on one instance.
 */

#ifndef SATORI_BO_APPROX_GP_HPP
#define SATORI_BO_APPROX_GP_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "satori/bo/gp.hpp"
#include "satori/bo/kernel.hpp"
#include "satori/common/types.hpp"
#include "satori/linalg/cholesky.hpp"

namespace satori {
namespace bo {

/** SoR approximate GP; mirrors the GaussianProcess fitting API. */
class ApproxGp
{
  public:
    /**
     * @param kernel covariance kernel (shared family with the exact
     *        GP so hyperparameters carry over).
     * @param noise_variance observation-noise variance (> 0: SoR's
     *        Gram matrix needs the sigma_n^2 K_uu regularizer).
     * @param num_inducing inducing-point budget m (>= 1).
     */
    ApproxGp(std::unique_ptr<Kernel> kernel, double noise_variance,
             std::size_t num_inducing);

    /** Bound the training window (0 = unbounded), as the exact GP. */
    void setMaxHistory(std::size_t max_history);

    /** Oldest-sample evictions performed on this instance. */
    [[nodiscard]] std::uint64_t windowEvictions() const
    {
        return window_evictions_;
    }

    /** Gram rebuilds forced by rank-1 breakdowns. */
    [[nodiscard]] std::uint64_t fallbackRebuilds() const
    {
        return fallback_rebuilds_;
    }

    /** Full (re)fit; places inducing points on the first call. */
    void fit(const std::vector<RealVec>& inputs,
             const std::vector<double>& targets);

    /**
     * Like GaussianProcess::fitIncremental: recognizes target-only
     * refreshes, single appends, and slid windows against the fitted
     * set (bitwise input comparison) and handles each in O(m n) or
     * better; anything else is a full refit.
     */
    void fitIncremental(const std::vector<RealVec>& inputs,
                        const std::vector<double>& targets);

    /** Append one observation (rank-1 Gram update + window bound). */
    void addObservation(const RealVec& x, double target);

    [[nodiscard]] bool isFitted() const { return fitted_; }

    [[nodiscard]] std::size_t numSamples() const { return inputs_.size(); }

    /** Inducing points in use (placed on the first fit). */
    [[nodiscard]] const std::vector<RealVec>& inducingPoints() const
    {
        return inducing_;
    }

    /** Posterior at one point (original target scale). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /** Batched posterior; O(m^2) per candidate, scratch reused. */
    void predictBatchInto(const std::vector<RealVec>& xs,
                          std::vector<GpPrediction>& out) const;

    /**
     * Batched posterior against a *recurring* candidate set.
     *
     * The decision loop scores the same candidate lattice every
     * interval, so k_u(x) never changes between decisions - only the
     * model does. This entry point caches the m x C cross-covariance
     * block keyed by a bitwise content hash of @p xs and maintains the
     * standardized variances across rank-1 Gram changes with
     * Sherman-Morrison corrections (journaled by addObservation /
     * eviction, applied lazily here), turning the per-decision cost
     * from O(m C (dims + m)) kernel+solve work into one O(m C) pass.
     *
     * First call for a given candidate set (or any call after a Gram
     * rebuild, a near-singular downdate, or a long journal) is a
     * cache MISS and computes exactly what predictBatchInto computes,
     * bit-for-bit. Cache HITs apply the journaled corrections, whose
     * drift against the direct solve is bounded by a periodic full
     * variance refresh; the error is part of the approximation budget
     * bench_decision_latency measures and gates. Byte-stability
     * holds: replaying the same operation sequence replays the same
     * hits, misses, and corrections byte-identically.
     */
    void predictBatchCachedInto(const std::vector<RealVec>& xs,
                                std::vector<GpPrediction>& out) const;

    /** Cached-scoring calls served from the candidate cache. */
    [[nodiscard]] std::uint64_t cacheHits() const { return cache_hits_; }

    /** Cached-scoring calls that had to rebuild the candidate cache. */
    [[nodiscard]] std::uint64_t cacheMisses() const
    {
        return cache_misses_;
    }

  private:
    /** One rank-1 Gram change journaled for the candidate cache. */
    struct PendingRankOne
    {
        std::vector<double> h; ///< A^-1 c under the pre-change factor.
        double coef = 0.0;     ///< -+ sigma_n^2 / (1 +- c^T h).
    };

    /** Cached candidate block for predictBatchCachedInto. */
    struct ScoreCache
    {
        bool valid = false;
        std::uint64_t key[4] = { 0, 0, 0, 0 }; ///< Content hash of xs.
        std::size_t count = 0;
        std::size_t dims = 0;
        linalg::Matrix kustar;        ///< m x C cross-covariance.
        std::vector<double> var_std;  ///< sigma_n^2 k^T A^-1 k per c.
        std::size_t sm_applied = 0;   ///< Corrections since refresh.
    };

    /** Place inducing points (Halton, scaled to the input box). */
    void placeInducing(const std::vector<RealVec>& inputs);

    /** Rebuild A's Cholesky from K_uu and the stored columns. */
    void rebuildGram();

    /** Re-standardize targets, rebuild b = K_uf y_std, solve w. */
    void solveWeights();

    /** k_u(x) into @p out (approximate kernel path). */
    void inducingColumn(const RealVec& x, double* out) const;

    /** Drop the oldest sample: rank-1 downdate + list pops. */
    void evictOldest();

    /** k_u(x) column + rank-1 Gram update + cache journal entry. */
    void appendSampleColumn(const RealVec& x);

    /**
     * Build a journal entry for a pending rank-1 change of A (before
     * the factor is touched). Returns false - after invalidating the
     * cache when the correction would be ill-conditioned - if nothing
     * should be journaled.
     */
    [[nodiscard]] bool prepareJournal(const std::vector<double>& c,
                                      bool downdate,
                                      PendingRankOne& entry);

    /** Queue a prepared journal entry (capped; overflow invalidates). */
    void pushJournal(PendingRankOne&& entry);

    /** Drop the candidate cache and its journal. */
    void invalidateCache() const;

    /** Rebuild kustar + variances for @p xs (cache-miss path). */
    void rebuildCache(const std::vector<RealVec>& xs,
                      const std::uint64_t key[4]) const;

    /** Recompute var_std from kustar by a direct solve. */
    void recomputeCacheVariances() const;

    /** Apply the journal (or do a periodic full refresh). */
    void refreshCacheVariances() const;

    /** Evict until the window bound holds. */
    void enforceWindow();

    [[nodiscard]] bool windowed() const { return max_history_ > 0; }

    [[nodiscard]] bool samePrefix(const std::vector<RealVec>& other,
                                  std::size_t n) const;
    [[nodiscard]] bool sameShifted(
        const std::vector<RealVec>& other) const;

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;
    std::size_t num_inducing_;
    std::size_t max_history_ = 0;
    bool fitted_ = false;

    std::vector<RealVec> inducing_;
    linalg::Matrix kuu_; ///< m x m inducing self-covariance (exact).

    std::vector<RealVec> inputs_;
    std::vector<double> y_raw_;
    std::vector<double> y_std_;
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;

    /** K_uf columns, sample order: cols_[j][i] = k(u_i, x_j). */
    std::vector<std::vector<double>> cols_;
    std::unique_ptr<linalg::Cholesky> chol_a_;
    std::vector<double> b_; ///< K_uf y_std.
    std::vector<double> w_; ///< A^-1 b.

    std::uint64_t window_evictions_ = 0;
    std::uint64_t fallback_rebuilds_ = 0;

    // Candidate-score cache (mutable: filled from const prediction
    // paths, which already share scratch and are not thread-safe).
    mutable ScoreCache cache_;
    mutable std::vector<PendingRankOne> pending_;
    mutable std::uint64_t cache_hits_ = 0;
    mutable std::uint64_t cache_misses_ = 0;

    // Scratch (kernel columns, prediction blocks); not thread-safe.
    mutable SoaPoints pts_scratch_;
    mutable std::vector<double> kernel_scratch_;
    mutable linalg::Matrix kustar_scratch_;
    mutable linalg::Matrix v_scratch_;
    mutable std::vector<double> means_scratch_;
    mutable std::vector<double> vv_scratch_;
    mutable std::vector<double> g_scratch_;
    mutable std::vector<RealVec> one_point_scratch_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_APPROX_GP_HPP
