/**
 * @file
 * Gaussian-process regression: the stochastic proxy model at the
 * heart of SATORI's BO engine (Sec. III-A). Predicts a mean and an
 * uncertainty for unsampled configurations.
 */

#ifndef SATORI_BO_GP_HPP
#define SATORI_BO_GP_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "satori/bo/kernel.hpp"
#include "satori/common/types.hpp"
#include "satori/linalg/cholesky.hpp"

namespace satori {
namespace bo {

/** GP posterior at one query point. */
struct GpPrediction
{
    double mean = 0.0;
    double variance = 0.0;

    /** Standard deviation (sqrt of variance, floored at 0). */
    [[nodiscard]] double stddev() const;
};

/**
 * Gaussian-process regression with a pluggable kernel and Gaussian
 * observation noise. fit() is a full refit (O(n^3)); the incremental
 * paths (addObservation, fitIncremental) reuse the cached kernel
 * matrix and extend the Cholesky factor in place, dropping the
 * steady-state per-update cost to O(n^2) while producing results
 * bit-identical to the full refit (the appended factor row is
 * computed with exactly the refit's arithmetic). Predictions are
 * O(n) mean / O(n^2) variance.
 *
 * Targets are internally standardized (zero mean, unit variance) so
 * kernel signal variance ~1 remains well-matched as the objective
 * scale changes with the dynamic weights. The incremental paths
 * re-standardize exactly on every update; when the target scale has
 * drifted far from the scale at the last full factorization the
 * update additionally refreshes the factorization from the cached
 * kernel matrix (a numerical-hygiene backstop - the factor itself
 * never depends on the targets, so this changes nothing observable).
 *
 * Sliding-window mode (setMaxHistory): the training set is bounded
 * at W samples; appending to a full window first evicts the oldest
 * sample with an O(n^2) Cholesky downdate instead of the O(n^3)
 * refit a trimmed set would otherwise cost. A downdated factor is
 * tolerance-equal (not bit-equal) to a fresh factorization of the
 * surviving window, so windowed results carry a byte-STABILITY
 * contract - the same operation sequence replays byte-identically,
 * and bo_test pins that - rather than the unwindowed paths' byte
 * equality with the full refit. Unwindowed behavior (max_history 0,
 * the default) is untouched bit for bit.
 *
 * Thread-safety: const prediction methods reuse internal scratch
 * buffers and are therefore NOT safe to call concurrently on the
 * same instance; distinct instances are fully independent.
 * predictRangeInto() with a caller-owned scratch is the exception:
 * it is safe from multiple threads over disjoint ranges.
 */
class GaussianProcess
{
  public:
    /** @param noise_variance observation-noise variance (>= 0). */
    explicit GaussianProcess(std::unique_ptr<Kernel> kernel,
                             double noise_variance = 1e-4);

    GaussianProcess(const GaussianProcess& other);
    GaussianProcess& operator=(const GaussianProcess& other);
    GaussianProcess(GaussianProcess&&) = default;
    GaussianProcess& operator=(GaussianProcess&&) = default;

    /**
     * Fit to @p inputs (n vectors, equal length) and @p targets
     * (length n). Replaces any previous fit. @pre n >= 1.
     */
    void fit(const std::vector<RealVec>& inputs,
             const std::vector<double>& targets);

    /**
     * Append one observation and update the fit in O(n^2): only the
     * new cross-covariance row is computed, the Cholesky factor is
     * extended in place, and the targets are re-standardized exactly.
     * Falls back to a full refactorization from the cached kernel
     * matrix when the rank-1 update hits an SPD failure (e.g. a
     * duplicated input at zero jitter) or the target scale has
     * drifted past the tolerance. Results are bit-identical to
     * fit() on the extended training set either way.
     */
    void addObservation(const RealVec& x, double target);

    /**
     * Like fit(), but recognizes two cheap relationships between
     * @p inputs and the currently fitted training set:
     *  - identical inputs: only the targets changed (SATORI's
     *    re-weighted per-interval reconstruction), so the cached
     *    factorization is reused and only the O(n^2) standardize +
     *    solve re-runs;
     *  - one appended input: the rank-1 addObservation path.
     * Anything else (trimmed window, reordered samples) takes the
     * full O(n^3) refit. Equality is bitwise, so a false negative
     * merely costs a full refit, never correctness.
     */
    void fitIncremental(const std::vector<RealVec>& inputs,
                        const std::vector<double>& targets);

    /**
     * Bound the training window at @p max_history samples (0, the
     * default, means unbounded). Takes effect on the next update;
     * shrinking below the current size evicts oldest-first then.
     */
    void setMaxHistory(std::size_t max_history);

    /** The window bound in force (0 = unbounded). */
    [[nodiscard]] std::size_t maxHistory() const { return max_history_; }

    /** Oldest-sample evictions performed on this instance. */
    [[nodiscard]] std::uint64_t windowEvictions() const
    {
        return window_evictions_;
    }

    /** True once fit() succeeded with at least one sample. */
    [[nodiscard]] bool isFitted() const { return fitted_; }

    /** Posterior mean/variance at @p x (in the original target scale). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /**
     * Posterior at every query point, batched: one cross-covariance
     * matrix K* for all points and one blocked triangular solve,
     * bit-identical to calling predict() per point but without the
     * per-point allocations. Scratch is reused across calls (see the
     * class comment on thread-safety).
     */
    void predictBatchInto(const std::vector<RealVec>& xs,
                          std::vector<GpPrediction>& out) const;

    /** Convenience predictBatchInto returning a fresh vector. */
    [[nodiscard]] std::vector<GpPrediction> predictBatch(
        const std::vector<RealVec>& xs) const;

    /**
     * Working storage for predictRangeInto. One instance per thread
     * lets callers score disjoint candidate ranges concurrently; the
     * buffers are reused (and grown) across calls.
     */
    struct BatchScratch
    {
        SoaPoints pts;
        linalg::Matrix kstar_t; ///< n x B cross-covariance block.
        linalg::Matrix v;       ///< n x B triangular-solve solutions.
        std::vector<double> means;
        std::vector<double> vv;
    };

    /**
     * predictBatchInto over xs[begin, end) with caller-owned scratch,
     * writing out[0 .. end-begin). With @p with_variance false only
     * the means are computed (variances are set to 0), skipping the
     * per-candidate O(n^2) triangular solve - the cheap pass the
     * acquisition prefilter runs over every candidate. Means are
     * bit-identical between the two modes, and every result is
     * independent of how callers block or thread the ranges.
     */
    void predictRangeInto(const std::vector<RealVec>& xs,
                          std::size_t begin, std::size_t end,
                          GpPrediction* out, BatchScratch& scratch,
                          bool with_variance) const;

    /**
     * Posterior means only, for all of @p xs (see predictRangeInto).
     */
    void predictMeansInto(const std::vector<RealVec>& xs,
                          std::vector<double>& out) const;

    /**
     * An upper bound on predict(x).stddev() valid for every input x,
     * including floating-point effects: the posterior never exceeds
     * the prior, so this is sqrt(k(x,x)) in the original target
     * scale, evaluated with the same operation order the prediction
     * paths use. The screening prefilter leans on this bound.
     */
    [[nodiscard]] double maxStddev() const;

    /** Log marginal likelihood of the current fit (standardized y). */
    [[nodiscard]] double logMarginalLikelihood() const;

    /**
     * Refit trying each length scale in @p grid and keeping the one
     * with the highest log marginal likelihood. Cheap-and-cheerful
     * hyperparameter adaptation suitable for online use.
     */
    void fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                const std::vector<double>& targets,
                                const std::vector<double>& grid);

    /** Number of training samples in the current fit. */
    [[nodiscard]] std::size_t numSamples() const { return inputs_.size(); }

    /** The kernel in use. */
    [[nodiscard]] const Kernel& kernel() const { return *kernel_; }

  private:
    /** Full fit of inputs_/y_raw_: rebuild the kernel cache + factor. */
    void fitStandardized();

    /** Fill k_cache_ from kernel_/inputs_ (noise on the diagonal). */
    void buildKernelCache();

    /** Factorize k_cache_ from scratch and finish the fit. */
    void refitFromCache();

    /** Re-standardize y_raw_ and re-solve alpha with the current factor. */
    void standardizeAndSolve();

    /**
     * Grow k_cache_/inputs_ by @p x and try the O(n^2) factor append;
     * false means the factor needs a fresh jitter-escalated
     * refactorization (refitFromCache) - the cache and inputs are
     * extended either way.
     */
    [[nodiscard]] bool tryExtendFactor(const RealVec& x);

    /** Target scale moved too far from the last full factorization? */
    [[nodiscard]] bool scaleDrifted() const;

    /** inputs_[0..n) bitwise-equal to other[0..n)? */
    [[nodiscard]] bool samePrefix(const std::vector<RealVec>& other,
                                  std::size_t n) const;

    /** Window bound active? */
    [[nodiscard]] bool windowed() const { return max_history_ > 0; }

    /** other[0..n-1) bitwise-equal to inputs_[1..n)? (slid window) */
    [[nodiscard]] bool sameShifted(
        const std::vector<RealVec>& other) const;

    /**
     * Drop the oldest sample: O(n^2) factor downdate plus list pops.
     * Falls back to a fresh factorization when the downdate hits a
     * non-finite value or leaves the factor ill-conditioned. Does NOT
     * re-solve alpha - callers re-standardize afterwards.
     */
    void evictOldest();

    /** Evict until the window bound holds (no-op when unbounded). */
    void enforceWindow();

    /**
     * Rebuild the factorization for the current inputs_: from the
     * cache when it is maintained (unwindowed), from the kernel
     * otherwise.
     */
    void refreshFactorization();

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;
    bool fitted_ = false;

    std::vector<RealVec> inputs_;
    std::vector<double> y_raw_;
    std::vector<double> y_std_;   // standardized targets
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    std::unique_ptr<linalg::Cholesky> chol_;
    std::vector<double> alpha_;   // K^-1 y_std
    double log_marginal_ = 0.0;

    /** Kernel matrix + noise diagonal (no jitter) for the current
     * inputs_: lets incremental updates and SPD-failure fallbacks
     * skip the O(n^2) kernel re-evaluation. Not maintained in
     * windowed mode (every eviction would pay an O(n^2) copy);
     * fallbacks rebuild from the kernel there instead. */
    linalg::Matrix k_cache_;

    /** y_scale_ at the last full factorization (drift anchor). */
    double anchor_scale_ = 1.0;

    /** Window bound (0 = unbounded). */
    std::size_t max_history_ = 0;

    /** Lifetime eviction count (diagnostics/stats). */
    std::uint64_t window_evictions_ = 0;

    // Prediction scratch (not copied; see thread-safety note above).
    mutable BatchScratch scratch_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_GP_HPP
