/**
 * @file
 * Gaussian-process regression: the stochastic proxy model at the
 * heart of SATORI's BO engine (Sec. III-A). Predicts a mean and an
 * uncertainty for unsampled configurations.
 */

#ifndef SATORI_BO_GP_HPP
#define SATORI_BO_GP_HPP

#include <memory>
#include <vector>

#include "satori/bo/kernel.hpp"
#include "satori/common/types.hpp"
#include "satori/linalg/cholesky.hpp"

namespace satori {
namespace bo {

/** GP posterior at one query point. */
struct GpPrediction
{
    double mean = 0.0;
    double variance = 0.0;

    /** Standard deviation (sqrt of variance, floored at 0). */
    [[nodiscard]] double stddev() const;
};

/**
 * Gaussian-process regression with a pluggable kernel and Gaussian
 * observation noise. fit() is a full refit (O(n^3)), matching
 * SATORI's software-based proxy-model reconstruction each iteration
 * (Sec. III-B); predictions are O(n) mean / O(n^2) variance.
 *
 * Targets are internally standardized (zero mean, unit variance) so
 * kernel signal variance ~1 remains well-matched as the objective
 * scale changes with the dynamic weights.
 */
class GaussianProcess
{
  public:
    /** @param noise_variance observation-noise variance (>= 0). */
    explicit GaussianProcess(std::unique_ptr<Kernel> kernel,
                             double noise_variance = 1e-4);

    GaussianProcess(const GaussianProcess& other);
    GaussianProcess& operator=(const GaussianProcess& other);
    GaussianProcess(GaussianProcess&&) = default;
    GaussianProcess& operator=(GaussianProcess&&) = default;

    /**
     * Fit to @p inputs (n vectors, equal length) and @p targets
     * (length n). Replaces any previous fit. @pre n >= 1.
     */
    void fit(const std::vector<RealVec>& inputs,
             const std::vector<double>& targets);

    /** True once fit() succeeded with at least one sample. */
    [[nodiscard]] bool isFitted() const { return fitted_; }

    /** Posterior mean/variance at @p x (in the original target scale). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /** Log marginal likelihood of the current fit (standardized y). */
    [[nodiscard]] double logMarginalLikelihood() const;

    /**
     * Refit trying each length scale in @p grid and keeping the one
     * with the highest log marginal likelihood. Cheap-and-cheerful
     * hyperparameter adaptation suitable for online use.
     */
    void fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                const std::vector<double>& targets,
                                const std::vector<double>& grid);

    /** Number of training samples in the current fit. */
    [[nodiscard]] std::size_t numSamples() const { return inputs_.size(); }

    /** The kernel in use. */
    [[nodiscard]] const Kernel& kernel() const { return *kernel_; }

  private:
    void fitStandardized();

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;
    bool fitted_ = false;

    std::vector<RealVec> inputs_;
    std::vector<double> y_raw_;
    std::vector<double> y_std_;   // standardized targets
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    std::unique_ptr<linalg::Cholesky> chol_;
    std::vector<double> alpha_;   // K^-1 y_std
    double log_marginal_ = 0.0;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_GP_HPP
