/**
 * @file
 * Gaussian-process regression: the stochastic proxy model at the
 * heart of SATORI's BO engine (Sec. III-A). Predicts a mean and an
 * uncertainty for unsampled configurations.
 */

#ifndef SATORI_BO_GP_HPP
#define SATORI_BO_GP_HPP

#include <memory>
#include <vector>

#include "satori/bo/kernel.hpp"
#include "satori/common/types.hpp"
#include "satori/linalg/cholesky.hpp"

namespace satori {
namespace bo {

/** GP posterior at one query point. */
struct GpPrediction
{
    double mean = 0.0;
    double variance = 0.0;

    /** Standard deviation (sqrt of variance, floored at 0). */
    [[nodiscard]] double stddev() const;
};

/**
 * Gaussian-process regression with a pluggable kernel and Gaussian
 * observation noise. fit() is a full refit (O(n^3)); the incremental
 * paths (addObservation, fitIncremental) reuse the cached kernel
 * matrix and extend the Cholesky factor in place, dropping the
 * steady-state per-update cost to O(n^2) while producing results
 * bit-identical to the full refit (the appended factor row is
 * computed with exactly the refit's arithmetic). Predictions are
 * O(n) mean / O(n^2) variance.
 *
 * Targets are internally standardized (zero mean, unit variance) so
 * kernel signal variance ~1 remains well-matched as the objective
 * scale changes with the dynamic weights. The incremental paths
 * re-standardize exactly on every update; when the target scale has
 * drifted far from the scale at the last full factorization the
 * update additionally refreshes the factorization from the cached
 * kernel matrix (a numerical-hygiene backstop - the factor itself
 * never depends on the targets, so this changes nothing observable).
 *
 * Thread-safety: const prediction methods reuse internal scratch
 * buffers and are therefore NOT safe to call concurrently on the
 * same instance; distinct instances are fully independent.
 */
class GaussianProcess
{
  public:
    /** @param noise_variance observation-noise variance (>= 0). */
    explicit GaussianProcess(std::unique_ptr<Kernel> kernel,
                             double noise_variance = 1e-4);

    GaussianProcess(const GaussianProcess& other);
    GaussianProcess& operator=(const GaussianProcess& other);
    GaussianProcess(GaussianProcess&&) = default;
    GaussianProcess& operator=(GaussianProcess&&) = default;

    /**
     * Fit to @p inputs (n vectors, equal length) and @p targets
     * (length n). Replaces any previous fit. @pre n >= 1.
     */
    void fit(const std::vector<RealVec>& inputs,
             const std::vector<double>& targets);

    /**
     * Append one observation and update the fit in O(n^2): only the
     * new cross-covariance row is computed, the Cholesky factor is
     * extended in place, and the targets are re-standardized exactly.
     * Falls back to a full refactorization from the cached kernel
     * matrix when the rank-1 update hits an SPD failure (e.g. a
     * duplicated input at zero jitter) or the target scale has
     * drifted past the tolerance. Results are bit-identical to
     * fit() on the extended training set either way.
     */
    void addObservation(const RealVec& x, double target);

    /**
     * Like fit(), but recognizes two cheap relationships between
     * @p inputs and the currently fitted training set:
     *  - identical inputs: only the targets changed (SATORI's
     *    re-weighted per-interval reconstruction), so the cached
     *    factorization is reused and only the O(n^2) standardize +
     *    solve re-runs;
     *  - one appended input: the rank-1 addObservation path.
     * Anything else (trimmed window, reordered samples) takes the
     * full O(n^3) refit. Equality is bitwise, so a false negative
     * merely costs a full refit, never correctness.
     */
    void fitIncremental(const std::vector<RealVec>& inputs,
                        const std::vector<double>& targets);

    /** True once fit() succeeded with at least one sample. */
    [[nodiscard]] bool isFitted() const { return fitted_; }

    /** Posterior mean/variance at @p x (in the original target scale). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /**
     * Posterior at every query point, batched: one cross-covariance
     * matrix K* for all points and one blocked triangular solve,
     * bit-identical to calling predict() per point but without the
     * per-point allocations. Scratch is reused across calls (see the
     * class comment on thread-safety).
     */
    void predictBatchInto(const std::vector<RealVec>& xs,
                          std::vector<GpPrediction>& out) const;

    /** Convenience predictBatchInto returning a fresh vector. */
    [[nodiscard]] std::vector<GpPrediction> predictBatch(
        const std::vector<RealVec>& xs) const;

    /** Log marginal likelihood of the current fit (standardized y). */
    [[nodiscard]] double logMarginalLikelihood() const;

    /**
     * Refit trying each length scale in @p grid and keeping the one
     * with the highest log marginal likelihood. Cheap-and-cheerful
     * hyperparameter adaptation suitable for online use.
     */
    void fitWithLengthScaleGrid(const std::vector<RealVec>& inputs,
                                const std::vector<double>& targets,
                                const std::vector<double>& grid);

    /** Number of training samples in the current fit. */
    [[nodiscard]] std::size_t numSamples() const { return inputs_.size(); }

    /** The kernel in use. */
    [[nodiscard]] const Kernel& kernel() const { return *kernel_; }

  private:
    /** Full fit of inputs_/y_raw_: rebuild the kernel cache + factor. */
    void fitStandardized();

    /** Fill k_cache_ from kernel_/inputs_ (noise on the diagonal). */
    void buildKernelCache();

    /** Factorize k_cache_ from scratch and finish the fit. */
    void refitFromCache();

    /** Re-standardize y_raw_ and re-solve alpha with the current factor. */
    void standardizeAndSolve();

    /**
     * Grow k_cache_/inputs_ by @p x and try the O(n^2) factor append;
     * false means the factor needs a fresh jitter-escalated
     * refactorization (refitFromCache) - the cache and inputs are
     * extended either way.
     */
    [[nodiscard]] bool tryExtendFactor(const RealVec& x);

    /** Target scale moved too far from the last full factorization? */
    [[nodiscard]] bool scaleDrifted() const;

    /** inputs_[0..n) bitwise-equal to other[0..n)? */
    [[nodiscard]] bool samePrefix(const std::vector<RealVec>& other,
                                  std::size_t n) const;

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;
    bool fitted_ = false;

    std::vector<RealVec> inputs_;
    std::vector<double> y_raw_;
    std::vector<double> y_std_;   // standardized targets
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    std::unique_ptr<linalg::Cholesky> chol_;
    std::vector<double> alpha_;   // K^-1 y_std
    double log_marginal_ = 0.0;

    /** Kernel matrix + noise diagonal (no jitter) for the current
     * inputs_: lets incremental updates and SPD-failure fallbacks
     * skip the O(n^2) kernel re-evaluation. */
    linalg::Matrix k_cache_;

    /** y_scale_ at the last full factorization (drift anchor). */
    double anchor_scale_ = 1.0;

    // Prediction scratch (not copied; see thread-safety note above).
    mutable linalg::Matrix kstar_scratch_;
    mutable linalg::Matrix v_scratch_;
    mutable std::vector<double> vv_scratch_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_GP_HPP
