/**
 * @file
 * The BO engine: proxy model + acquisition maximization over a
 * candidate set. Supports both the traditional incremental workflow
 * (addSample) and SATORI's per-iteration software reconstruction of
 * the proxy model from goal-specific records (setSamples), which is
 * what makes dynamically re-weighted objectives tractable
 * (Sec. III-B).
 */

#ifndef SATORI_BO_ENGINE_HPP
#define SATORI_BO_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "satori/bo/acquisition.hpp"
#include "satori/bo/approx_gp.hpp"
#include "satori/bo/gp.hpp"
#include "satori/common/types.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace bo {

/** Engine configuration knobs. */
struct EngineOptions
{
    /** GP observation-noise variance. */
    double noise_variance = 0.05;

    /** EI exploration bonus. */
    double xi = 0.01;

    /** UCB beta (only for AcquisitionKind::Ucb). */
    double ucb_beta = 2.0;

    /** Which acquisition function to use. */
    AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;

    /** Initial Matern 5/2 length scale on share-normalized inputs. */
    double length_scale = 0.5;

    /**
     * Length scales to try during periodic marginal-likelihood grid
     * refits; empty disables adaptation.
     */
    std::vector<double> length_scale_grid = {0.2, 0.35, 0.5, 0.75, 1.0};

    /** Run the grid refit every this many fits (0 = never). */
    std::size_t grid_refit_period = 20;

    /**
     * Use the O(n^2) incremental GP paths (rank-1 factor appends on
     * addSample, factor-reusing target refreshes on setSamples with
     * unchanged inputs). Results are bit-identical to the full-refit
     * path; false restores the pre-optimization O(n^3)-per-update
     * behavior and exists so tests can pin that equivalence.
     */
    bool incremental = true;

    /**
     * Bound the training window at this many samples (0, the default,
     * keeps everything). With a bound, appends evict the oldest
     * sample via an O(W^2) Cholesky downdate; the engine's own
     * sample/target lists (and thus bestObserved and saveState) are
     * trimmed to the same window. Windowed results carry the GP's
     * byte-STABILITY contract instead of byte equality with an
     * unbounded fit; max_history = 0 is untouched bit for bit.
     */
    std::size_t max_history = 0;

    /**
     * Switch to the inducing-point approximate GP (ApproxGp) once the
     * training set reaches approx_min_samples: O(m n) updates and
     * O(m^2)-per-candidate scoring instead of O(n^2). Decisions on
     * the approximate path are NOT bit-identical to the exact path;
     * the approximation error is measured and gated by
     * bench_decision_latency. Off by default - the exact engine's
     * decision traces stay byte-identical to the pre-approx build.
     */
    bool approx = false;

    /** Inducing-point budget m for the approximate GP. */
    std::size_t approx_inducing = 16;

    /** Training-set size at which the approximate GP takes over. */
    std::size_t approx_min_samples = 256;

    /**
     * Prefilter candidates with a cheap acquisition upper bound
     * (means-only pass + maxStddev) before paying the O(n^2)
     * per-candidate variance solve. Provably exact: the screened
     * argmax - including tie-breaks - is identical to the unscreened
     * one (bo_test pins it), so this default-on knob never changes a
     * decision, only its cost. Pruned/kept counts are exported via
     * satori.bo.screen_* and suggestStats().
     */
    bool screen = true;

    /**
     * Worker threads for exact batched acquisition scoring (1 =
     * serial, the default; 0 = defaultThreadCount()). Results are
     * bit-identical at every thread count - candidates are scored
     * lane-parallel into disjoint slots with per-chunk scratch.
     */
    std::size_t acq_threads = 1;
};

/**
 * A Bayesian-optimization engine over real-vector inputs.
 *
 * Inputs are share-normalized configuration vectors; targets are the
 * (possibly re-weighted) objective values. The engine is agnostic to
 * how targets were constructed - SATORI rebuilds them every iteration
 * from its per-goal records.
 */
class BoEngine
{
  public:
    explicit BoEngine(EngineOptions options = {});

    /**
     * Replace the full training set and refit the proxy model
     * (SATORI's reconstruction path). @pre equal non-zero sizes.
     */
    void setSamples(const std::vector<RealVec>& inputs,
                    const std::vector<double>& targets);

    /** Append one sample and refit (traditional BO path). */
    void addSample(const RealVec& input, double target);

    /** True once at least one sample is fitted. */
    [[nodiscard]] bool ready() const
    {
        return (gp_ && gp_->isFitted()) ||
               (approx_gp_ && approx_gp_->isFitted());
    }

    /** Per-decision diagnostics from the most recent suggestIndex. */
    struct SuggestStats
    {
        /** Candidates that survived screening (== candidate count
         * when screening was off or bypassed). */
        std::uint64_t screen_kept = 0;
        /** Candidates pruned by the acquisition upper bound. */
        std::uint64_t screen_pruned = 0;
        /** Lifetime oldest-sample evictions across the engine's
         * models (exact + approximate). */
        std::uint64_t window_evictions = 0;
        /** The decision was scored by the approximate GP. */
        bool approx_active = false;
    };

    /** Stats from the most recent suggestIndex (zeros before any). */
    [[nodiscard]] const SuggestStats& suggestStats() const
    {
        return stats_;
    }

    /** Best (largest) target value observed so far. */
    [[nodiscard]] double bestObserved() const;

    /** Index (into the current training set) of the best sample. */
    [[nodiscard]] std::size_t bestIndex() const;

    /**
     * Score all candidates with the acquisition function and return
     * the index of the best one. @pre ready() and non-empty.
     */
    [[nodiscard]] std::size_t suggestIndex(const std::vector<RealVec>& candidates) const;

    /**
     * Like suggestIndex(), but subtracting a per-candidate penalty
     * from the acquisition score (e.g. a reconfiguration cost, in
     * standardized-objective units). @pre penalties matches size.
     */
    [[nodiscard]] std::size_t suggestIndex(const std::vector<RealVec>& candidates,
                             const std::vector<double>& penalties) const;

    /** Posterior prediction at @p x (for diagnostics and figures). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /**
     * Posterior means at a fixed probe set; Fig. 17(b) tracks the mean
     * absolute change of these estimates between iterations.
     */
    [[nodiscard]] std::vector<double> probeMeans(
        const std::vector<RealVec>& probes) const;

    /** Number of training samples currently fitted. */
    [[nodiscard]] std::size_t numSamples() const;

    /** The options in force. */
    [[nodiscard]] const EngineOptions& options() const { return options_; }

    /**
     * Serialize a deterministic refit recipe: the training set, the
     * fitted kernel length scale, and the grid-refit phase. The GP
     * factorization itself is not saved - refitting from the training
     * set is pinned bit-identical to the incremental paths.
     */
    void saveState(persist::StateWriter& w) const;

    /** Restore an engine saved by saveState (same options required). */
    void restoreState(persist::StateReader& r);

  private:
    /**
     * Refit after inputs_/targets_ changed. @p appended means the
     * change was a single push_back (enables the O(n^2) rank-1 path
     * without a prefix re-comparison).
     */
    void refit(bool appended);

    /** Drop engine-side samples beyond the window bound (front-first). */
    void trimToWindow();

    /** Approximate regime in force for the current training size? */
    [[nodiscard]] bool approxActive() const;

    /** Construct approx_gp_ on first use (approx regime entry). */
    void ensureApproxGp();

    /** Shared acquisition maximization (penalties may be null). */
    [[nodiscard]] std::size_t suggestImpl(
        const std::vector<RealVec>& candidates,
        const std::vector<double>* penalties) const;

    /** Exact-GP suggest with upper-bound candidate screening. */
    [[nodiscard]] std::size_t suggestScreened(
        const std::vector<RealVec>& candidates,
        const std::vector<double>* penalties, double best) const;

    /**
     * Exact posterior (mean + variance) for all of @p xs into
     * @p preds, serial or chunked over acq_threads workers; results
     * are bit-identical at every thread count.
     */
    void scoreExactInto(const std::vector<RealVec>& xs,
                        std::vector<GpPrediction>& preds) const;

    EngineOptions options_;
    std::unique_ptr<GaussianProcess> gp_;
    std::unique_ptr<ApproxGp> approx_gp_;
    std::vector<RealVec> inputs_;
    std::vector<double> targets_;
    std::size_t fits_since_grid_ = 0;

    /** Exact GP out of sync with inputs_ (approx regime updates skip
     * it); cleared by the full resync fit on regime exit. */
    bool gp_stale_ = false;

    /** Acquisition scratch, reused across suggest/probe calls. Makes
     * const scoring methods unsafe to call concurrently on the same
     * engine; distinct engines stay independent. */
    mutable std::vector<GpPrediction> preds_scratch_;
    mutable GaussianProcess::BatchScratch acq_scratch_;
    mutable std::vector<GaussianProcess::BatchScratch> thread_scratch_;
    mutable std::vector<double> means_scratch_;
    mutable std::vector<double> bounds_scratch_;
    mutable std::vector<std::size_t> surv_idx_scratch_;
    mutable std::vector<RealVec> surv_cands_scratch_;
    mutable SuggestStats stats_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_ENGINE_HPP
