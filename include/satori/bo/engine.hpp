/**
 * @file
 * The BO engine: proxy model + acquisition maximization over a
 * candidate set. Supports both the traditional incremental workflow
 * (addSample) and SATORI's per-iteration software reconstruction of
 * the proxy model from goal-specific records (setSamples), which is
 * what makes dynamically re-weighted objectives tractable
 * (Sec. III-B).
 */

#ifndef SATORI_BO_ENGINE_HPP
#define SATORI_BO_ENGINE_HPP

#include <memory>
#include <vector>

#include "satori/bo/acquisition.hpp"
#include "satori/bo/gp.hpp"
#include "satori/common/types.hpp"

namespace satori {

namespace persist {
class StateWriter;
class StateReader;
} // namespace persist

namespace bo {

/** Engine configuration knobs. */
struct EngineOptions
{
    /** GP observation-noise variance. */
    double noise_variance = 0.05;

    /** EI exploration bonus. */
    double xi = 0.01;

    /** UCB beta (only for AcquisitionKind::Ucb). */
    double ucb_beta = 2.0;

    /** Which acquisition function to use. */
    AcquisitionKind acquisition = AcquisitionKind::ExpectedImprovement;

    /** Initial Matern 5/2 length scale on share-normalized inputs. */
    double length_scale = 0.5;

    /**
     * Length scales to try during periodic marginal-likelihood grid
     * refits; empty disables adaptation.
     */
    std::vector<double> length_scale_grid = {0.2, 0.35, 0.5, 0.75, 1.0};

    /** Run the grid refit every this many fits (0 = never). */
    std::size_t grid_refit_period = 20;

    /**
     * Use the O(n^2) incremental GP paths (rank-1 factor appends on
     * addSample, factor-reusing target refreshes on setSamples with
     * unchanged inputs). Results are bit-identical to the full-refit
     * path; false restores the pre-optimization O(n^3)-per-update
     * behavior and exists so tests can pin that equivalence.
     */
    bool incremental = true;
};

/**
 * A Bayesian-optimization engine over real-vector inputs.
 *
 * Inputs are share-normalized configuration vectors; targets are the
 * (possibly re-weighted) objective values. The engine is agnostic to
 * how targets were constructed - SATORI rebuilds them every iteration
 * from its per-goal records.
 */
class BoEngine
{
  public:
    explicit BoEngine(EngineOptions options = {});

    /**
     * Replace the full training set and refit the proxy model
     * (SATORI's reconstruction path). @pre equal non-zero sizes.
     */
    void setSamples(const std::vector<RealVec>& inputs,
                    const std::vector<double>& targets);

    /** Append one sample and refit (traditional BO path). */
    void addSample(const RealVec& input, double target);

    /** True once at least one sample is fitted. */
    [[nodiscard]] bool ready() const { return gp_ && gp_->isFitted(); }

    /** Best (largest) target value observed so far. */
    [[nodiscard]] double bestObserved() const;

    /** Index (into the current training set) of the best sample. */
    [[nodiscard]] std::size_t bestIndex() const;

    /**
     * Score all candidates with the acquisition function and return
     * the index of the best one. @pre ready() and non-empty.
     */
    [[nodiscard]] std::size_t suggestIndex(const std::vector<RealVec>& candidates) const;

    /**
     * Like suggestIndex(), but subtracting a per-candidate penalty
     * from the acquisition score (e.g. a reconfiguration cost, in
     * standardized-objective units). @pre penalties matches size.
     */
    [[nodiscard]] std::size_t suggestIndex(const std::vector<RealVec>& candidates,
                             const std::vector<double>& penalties) const;

    /** Posterior prediction at @p x (for diagnostics and figures). */
    [[nodiscard]] GpPrediction predict(const RealVec& x) const;

    /**
     * Posterior means at a fixed probe set; Fig. 17(b) tracks the mean
     * absolute change of these estimates between iterations.
     */
    [[nodiscard]] std::vector<double> probeMeans(
        const std::vector<RealVec>& probes) const;

    /** Number of training samples currently fitted. */
    [[nodiscard]] std::size_t numSamples() const;

    /** The options in force. */
    [[nodiscard]] const EngineOptions& options() const { return options_; }

    /**
     * Serialize a deterministic refit recipe: the training set, the
     * fitted kernel length scale, and the grid-refit phase. The GP
     * factorization itself is not saved - refitting from the training
     * set is pinned bit-identical to the incremental paths.
     */
    void saveState(persist::StateWriter& w) const;

    /** Restore an engine saved by saveState (same options required). */
    void restoreState(persist::StateReader& r);

  private:
    /**
     * Refit after inputs_/targets_ changed. @p appended is the just-
     * appended input when the change was a single addSample (enables
     * the O(n^2) rank-1 path without a prefix re-comparison), nullptr
     * otherwise.
     */
    void refit(const RealVec* appended);

    /** Shared acquisition maximization (penalties may be null). */
    [[nodiscard]] std::size_t suggestImpl(
        const std::vector<RealVec>& candidates,
        const std::vector<double>* penalties) const;

    EngineOptions options_;
    std::unique_ptr<GaussianProcess> gp_;
    std::vector<RealVec> inputs_;
    std::vector<double> targets_;
    std::size_t fits_since_grid_ = 0;

    /** Acquisition scratch, reused across suggest/probe calls. Makes
     * const scoring methods unsafe to call concurrently on the same
     * engine; distinct engines stay independent. */
    mutable std::vector<GpPrediction> preds_scratch_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_ENGINE_HPP
