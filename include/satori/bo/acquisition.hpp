/**
 * @file
 * Acquisition functions that steer Bayesian optimization toward the
 * most promising configurations (Sec. III-A). SATORI uses Expected
 * Improvement; UCB is provided for ablation.
 */

#ifndef SATORI_BO_ACQUISITION_HPP
#define SATORI_BO_ACQUISITION_HPP

#include "satori/bo/gp.hpp"

namespace satori {
namespace bo {

/** Acquisition-function selector. */
enum class AcquisitionKind
{
    ExpectedImprovement,      ///< SATORI's default (Sec. III-A).
    Ucb,                      ///< Upper confidence bound (ablation).
    ProbabilityOfImprovement, ///< PI (ablation).
};

/**
 * Expected Improvement for maximization:
 * EI(x) = (mu - best - xi) Phi(z) + sigma phi(z),
 * z = (mu - best - xi) / sigma; 0 when sigma is ~0.
 *
 * @param pred GP posterior at the candidate.
 * @param best_observed Best objective value evaluated so far.
 * @param xi Exploration bonus (small positive encourages exploring).
 */
[[nodiscard]] double expectedImprovement(const GpPrediction& pred, double best_observed,
                           double xi = 0.01);

/** Upper confidence bound: mu + beta * sigma. */
[[nodiscard]] double upperConfidenceBound(const GpPrediction& pred, double beta = 2.0);

/**
 * Probability of Improvement: Phi((mu - best - xi) / sigma); the
 * greediest of the three, prone to under-exploration (why SATORI
 * prefers EI).
 */
[[nodiscard]] double probabilityOfImprovement(const GpPrediction& pred,
                                double best_observed, double xi = 0.01);

/** Evaluate the selected acquisition function. */
[[nodiscard]] double acquisition(AcquisitionKind kind, const GpPrediction& pred,
                   double best_observed, double xi = 0.01,
                   double beta = 2.0);

/**
 * Cheap upper bound on acquisition() over every posterior with the
 * given @p mean and stddev <= @p sigma_max, used by the candidate
 * screening prefilter: a candidate whose bound is below an exactly
 * scored incumbent can never be the argmax.
 *
 * The bound is conservative under floating point, not just in exact
 * arithmetic - each formula carries enough multiplicative slack to
 * dominate the rounding of the exact evaluation (the screening
 * exactness test in bo_test leans on this). Costs a handful of flops
 * (no erf/exp except on the PI negative-improvement branch), versus
 * the O(n^2) triangular solve an exact score needs for sigma.
 */
[[nodiscard]] double acquisitionUpperBound(AcquisitionKind kind, double mean,
                                           double sigma_max,
                                           double best_observed,
                                           double xi = 0.01,
                                           double beta = 2.0);

} // namespace bo
} // namespace satori

#endif // SATORI_BO_ACQUISITION_HPP
