/**
 * @file
 * Covariance kernels for the Gaussian-process proxy model. SATORI
 * uses the Matern 5/2 kernel (Sec. III-A); an RBF kernel is provided
 * for comparison/ablation.
 */

#ifndef SATORI_BO_KERNEL_HPP
#define SATORI_BO_KERNEL_HPP

#include <memory>
#include <vector>

#include "satori/common/types.hpp"

namespace satori {
namespace bo {

/**
 * Structure-of-arrays view of a point block: one contiguous array per
 * coordinate, so a kernel can stream a whole candidate block per
 * dimension (the cache-blocked layout the SIMD distance kernel wants)
 * instead of gathering scattered RealVecs point by point.
 */
class SoaPoints
{
  public:
    SoaPoints() = default;

    /** Pack pts[begin, end) (equal-length vectors). Reuses storage. */
    void assign(const std::vector<RealVec>& pts, std::size_t begin,
                std::size_t end);

    /** Number of packed points. */
    [[nodiscard]] std::size_t count() const { return count_; }

    /** Dimensionality of each point (0 when empty). */
    [[nodiscard]] std::size_t dims() const { return dims_; }

    /** Coordinate @p d of every packed point, contiguously. */
    [[nodiscard]] const double* dim(std::size_t d) const
    {
        return data_.data() + d * count_;
    }

  private:
    std::vector<double> data_; ///< dims_ blocks of count_ doubles.
    std::size_t count_ = 0;
    std::size_t dims_ = 0;
};

/** Abstract stationary covariance kernel k(a, b). */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Covariance between inputs @p a and @p b (equal length). */
    [[nodiscard]] virtual double covariance(const RealVec& a, const RealVec& b) const = 0;

    /**
     * One covariance row: out[i] = k(x, pts[i]) for every point. Each
     * element is computed with exactly covariance()'s arithmetic (the
     * batching only amortizes the virtual dispatch and keeps the
     * distance loop inlined), so results are bit-identical to calling
     * covariance() per point. @pre out has room for pts.size() values.
     */
    virtual void covarianceRow(const RealVec& x,
                               const std::vector<RealVec>& pts,
                               double* out) const;

    /**
     * Cross-covariance against a packed block: out[c] = k(q, pts[c]).
     * Every element is bit-identical to covariance(q, pts[c]) - the
     * SoA layout only changes which loop is innermost (the distance
     * accumulation still runs dimensions in ascending order per
     * point), so the exact prediction paths may use this freely.
     * @pre out has room for pts.count() values; pts.dims() matches q.
     */
    virtual void covarianceCross(const SoaPoints& pts, const RealVec& q,
                                 double* out) const;

    /**
     * Approximate covarianceCross for throughput-critical paths that
     * tolerate a bounded relative error (the approximate GP): same
     * contract, except the result may deviate from covariance() by
     * < 1e-9 relative. The base implementation is exact; Matern 5/2
     * substitutes the vectorized exp(-z) approximation. @p scratch is
     * caller-owned working storage (resized as needed).
     */
    virtual void covarianceCrossApprox(const SoaPoints& pts,
                                       const RealVec& q, double* out,
                                       std::vector<double>& scratch) const;

    /** k(x, x): the signal variance. */
    [[nodiscard]] virtual double variance() const = 0;

    /** Copy with a different length scale (for hyperparameter search). */
    [[nodiscard]] virtual std::unique_ptr<Kernel> withLengthScale(double ls) const = 0;

    /** The current length scale. */
    [[nodiscard]] virtual double lengthScale() const = 0;

    /** Deep copy. */
    [[nodiscard]] virtual std::unique_ptr<Kernel> clone() const = 0;
};

/**
 * Matern 5/2 kernel:
 * k(r) = s^2 (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) exp(-sqrt(5) r / l).
 *
 * Twice-differentiable sample paths: smooth enough for efficient
 * optimization yet not unrealistically smooth for systems data - the
 * standard practical-BO choice (Snoek et al.), and SATORI's.
 */
class Matern52Kernel final : public Kernel
{
  public:
    /** @pre length_scale > 0, signal_variance > 0. */
    explicit Matern52Kernel(double length_scale = 0.3,
                            double signal_variance = 1.0);

    [[nodiscard]] double covariance(const RealVec& a, const RealVec& b) const override;
    void covarianceRow(const RealVec& x, const std::vector<RealVec>& pts,
                       double* out) const override;
    void covarianceCross(const SoaPoints& pts, const RealVec& q,
                         double* out) const override;
    void covarianceCrossApprox(const SoaPoints& pts, const RealVec& q,
                               double* out,
                               std::vector<double>& scratch) const override;
    [[nodiscard]] double variance() const override { return signal_variance_; }
    [[nodiscard]] std::unique_ptr<Kernel> withLengthScale(double ls) const override;
    [[nodiscard]] double lengthScale() const override { return length_scale_; }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override;

  private:
    double length_scale_;
    double signal_variance_;
};

/** Squared-exponential (RBF) kernel: k(r) = s^2 exp(-r^2 / (2 l^2)). */
class RbfKernel final : public Kernel
{
  public:
    /** @pre length_scale > 0, signal_variance > 0. */
    explicit RbfKernel(double length_scale = 0.3,
                       double signal_variance = 1.0);

    [[nodiscard]] double covariance(const RealVec& a, const RealVec& b) const override;
    [[nodiscard]] double variance() const override { return signal_variance_; }
    [[nodiscard]] std::unique_ptr<Kernel> withLengthScale(double ls) const override;
    [[nodiscard]] double lengthScale() const override { return length_scale_; }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override;

  private:
    double length_scale_;
    double signal_variance_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_KERNEL_HPP
