/**
 * @file
 * Candidate-set generation for acquisition maximization.
 *
 * The joint configuration space is far too large to score the
 * acquisition function exhaustively online, so SATORI maximizes it
 * over a candidate set of (a) uniformly sampled configurations
 * (exploration), (b) one-unit-transfer neighbors of the incumbent
 * best (exploitation/refinement), and (c) a structured set of "good"
 * starting configurations - equal partitions and low-imbalance
 * variants (Sec. V: SATORI mitigates BO's initialization sensitivity
 * by starting from a reasonable set of good configurations).
 */

#ifndef SATORI_BO_CANDIDATES_HPP
#define SATORI_BO_CANDIDATES_HPP

#include <vector>

#include "satori/common/rng.hpp"
#include "satori/config/configuration.hpp"
#include "satori/config/enumeration.hpp"

namespace satori {
namespace bo {

/** Candidate-generation knobs. */
struct CandidateOptions
{
    /** Uniform random candidates per round. */
    std::size_t num_random = 256;

    /** Include all one-unit neighbors of the incumbent best. */
    bool include_neighbors = true;

    /** Include the structured "good" seed configurations. */
    bool include_seeds = true;

    /**
     * Include concentration candidates: for every (job, resource)
     * pair, variants of the equal partition that hand that job a
     * half or maximal share of that resource. These cover the
     * working-set-cliff regimes that unit-step neighborhoods and
     * uniform sampling rarely reach.
     */
    bool include_concentrated = true;
};

/**
 * Generates candidate configurations for one BO iteration.
 */
class CandidateGenerator
{
  public:
    CandidateGenerator(const ConfigurationSpace& space,
                       CandidateOptions options = {});

    /**
     * The structured initial configurations S_init: the equal
     * partition plus low-imbalance single-transfer variants.
     */
    [[nodiscard]] std::vector<Configuration> seedConfigurations() const;

    /**
     * The concentration set: for every (job, resource) pair, equal-
     * partition variants granting that job a half or maximal share
     * of that resource (working-set-cliff coverage).
     */
    [[nodiscard]] std::vector<Configuration> concentratedConfigurations() const;

    /**
     * One round of candidates: random samples, neighbors of
     * @p incumbent (if enabled), seeds, and the concentration set,
     * deduplicated by rank.
     */
    [[nodiscard]] std::vector<Configuration> generate(const Configuration& incumbent,
                                        Rng& rng) const;

  private:
    const ConfigurationSpace& space_;
    CandidateOptions options_;
};

} // namespace bo
} // namespace satori

#endif // SATORI_BO_CANDIDATES_HPP
