/**
 * @file
 * Umbrella header: the full public API of the SATORI library.
 *
 * Quickstart:
 * @code
 *   using namespace satori;
 *   auto platform = PlatformSpec::paperTestbed();
 *   auto mix = workloads::mixOf({"canneal", "streamcluster", "vips"});
 *   auto server = harness::makeServer(platform, mix);
 *   core::SatoriController satori(platform, server.numJobs());
 *   harness::ExperimentRunner runner;
 *   auto result = runner.run(server, satori, mix.label);
 * @endcode
 */

#ifndef SATORI_SATORI_HPP
#define SATORI_SATORI_HPP

#include "satori/analysis/invariants.hpp"

#include "satori/common/logging.hpp"
#include "satori/common/math.hpp"
#include "satori/common/rng.hpp"
#include "satori/common/stats.hpp"
#include "satori/common/table.hpp"
#include "satori/common/types.hpp"

#include "satori/linalg/cholesky.hpp"
#include "satori/linalg/matrix.hpp"

#include "satori/config/configuration.hpp"
#include "satori/config/enumeration.hpp"
#include "satori/config/platform.hpp"

#include "satori/metrics/metrics.hpp"

#include "satori/perfmodel/mrc.hpp"
#include "satori/perfmodel/perf.hpp"
#include "satori/perfmodel/phase.hpp"

#include "satori/workloads/loader.hpp"
#include "satori/workloads/mixes.hpp"
#include "satori/workloads/profile.hpp"
#include "satori/workloads/suites.hpp"

#include "satori/sim/job.hpp"
#include "satori/sim/monitor.hpp"
#include "satori/sim/server.hpp"

#include "satori/bo/acquisition.hpp"
#include "satori/bo/candidates.hpp"
#include "satori/bo/engine.hpp"
#include "satori/bo/gp.hpp"
#include "satori/bo/kernel.hpp"

#include "satori/core/change_detector.hpp"
#include "satori/core/controller.hpp"
#include "satori/core/goal_record.hpp"
#include "satori/core/objective.hpp"
#include "satori/core/telemetry_guard.hpp"
#include "satori/core/weights.hpp"

#include "satori/faults/injector.hpp"
#include "satori/faults/plan.hpp"

#include "satori/policies/clite_policy.hpp"
#include "satori/policies/copart_policy.hpp"
#include "satori/policies/dcat_policy.hpp"
#include "satori/policies/equal_policy.hpp"
#include "satori/policies/oracle_policy.hpp"
#include "satori/policies/parties_policy.hpp"
#include "satori/policies/policy.hpp"
#include "satori/policies/random_policy.hpp"
#include "satori/policies/restricted_policy.hpp"

#include "satori/obs/audit.hpp"
#include "satori/obs/obs.hpp"
#include "satori/obs/registry.hpp"
#include "satori/obs/tracer.hpp"

#include "satori/harness/experiment.hpp"
#include "satori/sim/offline_eval.hpp"
#include "satori/harness/parallel.hpp"
#include "satori/harness/repeat.hpp"
#include "satori/harness/report.hpp"
#include "satori/harness/scenarios.hpp"
#include "satori/harness/trace.hpp"

#endif // SATORI_SATORI_HPP
