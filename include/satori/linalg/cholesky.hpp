/**
 * @file
 * Cholesky factorization and triangular solves for symmetric positive
 * definite kernel matrices, with automatic diagonal jitter escalation
 * for near-singular cases (duplicate GP sample points).
 *
 * The factor is held in packed row-major triangular storage (row i
 * starts at offset i*(i+1)/2 and has i+1 entries), which is what makes
 * the sliding-window operations cheap: a rank-1 append grows the
 * buffer by one row in O(n) instead of copying an n x n matrix, and
 * downdate() rewrites the triangle once. All solves and the
 * factorization itself run the exact arithmetic (operand values and
 * per-element operation order) of the historical dense-Matrix
 * implementation, so factors, solves, and logDet() are bit-identical
 * to it; only solveUpperBlocked() trades that pinned order for speed,
 * and says so.
 */

#ifndef SATORI_LINALG_CHOLESKY_HPP
#define SATORI_LINALG_CHOLESKY_HPP

#include <cstddef>
#include <vector>

#include "satori/linalg/matrix.hpp"

namespace satori {
namespace linalg {

/**
 * Lower-triangular Cholesky factor of an SPD matrix, plus the solves
 * the GP needs. Construction never fails for symmetric matrices with
 * bounded condition number: if the plain factorization breaks down,
 * increasing jitter is added to the diagonal (reported via jitter()).
 */
class Cholesky
{
  public:
    /**
     * Factorize @p a (must be square and symmetric).
     *
     * @param a The SPD matrix to factorize.
     * @param initial_jitter Jitter to try first when factorization
     *        fails; escalates by 10x up to a bounded number of tries.
     */
    explicit Cholesky(Matrix a, double initial_jitter = 1e-10);

    /**
     * The lower-triangular factor L with A + jitter*I = L L^T,
     * materialized as a dense matrix (upper triangle zero). The
     * factor itself lives in packed triangular storage; this accessor
     * exists for inspection and tests, not hot paths.
     */
    [[nodiscard]] Matrix factor() const;

    /** Rows of the factor (training-set size n). */
    [[nodiscard]] std::size_t size() const { return n_; }

    /** The jitter that was finally added to the diagonal (0 if none). */
    [[nodiscard]] double jitter() const { return jitter_; }

    /**
     * Cheap condition-number estimate from the factor's diagonal:
     * (max L_ii / min L_ii)^2. A lower bound on the true 2-norm
     * condition number, good enough to flag near-singular kernels.
     */
    [[nodiscard]] double conditionEstimate() const;

    /**
     * Rank-1 append: extend the factor of an n x n matrix A to the
     * factor of the (n+1) x (n+1) matrix
     *
     *     [ A          cross ]
     *     [ cross^T    diag  ]
     *
     * in O(n^2) via one forward-substitution pass, instead of the
     * O(n^3) full refactorization. The appended row is computed with
     * exactly the same arithmetic (and in the same order) as a fresh
     * factorization at the current jitter, so on success the factor,
     * logDet() and all solves are bit-identical to constructing
     * Cholesky on the extended matrix - provided that fresh
     * construction would have landed on the same jitter, which it
     * does: a failure of the leading n x n block at a smaller jitter
     * replays identically on the extended matrix.
     *
     * SPD-failure semantics mirror construction: if the new pivot is
     * not strictly positive (or not finite) at the current jitter,
     * the update refuses, the factor is left untouched, and false is
     * returned - the caller must refactorize from scratch so the
     * jitter-escalation ladder can run on the full matrix.
     *
     * @param cross Cross-covariances against the existing n rows.
     * @param diag New diagonal entry (noise included, jitter not).
     * @return true if the factor was extended.
     */
    [[nodiscard]] bool update(const std::vector<double>& cross, double diag);

    /**
     * Remove row/column 0 (the oldest sample): turn the factor of the
     * n x n matrix A into the factor of its trailing (n-1) x (n-1)
     * block A22, in O(n^2). Because A22 = L22 L22^T + x x^T with x the
     * first column of L below the pivot, this is a rank-1 *update* of
     * the trailing factor (a sweep of Givens-like rotations with
     * r = sqrt(d^2 + x^2)), which is unconditionally SPD-stable: it
     * can only fail on non-finite intermediates (overflow or a factor
     * already poisoned by inf/nan). On failure the factor is left
     * untouched and false is returned - the caller refactorizes from
     * scratch (mirroring update()'s SPD-failure contract).
     *
     * The rotated factor equals the fresh factorization of A22 (at
     * the same jitter) mathematically but not bitwise in general;
     * when the evicted sample is uncorrelated with the rest (its
     * cross-covariance column is exactly zero) the sweep degenerates
     * to a pure compaction and IS bit-identical to a fresh
     * factorization of A22. Window replay therefore pins byte
     * *stability* (same sequence of operations, same bytes), not
     * byte equality with a from-scratch refit.
     *
     * @return true if the factor was downdated. @pre size() >= 1.
     */
    [[nodiscard]] bool downdate();

    /**
     * Rank-1 update in place: turn the factor of A into the factor of
     * A + v v^T via the same stable rotation sweep downdate() runs.
     * Fails only on non-finite intermediates; on failure the factor
     * is left untouched. @pre v.size() == size().
     */
    [[nodiscard]] bool rankOneUpdate(const std::vector<double>& v);

    /**
     * Rank-1 downdate in place: turn the factor of A into the factor
     * of A - v v^T via hyperbolic rotations. Unlike rankOneUpdate this
     * can genuinely fail - A - v v^T may not be positive definite, and
     * the sweep refuses when any hyperbolic cosine collapses (|s| >= 1)
     * or an intermediate goes non-finite. On failure the factor is
     * left untouched and the caller must refactorize.
     * @pre v.size() == size().
     */
    [[nodiscard]] bool rankOneDowndate(const std::vector<double>& v);

    /**
     * Solve L y = b (forward substitution). Rows are processed in
     * interleaved blocks for instruction-level parallelism, but every
     * row's subtraction chain keeps solveLower's historical ascending
     * order, so results are bit-identical to the naive loop.
     */
    [[nodiscard]] std::vector<double> solveLower(const std::vector<double>& b) const;

    /**
     * Blocked multi-RHS forward substitution: solve L y = b for every
     * *row* of @p b (an m x n matrix of m right-hand sides), returning
     * an m x n matrix whose rows are the solutions. Each system is
     * solved with exactly solveLower()'s arithmetic (same subtraction
     * order, one division per element), so results are bit-identical
     * to m independent solveLower() calls - the batching only changes
     * the memory layout the work runs over.
     * @pre b.cols() == n.
     */
    [[nodiscard]] Matrix solveLowerMulti(const Matrix& b) const;

    /**
     * The blocked kernel behind solveLowerMulti: writes the solutions
     * TRANSPOSED, as the *columns* of the n x m matrix @p out, reusing
     * its storage. The transposed layout keeps all m systems adjacent
     * in the innermost loop (one row of @p out), which is what lets
     * the substitution vectorize across right-hand sides; per-system
     * arithmetic order is unchanged, so out(i, c) is bit-identical to
     * solveLower(row c of b)[i].
     */
    void solveLowerMultiInto(const Matrix& b, Matrix& out) const;

    /**
     * solveLowerMultiInto for right-hand sides that are already
     * transposed: @p bt is n x m with bt(i, c) = element i of system
     * c (the natural layout of a sample-major cross-covariance block).
     * Identical arithmetic, identical output layout.
     * @pre bt.rows() == n.
     */
    void solveLowerMultiTransposedInto(const Matrix& bt, Matrix& out) const;

    /** Solve L^T x = b (backward substitution, historical op order). */
    [[nodiscard]] std::vector<double> solveUpper(const std::vector<double>& b) const;

    /**
     * Solve L^T x = b with column-blocked accumulation. Backward
     * substitution under the historical per-column ascending-k order
     * is one serial dependency chain over the whole triangle (column
     * ii's first subtraction needs x[ii+1] final), so unlike the other
     * solves this one cannot be accelerated without reassociating.
     * This variant accumulates each column's tail in 4-column blocks
     * (deterministic, documented order: in-block terms first, then the
     * streamed tail ascending) - roughly 3x faster at n=1000 but NOT
     * bit-identical to solveUpper(). Used by the windowed/approx fast
     * paths, whose contract is byte stability, never by the default
     * exact path, whose contract is byte equality with history.
     */
    [[nodiscard]] std::vector<double> solveUpperBlocked(const std::vector<double>& b) const;

    /** Solve A x = b via the two triangular solves. */
    [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

    /** solve() with the blocked backward pass (see solveUpperBlocked). */
    [[nodiscard]] std::vector<double> solveBlocked(const std::vector<double>& b) const;

    /** log(det(A)) = 2 * sum(log(L_ii)). */
    [[nodiscard]] double logDet() const;

  private:
    bool tryFactorize(const Matrix& a, double jitter);

    /** Packed row pointer: row i starts at tri_[i*(i+1)/2]. */
    [[nodiscard]] const double* row(std::size_t i) const
    {
        return tri_.data() + i * (i + 1) / 2;
    }
    [[nodiscard]] double* row(std::size_t i)
    {
        return tri_.data() + i * (i + 1) / 2;
    }

    /** Packed lower triangle, row-major; row i has i+1 entries. */
    std::vector<double> tri_;
    std::size_t n_ = 0;
    double jitter_ = 0.0;

    /** Sweep target for downdate/rankOne ops: the new triangle is
     * built here and swapped in only after validation, so a failed
     * sweep leaves the factor untouched. */
    std::vector<double> sweep_scratch_;

    /** Rotation parameters (scaled sine s_k and inverse cosine 1/c_k)
     * produced row by row during a rotation sweep; kept as members so
     * steady-state windowed updates do not allocate. */
    std::vector<double> rot_s_;
    std::vector<double> rot_ic_;
};

} // namespace linalg
} // namespace satori

#endif // SATORI_LINALG_CHOLESKY_HPP
