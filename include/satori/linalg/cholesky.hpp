/**
 * @file
 * Cholesky factorization and triangular solves for symmetric positive
 * definite kernel matrices, with automatic diagonal jitter escalation
 * for near-singular cases (duplicate GP sample points).
 */

#ifndef SATORI_LINALG_CHOLESKY_HPP
#define SATORI_LINALG_CHOLESKY_HPP

#include <vector>

#include "satori/linalg/matrix.hpp"

namespace satori {
namespace linalg {

/**
 * Lower-triangular Cholesky factor of an SPD matrix, plus the solves
 * the GP needs. Construction never fails for symmetric matrices with
 * bounded condition number: if the plain factorization breaks down,
 * increasing jitter is added to the diagonal (reported via jitter()).
 */
class Cholesky
{
  public:
    /**
     * Factorize @p a (must be square and symmetric).
     *
     * @param a The SPD matrix to factorize.
     * @param initial_jitter Jitter to try first when factorization
     *        fails; escalates by 10x up to a bounded number of tries.
     */
    explicit Cholesky(Matrix a, double initial_jitter = 1e-10);

    /** The lower-triangular factor L with A + jitter*I = L L^T. */
    [[nodiscard]] const Matrix& factor() const { return l_; }

    /** The jitter that was finally added to the diagonal (0 if none). */
    [[nodiscard]] double jitter() const { return jitter_; }

    /**
     * Cheap condition-number estimate from the factor's diagonal:
     * (max L_ii / min L_ii)^2. A lower bound on the true 2-norm
     * condition number, good enough to flag near-singular kernels.
     */
    [[nodiscard]] double conditionEstimate() const;

    /** Solve L y = b (forward substitution). */
    [[nodiscard]] std::vector<double> solveLower(const std::vector<double>& b) const;

    /** Solve L^T x = b (backward substitution). */
    [[nodiscard]] std::vector<double> solveUpper(const std::vector<double>& b) const;

    /** Solve A x = b via the two triangular solves. */
    [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

    /** log(det(A)) = 2 * sum(log(L_ii)). */
    [[nodiscard]] double logDet() const;

  private:
    bool tryFactorize(const Matrix& a, double jitter);

    Matrix l_;
    double jitter_ = 0.0;
};

} // namespace linalg
} // namespace satori

#endif // SATORI_LINALG_CHOLESKY_HPP
