/**
 * @file
 * Cholesky factorization and triangular solves for symmetric positive
 * definite kernel matrices, with automatic diagonal jitter escalation
 * for near-singular cases (duplicate GP sample points).
 */

#ifndef SATORI_LINALG_CHOLESKY_HPP
#define SATORI_LINALG_CHOLESKY_HPP

#include <vector>

#include "satori/linalg/matrix.hpp"

namespace satori {
namespace linalg {

/**
 * Lower-triangular Cholesky factor of an SPD matrix, plus the solves
 * the GP needs. Construction never fails for symmetric matrices with
 * bounded condition number: if the plain factorization breaks down,
 * increasing jitter is added to the diagonal (reported via jitter()).
 */
class Cholesky
{
  public:
    /**
     * Factorize @p a (must be square and symmetric).
     *
     * @param a The SPD matrix to factorize.
     * @param initial_jitter Jitter to try first when factorization
     *        fails; escalates by 10x up to a bounded number of tries.
     */
    explicit Cholesky(Matrix a, double initial_jitter = 1e-10);

    /** The lower-triangular factor L with A + jitter*I = L L^T. */
    [[nodiscard]] const Matrix& factor() const { return l_; }

    /** The jitter that was finally added to the diagonal (0 if none). */
    [[nodiscard]] double jitter() const { return jitter_; }

    /**
     * Cheap condition-number estimate from the factor's diagonal:
     * (max L_ii / min L_ii)^2. A lower bound on the true 2-norm
     * condition number, good enough to flag near-singular kernels.
     */
    [[nodiscard]] double conditionEstimate() const;

    /**
     * Rank-1 append: extend the factor of an n x n matrix A to the
     * factor of the (n+1) x (n+1) matrix
     *
     *     [ A          cross ]
     *     [ cross^T    diag  ]
     *
     * in O(n^2) via one forward-substitution pass, instead of the
     * O(n^3) full refactorization. The appended row is computed with
     * exactly the same arithmetic (and in the same order) as a fresh
     * factorization at the current jitter, so on success the factor,
     * logDet() and all solves are bit-identical to constructing
     * Cholesky on the extended matrix - provided that fresh
     * construction would have landed on the same jitter, which it
     * does: a failure of the leading n x n block at a smaller jitter
     * replays identically on the extended matrix.
     *
     * SPD-failure semantics mirror construction: if the new pivot is
     * not strictly positive (or not finite) at the current jitter,
     * the update refuses, the factor is left untouched, and false is
     * returned - the caller must refactorize from scratch so the
     * jitter-escalation ladder can run on the full matrix.
     *
     * @param cross Cross-covariances against the existing n rows.
     * @param diag New diagonal entry (noise included, jitter not).
     * @return true if the factor was extended.
     */
    [[nodiscard]] bool update(const std::vector<double>& cross, double diag);

    /** Solve L y = b (forward substitution). */
    [[nodiscard]] std::vector<double> solveLower(const std::vector<double>& b) const;

    /**
     * Blocked multi-RHS forward substitution: solve L y = b for every
     * *row* of @p b (an m x n matrix of m right-hand sides), returning
     * an m x n matrix whose rows are the solutions. Each system is
     * solved with exactly solveLower()'s arithmetic (same subtraction
     * order, one division per element), so results are bit-identical
     * to m independent solveLower() calls - the batching only changes
     * the memory layout the work runs over.
     * @pre b.cols() == n.
     */
    [[nodiscard]] Matrix solveLowerMulti(const Matrix& b) const;

    /**
     * The blocked kernel behind solveLowerMulti: writes the solutions
     * TRANSPOSED, as the *columns* of the n x m matrix @p out, reusing
     * its storage. The transposed layout keeps all m systems adjacent
     * in the innermost loop (one row of @p out), which is what lets
     * the substitution vectorize across right-hand sides; per-system
     * arithmetic order is unchanged, so out(i, c) is bit-identical to
     * solveLower(row c of b)[i].
     */
    void solveLowerMultiInto(const Matrix& b, Matrix& out) const;

    /** Solve L^T x = b (backward substitution). */
    [[nodiscard]] std::vector<double> solveUpper(const std::vector<double>& b) const;

    /** Solve A x = b via the two triangular solves. */
    [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

    /** log(det(A)) = 2 * sum(log(L_ii)). */
    [[nodiscard]] double logDet() const;

  private:
    bool tryFactorize(const Matrix& a, double jitter);

    Matrix l_;
    double jitter_ = 0.0;
};

} // namespace linalg
} // namespace satori

#endif // SATORI_LINALG_CHOLESKY_HPP
