/**
 * @file
 * Minimal dense linear algebra for the Gaussian-process proxy model.
 *
 * The GP in SATORI operates on at most a few hundred samples, so a
 * simple row-major double matrix with O(n^3) factorizations is more
 * than fast enough (the paper reports all BO tasks take ~1.2 ms per
 * 100 ms interval; see bench_overhead).
 */

#ifndef SATORI_LINALG_MATRIX_HPP
#define SATORI_LINALG_MATRIX_HPP

#include <cstddef>
#include <vector>

namespace satori {
namespace linalg {

/** A dense, row-major matrix of doubles. */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A rows x cols matrix initialized to @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Number of rows. */
    [[nodiscard]] std::size_t rows() const { return rows_; }

    /** Number of columns. */
    [[nodiscard]] std::size_t cols() const { return cols_; }

    /** Mutable element access (no bounds check in release builds).
     * Defined inline: element access dominates the factorization and
     * triangular-solve kernels, so it must compile down to one
     * indexed load/store rather than a function call. */
    double& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** The identity matrix of size n. */
    [[nodiscard]] static Matrix identity(std::size_t n);

    /** Matrix-vector product. @pre v.size() == cols(). */
    [[nodiscard]] std::vector<double> multiply(const std::vector<double>& v) const;

    /** Matrix-matrix product. @pre other.rows() == cols(). */
    [[nodiscard]] Matrix multiply(const Matrix& other) const;

    /** Transposed copy. */
    [[nodiscard]] Matrix transposed() const;

    /** Add @p v to every diagonal element. @pre square. */
    void addDiagonal(double v);

    /** Raw storage (row-major), mainly for tests. */
    [[nodiscard]] const std::vector<double>& data() const { return data_; }

    /** Pointer to the start of row @p r. Rows are contiguous; distinct
     * rows never overlap, which lets kernels assert no-aliasing. */
    [[nodiscard]] double* rowPtr(std::size_t r)
    {
        return data_.data() + r * cols_;
    }

    /** Const pointer to the start of row @p r. */
    [[nodiscard]] const double* rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product of equal-length vectors. */
[[nodiscard]] double dot(const std::vector<double>& a, const std::vector<double>& b);

} // namespace linalg
} // namespace satori

#endif // SATORI_LINALG_MATRIX_HPP
