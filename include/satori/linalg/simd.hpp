/**
 * @file
 * Portable vectorized kernels for the linear-algebra hot loops.
 *
 * Every kernel here is *lane-parallel*: element i of the output
 * depends only on element i of the inputs, with the identical
 * sequence of floating-point operations in the scalar and vector
 * implementations (no re-association, no FMA contraction). The
 * vector path is therefore bit-identical to the scalar path - a
 * pure throughput optimization - and simd_test pins that with
 * memcmp. The one function with its own numerics, fastExpNegInto(),
 * is an *approximation* of std::exp(-z) (used only by the gated
 * approximate-GP path, never by exact decision paths), but it too
 * is bit-identical between its scalar and vector implementations.
 *
 * Dispatch is resolved once at startup: when the library is built
 * with SATORI_SIMD=ON and the CPU reports AVX2, the kernels run the
 * vector implementations from src/linalg/simd_avx2.cpp; otherwise
 * the scalar reference implementations in simd::ref. The reference
 * implementations are part of the public surface so tests (and any
 * caller that wants to pin scalar behaviour) can name them directly.
 *
 * All SIMD/intrinsics code in the tree lives under src/linalg/ -
 * the analyzer's arch pack enforces that (see rules_arch.cpp).
 */

#ifndef SATORI_LINALG_SIMD_HPP
#define SATORI_LINALG_SIMD_HPP

#include <cstddef>

namespace satori {
namespace linalg {
namespace simd {

/** True when the vectorized implementations are active (library built
 * with SATORI_SIMD=ON and the CPU supports AVX2 at runtime). */
[[nodiscard]] bool vectorized();

/** y[i] -= a * x[i] for i in [0, n) - the axpy inside the triangular
 * solves. No overlap allowed between y and x. */
void subScaled(double* y, const double* x, double a, std::size_t n);

/**
 * Four fused axpy steps: per element, exactly the operation sequence
 * of subScaled(y, x0, a0, n); ...; subScaled(y, x3, a3, n) - same
 * results bit-for-bit - but with y loaded and stored once instead of
 * four times. The triangular solves' k-loops are memory-bound on the
 * accumulator row; this is their unroll primitive. No overlap
 * allowed between y and any x.
 */
void subScaled4(double* y, const double* x0, double a0,
                const double* x1, double a1, const double* x2,
                double a2, const double* x3, double a3, std::size_t n);

/** y[i] /= d for i in [0, n) - the pivot division across systems. */
void divScalar(double* y, double d, std::size_t n);

/** acc[i] += (xs[i] - q) * (xs[i] - q) for i in [0, n) - squared-
 * distance accumulation across a candidate block, one dimension at a
 * time (xs holds that dimension for every candidate). */
void accumSqDiff(double* acc, const double* xs, double q, std::size_t n);

/**
 * out[i] = sum over d of (xs[d][i] - q[d])^2 for i in [0, n) - the
 * whole squared-distance block in one pass. Per element this is
 * exactly out[i] = 0 followed by ascending-d accumSqDiff, so results
 * are bit-identical to that sequence; fusing keeps the accumulator
 * in registers instead of round-tripping it through memory once per
 * dimension. xs holds one pointer per dimension (SoA layout).
 */
void sqDistInto(double* out, const double* const* xs, const double* q,
                std::size_t dims, std::size_t n);

/** acc[i] += a * xs[i] for i in [0, n) - the GEMV row step of the
 * batched posterior-mean computation. */
void fmaAccum(double* acc, const double* xs, double a, std::size_t n);

/** acc[i] += xs[i] * xs[i] for i in [0, n) - the row step of the
 * batched posterior-variance norm accumulation. */
void accumSquare(double* acc, const double* xs, std::size_t n);

/**
 * out[i] = approximate exp(-z[i]) for i in [0, n). @pre z[i] >= 0.
 *
 * Cody-Waite range reduction with a fixed-order polynomial; relative
 * error is below 1e-9 over the covariance-relevant range (z in
 * [0, 50]), and inputs beyond 708 flush to exactly 0. This is the
 * approximate-GP kernel evaluation - exact paths keep libm exp().
 * In-place operation (out == z) is allowed; partial overlap is not.
 */
void fastExpNegInto(double* out, const double* z, std::size_t n);

/**
 * out[i] = signal_variance * (1 + z + z^2/3) * exp(-z) with
 * z = sqrt(d2[i]) * scaled_inv_ls, for i in [0, n) - the entire
 * Matern-5/2 evaluation from squared distances, fused so the sqrt,
 * polynomial, and exponential all run vectorized in one pass.
 * @p scaled_inv_ls is sqrt(5)/length_scale, precomputed by the
 * caller so the per-element division disappears. exp(-z) is the
 * fastExpNegInto approximation, so like it this kernel serves only
 * the gated approximate-GP path (exact paths keep covarianceRow's
 * libm arithmetic); scalar and vector implementations are
 * bit-identical. In-place operation (out == d2) is allowed.
 */
void matern52FromSqDistInto(double* out, const double* d2,
                            double scaled_inv_ls,
                            double signal_variance, std::size_t n);

/** Scalar reference implementations - the behaviour contract the
 * vector path must match bit-for-bit (pinned by simd_test). */
namespace ref {

void subScaled(double* y, const double* x, double a, std::size_t n);
void subScaled4(double* y, const double* x0, double a0,
                const double* x1, double a1, const double* x2,
                double a2, const double* x3, double a3, std::size_t n);
void divScalar(double* y, double d, std::size_t n);
void accumSqDiff(double* acc, const double* xs, double q, std::size_t n);
void sqDistInto(double* out, const double* const* xs, const double* q,
                std::size_t dims, std::size_t n);
void fmaAccum(double* acc, const double* xs, double a, std::size_t n);
void accumSquare(double* acc, const double* xs, std::size_t n);
void fastExpNegInto(double* out, const double* z, std::size_t n);
void matern52FromSqDistInto(double* out, const double* d2,
                            double scaled_inv_ls,
                            double signal_variance, std::size_t n);

} // namespace ref

} // namespace simd
} // namespace linalg
} // namespace satori

#endif // SATORI_LINALG_SIMD_HPP
