/**
 * @file
 * System-throughput and fairness metrics (Sec. II).
 *
 * Throughput can be expressed as sum of IPS, geometric mean of
 * speedups, or harmonic mean of speedups; fairness as Jain's index
 * (1 / (1 + CoV^2)) or 1 - CoV of the speedups relative to isolated
 * execution. The paper's defaults are sum-of-IPS and Jain's index.
 */

#ifndef SATORI_METRICS_METRICS_HPP
#define SATORI_METRICS_METRICS_HPP

#include <vector>

#include "satori/common/types.hpp"

namespace satori {

/** Throughput metric selector. */
enum class ThroughputMetric
{
    SumIps,            ///< Sum of instructions per second (default).
    GeomeanSpeedup,    ///< Geometric mean of per-job speedups.
    HarmonicSpeedup,   ///< Harmonic mean of per-job speedups.
};

/** Fairness metric selector. */
enum class FairnessMetric
{
    JainIndex,   ///< 1 / (1 + CoV^2), in (0, 1] (default).
    OneMinusCov, ///< 1 - CoV; 1 at perfect fairness, can be negative.
};

/**
 * Per-job speedups relative to isolated execution: ips[i] / iso[i].
 * @pre equal sizes; iso[i] > 0.
 */
[[nodiscard]] std::vector<double> speedups(const std::vector<Ips>& ips,
                             const std::vector<Ips>& isolation_ips);

/** Jain's fairness index of the given speedups: 1 / (1 + CoV^2). */
[[nodiscard]] double jainFairnessIndex(const std::vector<double>& speedup);

/** The 1 - CoV fairness metric of the given speedups. */
[[nodiscard]] double oneMinusCovFairness(const std::vector<double>& speedup);

/** Fairness under the selected metric. */
[[nodiscard]] double fairness(FairnessMetric metric, const std::vector<double>& speedup);

/**
 * Raw throughput under the selected metric (sum of IPS for SumIps;
 * a speedup statistic otherwise).
 */
[[nodiscard]] double throughput(ThroughputMetric metric, const std::vector<Ips>& ips,
                  const std::vector<Ips>& isolation_ips);

/**
 * Scale that maps achievable co-located throughput onto [0, 1]
 * (Sec. III-B requires both goals to occupy the same range): with M
 * jobs sharing one machine, the attainable sum-of-speedups fraction
 * is roughly 2/M + 0.2 under good partitioning, so dividing by this
 * scale stretches the throughput goal across the full unit range the
 * fairness index already occupies.
 */
[[nodiscard]] double colocationThroughputScale(std::size_t num_jobs);

/**
 * Throughput normalized to [0, 1] so it is comparable with fairness
 * in the combined objective (Sec. III-B): sum-of-IPS is divided by
 * the sum of isolation IPS and by colocationThroughputScale();
 * speedup statistics are already relative and are clamped to [0, 1].
 */
[[nodiscard]] double normalizedThroughput(ThroughputMetric metric,
                            const std::vector<Ips>& ips,
                            const std::vector<Ips>& isolation_ips);

/**
 * Normalize a fairness value to [0, 1]: Jain's index already is;
 * 1 - CoV is clamped from below at 0 (Sec. III-B notes it has no
 * lower bound).
 */
[[nodiscard]] double normalizedFairness(FairnessMetric metric,
                          const std::vector<double>& speedup);

} // namespace satori

#endif // SATORI_METRICS_METRICS_HPP
