/**
 * @file
 * Extending the library: (1) writing a custom partitioning policy
 * against the PartitioningPolicy interface, and (2) registering a
 * third optimization goal (energy proxy) with SATORI's extensible
 * objective (Sec. III-B). Both run against the same scenario.
 */

#include <cstdio>

#include "satori/satori.hpp"

using namespace satori;

namespace {

/**
 * A simple custom policy: proportional-share partitioning. Each job
 * receives resources proportional to its isolation IPS (heavier jobs
 * get more), re-derived whenever the baseline changes.
 */
class ProportionalSharePolicy final : public policies::PartitioningPolicy
{
  public:
    ProportionalSharePolicy(const PlatformSpec& platform,
                            std::size_t num_jobs)
        : platform_(platform), num_jobs_(num_jobs)
    {
    }

    std::string name() const override { return "ProportionalShare"; }

    Configuration decide(const sim::IntervalObservation& obs) override
    {
        double total = 0.0;
        for (double iso : obs.isolation_ips)
            total += iso;
        Configuration c =
            Configuration::equalPartition(platform_, num_jobs_);
        for (std::size_t r = 0; r < platform_.numResources(); ++r) {
            const int units = platform_.units(r);
            // Give every job one unit, split the rest by weight.
            std::vector<int> row(num_jobs_, 1);
            int left = units - static_cast<int>(num_jobs_);
            for (std::size_t j = 0; j < num_jobs_ && left > 0; ++j) {
                const int grant = std::min(
                    left, static_cast<int>(obs.isolation_ips[j] / total *
                                           (units - num_jobs_)));
                row[j] += grant;
                left -= grant;
            }
            for (std::size_t j = 0; left > 0;
                 j = (j + 1) % num_jobs_) {
                row[j] += 1;
                --left;
            }
            for (std::size_t j = 0; j < num_jobs_; ++j)
                c.units(r, j) = row[j];
        }
        return c;
    }

  private:
    PlatformSpec platform_;
    std::size_t num_jobs_;
};

} // namespace

int
main()
{
    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const workloads::JobMix mix =
        workloads::mixOf({"minife", "xsbench", "amg"});

    harness::ExperimentOptions options;
    options.duration = 30.0;
    const harness::ExperimentRunner runner(options);

    // --- 1. The custom policy vs SATORI ------------------------------
    sim::SimulatedServer s1 = harness::makeServer(platform, mix);
    ProportionalSharePolicy prop(platform, s1.numJobs());
    const auto prop_result = runner.run(s1, prop, mix.label);

    sim::SimulatedServer s2 = harness::makeServer(platform, mix);
    core::SatoriController satori(platform, s2.numJobs());
    const auto satori_result = runner.run(s2, satori, mix.label);

    std::printf("Custom policy vs SATORI on %s:\n", mix.label.c_str());
    TablePrinter table({"policy", "throughput", "fairness"});
    for (const auto* r : {&prop_result, &satori_result}) {
        table.addRow({r->policy_name,
                      TablePrinter::num(r->mean_throughput, 3),
                      TablePrinter::num(r->mean_fairness, 3)});
    }
    table.print();

    // --- 2. SATORI with a third goal: an energy proxy ----------------
    // Reward configurations that can satisfy demand with less memory
    // bandwidth headroom (a DRAM-power proxy): goal = 1 - allocated
    // bandwidth fraction beyond the fair share.
    core::ExtraGoal energy;
    energy.name = "dram-energy";
    energy.weight_share = 0.2;
    energy.evaluator = [&](const sim::IntervalObservation& obs) {
        const int bw = platform.indexOf(ResourceKind::MemBandwidth);
        if (bw < 0)
            return 1.0;
        const auto r = static_cast<std::size_t>(bw);
        // Penalize bandwidth concentration: the more skewed the MBA
        // allocation, the hotter the memory bus runs.
        std::vector<double> shares;
        for (std::size_t j = 0; j < obs.config.numJobs(); ++j)
            shares.push_back(
                static_cast<double>(obs.config.units(r, j)));
        return jainFairnessIndex(shares);
    };

    core::SatoriOptions with_energy;
    with_energy.objective = core::ObjectiveSpec(
        ThroughputMetric::SumIps, FairnessMetric::JainIndex, {energy});

    sim::SimulatedServer s3 = harness::makeServer(platform, mix);
    core::SatoriController satori3(platform, s3.numJobs(), with_energy);
    const auto tri_result = runner.run(s3, satori3, mix.label);

    std::printf("\nSATORI with a third goal (20%% weight on a DRAM "
                "energy proxy):\n");
    TablePrinter tri({"variant", "throughput", "fairness"});
    tri.addRow({"SATORI (T+F)",
                TablePrinter::num(satori_result.mean_throughput, 3),
                TablePrinter::num(satori_result.mean_fairness, 3)});
    tri.addRow({"SATORI (T+F+energy)",
                TablePrinter::num(tri_result.mean_throughput, 3),
                TablePrinter::num(tri_result.mean_fairness, 3)});
    tri.print();
    std::printf("\nThe objective is reconstructed from per-goal records "
                "every iteration, so adding goals needs no new "
                "profiling or model changes (Sec. III-B).\n");
    return 0;
}
