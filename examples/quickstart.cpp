/**
 * @file
 * Quickstart: co-locate three PARSEC jobs on the paper's testbed,
 * let SATORI partition cores / LLC ways / memory bandwidth for 30
 * simulated seconds, and compare against static equal partitioning.
 */

#include <cstdio>

#include "satori/satori.hpp"

int
main()
{
    using namespace satori;

    // The paper's server: 10 cores, 11 LLC ways (Intel CAT), 10
    // memory-bandwidth units (Intel MBA).
    const PlatformSpec platform = PlatformSpec::paperTestbed();

    // Three jobs with conflicting appetites: cache-hungry canneal,
    // bandwidth-hungry streamcluster, balanced vips.
    const workloads::JobMix mix =
        workloads::mixOf({"canneal", "streamcluster", "vips"});

    harness::ExperimentOptions options;
    options.duration = 30.0;
    options.record_series = false;
    const harness::ExperimentRunner runner(options);

    // --- SATORI -----------------------------------------------------
    sim::SimulatedServer server = harness::makeServer(platform, mix);
    core::SatoriController satori(platform, server.numJobs());
    const auto satori_result = runner.run(server, satori, mix.label);

    // --- Static equal partitioning (unmanaged) ----------------------
    sim::SimulatedServer server2 = harness::makeServer(platform, mix);
    policies::EqualPartitionPolicy equal(platform, server2.numJobs());
    const auto equal_result = runner.run(server2, equal, mix.label);

    std::printf("Co-located mix: %s\n", mix.label.c_str());
    std::printf("Simulated %.0f s at %.1f ms controller intervals\n\n",
                options.duration, options.dt * 1e3);

    TablePrinter table({"policy", "throughput (norm)", "fairness (Jain)",
                        "worst-job speedup"});
    for (const auto* r : {&satori_result, &equal_result}) {
        table.addRow({r->policy_name, TablePrinter::num(r->mean_throughput, 3),
                      TablePrinter::num(r->mean_fairness, 3),
                      TablePrinter::num(r->worst_job_speedup, 3)});
    }
    table.print();

    const double dt = satori_result.mean_throughput -
                      equal_result.mean_throughput;
    const double df = satori_result.mean_fairness -
                      equal_result.mean_fairness;
    std::printf("\nSATORI vs Equal: %+.1f%% throughput, %+.1f%% "
                "fairness\n",
                dt * 100.0, df * 100.0);
    return 0;
}
