# Sample workload definitions for satori_sim --workload-file.
# Format reference: docs/GUIDE.md section 4.

# A bandwidth-hungry streaming kernel: high IPC, very parallel, a miss
# floor that cache ways cannot remove.
workload streamer
  suite custom
  description Synthetic streaming kernel (bandwidth-bound)
  fixed_work 2e11
  phase stream
    base_ipc 1.8
    parallel_fraction 0.95
    mpki_one 14
    mpki_floor 10
    mrc exponential 2.0
    miss_penalty 120
    bytes_per_miss 100
    cache_pressure 0.05
    length 3e10
  phase checkpoint
    base_ipc 1.2
    parallel_fraction 0.6
    mpki_one 6
    mpki_floor 2
    mrc exponential 2.0
    miss_penalty 120
    bytes_per_miss 80
    cache_pressure 0.05
    length 8e9

# A pointer-chasing graph kernel with a working-set cliff at 6 ways:
# below the cliff extra ways are useless, above it misses collapse.
workload chaser
  suite custom
  description Synthetic pointer-chasing kernel (cache-cliff at 6 ways)
  fixed_work 2e11
  phase traverse
    base_ipc 0.7
    parallel_fraction 0.7
    mpki_one 32
    mpki_floor 3
    mrc cliff 6.0 0.9
    miss_penalty 180
    bytes_per_miss 72
    cache_pressure 0.4
    length 2.5e10
