/**
 * @file
 * Cloud-consolidation scenario with job churn: CloudSuite services
 * arrive and depart mid-run. Demonstrates SATORI's online adaptation
 * path (Algorithm 1 line 12): baselines are re-recorded on job
 * changes and the controller re-converges without reinitialization.
 */

#include <cstdio>

#include "satori/satori.hpp"

int
main()
{
    using namespace satori;

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    workloads::JobMix mix = workloads::mixOf(
        {"web_search", "data_analytics", "media_streaming"});

    std::printf("Phase 1: consolidating %s\n", mix.label.c_str());

    sim::SimulatedServer server = harness::makeServer(platform, mix);
    core::SatoriController satori(platform, server.numJobs());
    sim::PerfMonitor monitor(server);

    auto run_span = [&](Seconds seconds, const char* label) {
        OnlineStats t_stats, f_stats;
        const auto steps = static_cast<int>(seconds / 0.1);
        Seconds last_reset = server.now();
        for (int i = 0; i < steps; ++i) {
            const auto obs = monitor.observe(0.1);
            const std::vector<Ips> iso = server.isolationIpsNow();
            t_stats.add(normalizedThroughput(ThroughputMetric::SumIps,
                                             obs.ips, iso));
            f_stats.add(normalizedFairness(
                FairnessMetric::JainIndex, speedups(obs.ips, iso)));
            server.setConfiguration(satori.decide(obs));
            if (obs.time - last_reset >= 10.0) {
                monitor.resetBaseline();
                last_reset = obs.time;
            }
        }
        std::printf("  %-28s T=%.3f F=%.3f (settled: %s)\n", label,
                    t_stats.mean(), f_stats.mean(),
                    satori.diagnostics().settled ? "yes" : "no");
    };

    run_span(20.0, "steady state");

    // A batch-analytics job replaces the media-streaming service.
    std::printf("\nPhase 2: media_streaming departs, "
                "graph_analytics arrives\n");
    server.replaceJob(2, workloads::workloadByName("graph_analytics"));
    monitor.resetBaseline(); // re-record isolation baselines
    run_span(5.0, "right after churn");
    run_span(15.0, "after re-convergence");

    // One more arrival: in-memory analytics replaces data analytics.
    std::printf("\nPhase 3: data_analytics departs, "
                "in_memory_analytics arrives\n");
    server.replaceJob(1,
                      workloads::workloadByName("in_memory_analytics"));
    monitor.resetBaseline();
    run_span(5.0, "right after churn");
    run_span(15.0, "after re-convergence");

    std::printf("\nFinal allocation: %s\n",
                server.configuration().toString().c_str());
    std::printf("(rows: cores | LLC ways | memory bandwidth; columns "
                "are the three services)\n");
    return 0;
}
