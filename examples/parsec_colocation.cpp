/**
 * @file
 * The paper's headline scenario: a five-job PARSEC mix on the
 * Xeon-like testbed, comparing SATORI against PARTIES-style gradient
 * descent, CoPart, dCAT, random search, and the Balanced Oracle -
 * with per-job speedup breakdowns.
 */

#include <cstdio>

#include "satori/satori.hpp"

int
main()
{
    using namespace satori;

    const PlatformSpec platform = PlatformSpec::paperTestbed();
    const workloads::JobMix mix =
        workloads::mixOf({"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster"});

    std::printf("Co-locating %zu PARSEC jobs on a %d-core server with "
                "%d LLC ways and %d MBA steps\n\n",
                mix.jobs.size(), platform.units(0), platform.units(1),
                platform.units(2));

    harness::ExperimentOptions options;
    options.duration = 40.0;
    const harness::ExperimentRunner runner(options);

    const std::vector<std::string> names{"Random", "dCAT",   "CoPart",
                                         "PARTIES", "SATORI",
                                         "Balanced-Oracle"};
    std::vector<harness::ExperimentResult> results;
    for (const auto& name : names) {
        sim::SimulatedServer server = harness::makeServer(platform, mix);
        auto policy = harness::makePolicy(name, server);
        results.push_back(runner.run(server, *policy, mix.label));
        std::printf("  ran %-16s mean T=%.3f F=%.3f\n", name.c_str(),
                    results.back().mean_throughput,
                    results.back().mean_fairness);
    }

    std::printf("\nSummary (normalized throughput, Jain fairness, "
                "worst-job speedup):\n");
    TablePrinter table({"policy", "throughput", "fairness",
                        "worst job", "objective"});
    for (const auto& r : results) {
        table.addRow({r.policy_name,
                      TablePrinter::num(r.mean_throughput, 3),
                      TablePrinter::num(r.mean_fairness, 3),
                      TablePrinter::num(r.worst_job_speedup, 3),
                      TablePrinter::num(r.mean_objective, 3)});
    }
    table.print();

    std::printf("\nPer-job mean speedups under SATORI vs PARTIES:\n");
    TablePrinter jobs({"job", "SATORI", "PARTIES"});
    const auto& satori = results[4];
    const auto& parties = results[3];
    for (std::size_t j = 0; j < mix.jobs.size(); ++j) {
        jobs.addRow({mix.jobs[j].name,
                     TablePrinter::num(satori.job_mean_speedups[j], 3),
                     TablePrinter::num(parties.job_mean_speedups[j], 3)});
    }
    jobs.print();
    return 0;
}
